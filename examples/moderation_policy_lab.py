"""A small laboratory for Pleroma's MRF policies and their decision plans.

Builds one receiving instance, configures a realistic policy pipeline
(SimplePolicy, ObjectAgePolicy, HellthreadPolicy, KeywordPolicy, TagPolicy)
and replays a set of crafted activities through it, printing what each
policy does to each activity.  Every policy declares a
:class:`~repro.mrf.base.DecisionPlan` — the declarative description of its
gates, triggers and shareable decisions the compiled pipeline fast-paths —
so the lab also prints each plan and finishes by *authoring* two policies
with custom plans, the way new policies should be written: a content-
triggered one and an announce-aware one gated on ``activity_types``.  The
replayed activities cover the full mix — Creates, a boost (``Announce``)
and a favourite (``Like``) — and the lab ends by comparing the compiled
per-``(origin, type)`` batch programs Create and Announce traffic select.

Run with::

    python examples/moderation_policy_lab.py
"""

from __future__ import annotations

from repro.activitypub.activities import (
    ActivityType,
    announce_activity,
    create_activity,
    like_activity,
)
from repro.activitypub.actors import Actor
from repro.fediverse.clock import SECONDS_PER_DAY
from repro.fediverse.post import MediaAttachment, Post
from repro.mrf.base import (
    ContentTrigger,
    DecisionPlan,
    MRFContext,
    MRFDecision,
    MRFPolicy,
    PolicyTriggers,
)
from repro.mrf.object_age import ObjectAgePolicy
from repro.mrf.keywords import KeywordPolicy
from repro.mrf.pipeline import MRFPipeline
from repro.mrf.shared import shared_trigger_columns
from repro.mrf.simple import SimplePolicy
from repro.mrf.tag import TagAction, TagPolicy
from repro.mrf.threads import HellthreadPolicy

NOW = 30 * SECONDS_PER_DAY


def build_pipeline() -> MRFPipeline:
    """An instance pipeline resembling a typical moderating admin's setup."""
    pipeline = MRFPipeline(local_domain="home.example")
    pipeline.add_policy(ObjectAgePolicy())
    pipeline.add_policy(
        SimplePolicy(
            reject=["blocked.example"],
            media_nsfw=["adult.example"],
            federated_timeline_removal=["noisy.example"],
        )
    )
    pipeline.add_policy(HellthreadPolicy(delist_threshold=5, reject_threshold=10))
    pipeline.add_policy(KeywordPolicy(reject=["casino bonus"]))
    tag_policy = TagPolicy()
    tag_policy.tag_user("annoying@elsewhere.example", TagAction.FORCE_UNLISTED)
    pipeline.add_policy(tag_policy)
    return pipeline


def describe_plan(policy: MRFPolicy) -> str:
    """Render the declarative plan of one policy in a line."""
    plan = policy.plan()
    if plan is None:
        return "opaque (no plan: always runs, shares nothing)"
    triggers = plan.triggers
    parts = []
    if triggers.match_all:
        parts.append("match_all")
    if triggers.domains:
        parts.append(f"domains={sorted(triggers.domains)}")
    if triggers.suffixes:
        parts.append(f"suffixes={sorted(triggers.suffixes)}")
    if triggers.handles:
        parts.append(f"handles={sorted(triggers.handles)}")
    if triggers.max_post_age is not None:
        parts.append(f"post_age>{triggers.max_post_age:.0f}s")
    if triggers.min_mentions is not None:
        parts.append(f"mentions>={triggers.min_mentions}")
    if triggers.content is not None:
        parts.append(f"content~{sorted(triggers.content.columns.terms)}")
    if triggers.activity_types is not None:
        parts.append(f"types={sorted(t.value for t in triggers.activity_types)}")
    if not parts:
        parts.append("never acts")
    extras = []
    if plan.origin_pure is not None:
        extras.append("origin-pure reject (whole batches share one decision)")
    if plan.shared_rewrite is not None:
        extras.append("content-independent rewrite (slices share one rewrite)")
    rendered = ", ".join(parts)
    if extras:
        rendered += "  [" + "; ".join(extras) + "]"
    return rendered


def sample_activities() -> list:
    """A handful of activities that each trigger a different policy."""
    def post(domain: str, author: str, content: str, **kwargs) -> Post:
        return Post(
            post_id=f"{domain}-{author}",
            author=f"{author}@{domain}",
            domain=domain,
            content=content,
            created_at=kwargs.pop("created_at", NOW - 600),
            **kwargs,
        )

    return [
        create_activity(post("friendly.example", "ana", "good morning fediverse")),
        create_activity(post("blocked.example", "troll", "you cannot silence me")),
        create_activity(
            post(
                "adult.example",
                "artist",
                "new piece up",
                attachments=(MediaAttachment(url="https://adult.example/a.png"),),
            )
        ),
        create_activity(
            post("friendly.example", "oldtimer", "remember this?", created_at=NOW - 20 * SECONDS_PER_DAY)
        ),
        create_activity(
            post(
                "elsewhere.example",
                "spammer",
                "unmissable casino bonus just for you",
            )
        ),
        create_activity(
            post(
                "elsewhere.example",
                "shouty",
                " ".join(f"@user{i}@many.example" for i in range(12)),
            )
        ),
        create_activity(
            post("elsewhere.example", "annoying", "posting about my day again"),
            actor=Actor(username="annoying", domain="elsewhere.example"),
        ),
    ]


class LinkShortenerPolicy(MRFPolicy):
    """An example of *authoring* a policy with a declarative plan.

    Rejects posts that carry a link-shortener URL.  The plan declares a
    content trigger over the shortener hostnames through the shared
    interned columns: posts without any of those literals provably pass
    untouched, so the compiled pipeline never runs the policy on them.
    """

    name = "LinkShortenerPolicy"

    #: The shortener hostnames the policy refuses to federate.
    SHORTENERS = ("sketchy.ly", "shady.to")

    def plan(self) -> DecisionPlan:
        columns = shared_trigger_columns(self.SHORTENERS, anchored=False)
        return DecisionPlan(
            triggers=PolicyTriggers(content=ContentTrigger(columns=columns))
        )

    def filter(self, activity, ctx: MRFContext) -> MRFDecision:
        post = activity.post
        if post is None:
            return self.accept(activity)
        lowered = post.content.lower()
        for host in self.SHORTENERS:
            if host in lowered:
                return self.reject(
                    activity,
                    action="reject",
                    reason=f"link shortener {host} is not allowed",
                )
        return self.accept(activity)


class BoostSpamPolicy(MRFPolicy):
    """An example of authoring an *announce-aware* policy plan.

    Drops boosts (``Announce``) coming from boost-spam origins while
    leaving their ordinary posts alone.  The plan gates on
    ``activity_types={ANNOUNCE}`` — outside the gate the policy provably
    never acts, so Create batches never pay for it — and triggers on the
    origin domains, so the per-``(origin, type)`` batch program only
    routes Announce traffic from the listed origins into the walk.
    """

    name = "BoostSpamPolicy"

    #: Origins whose boosts are refused wholesale.
    BOOST_SPAMMERS = frozenset({"noisy.example"})

    def plan(self) -> DecisionPlan:
        return DecisionPlan(
            triggers=PolicyTriggers(
                domains=self.BOOST_SPAMMERS,
                activity_types=frozenset({ActivityType.ANNOUNCE}),
            )
        )

    def filter(self, activity, ctx: MRFContext) -> MRFDecision:
        if (
            activity.is_announce
            and activity.origin_domain in self.BOOST_SPAMMERS
        ):
            return self.reject(
                activity,
                action="reject",
                reason="origin floods boosts",
            )
        return self.accept(activity)


def main() -> None:
    pipeline = build_pipeline()
    pipeline.add_policy(LinkShortenerPolicy())
    pipeline.add_policy(BoostSpamPolicy())
    print("enabled policies and their decision plans:")
    for policy in pipeline.policies:
        print(f"  {policy.name:22s} {describe_plan(policy)}")
    compiled = pipeline.compiled()
    print(
        f"\ncompiled pipeline: fully_planned={compiled.fully_planned}, "
        f"{len(compiled.entries)} live entries "
        f"({len(pipeline.policies) - len(compiled.entries)} provably inert, dropped)"
    )
    print()
    header = (
        f"{'origin':22s} {'author':10s} {'verdict':8s} {'policy':20s} "
        f"{'action':18s} type"
    )
    print(header)
    print("-" * len(header))
    activities = sample_activities()
    activities.append(
        create_activity(
            Post(
                post_id="elsewhere.example-promoter",
                author="promoter@elsewhere.example",
                domain="elsewhere.example",
                content="deals at https://sketchy.ly/xyz",
                created_at=NOW - 600,
            )
        )
    )
    # The activity mix: deliveries are not all post-shaped.  Boosts and
    # favourites carry an object URI, so only origin/handle triggers and
    # type gates can fire for them.
    booster = Actor(username="fan", domain="noisy.example")
    activities.append(
        announce_activity("https://home.example/posts/1", booster, published=NOW - 60)
    )
    activities.append(
        like_activity(
            "https://home.example/posts/1",
            Actor(username="ana", domain="friendly.example"),
            published=NOW - 30,
        )
    )
    for activity in activities:
        decision = pipeline.filter(activity, now=NOW)
        author = activity.actor.username
        kind = activity.activity_type.value
        print(
            f"{activity.origin_domain:22s} {author:10s} "
            f"{decision.verdict.value:8s} {decision.policy or '-':20s} "
            f"{decision.action:18s} {kind}"
        )
    print()
    print(f"moderation events recorded: {len(pipeline.events)}")
    for event in pipeline.events:
        print(f"  [{event.policy}] {event.action} <- {event.origin_domain} ({event.reason})")

    # The batch programs behind delivery: whole batches from blocked.example
    # share one origin-pure reject decision.
    shared, _, _ = pipeline.apply_batch(
        [create_activity(Post(
            post_id=f"blocked.example-{i}",
            author="troll@blocked.example",
            domain="blocked.example",
            content="spam wave",
            created_at=NOW - 60,
        )) for i in range(3)],
        "blocked.example",
        now=NOW,
    )
    print(f"\nbatch program for blocked.example shares one decision: {shared}")

    # Per-(origin, type) programs: an Announce batch has no post, so every
    # post-shaped policy (ObjectAge, Hellthread, Keyword, LinkShortener)
    # provably drops out of its walk — only the type-gated BoostSpamPolicy
    # and the origin-pure SimplePolicy survive for the origins they name.
    def render(program) -> str:
        if program.general:
            return "general walk (an origin-fired policy may act per activity)"
        if program.shared is not None:
            return f"shared reject by {program.shared[0]}"
        if program.residual:
            return f"{len(program.residual)} residual polic(ies)"
        return "skip (no policy can act)"

    local = pipeline.local_domain
    for origin in ("friendly.example", "noisy.example"):
        create_prog = compiled.program_for(origin, local)
        boost_prog = compiled.program_for_type(
            origin, local, ActivityType.ANNOUNCE
        )
        print(f"programs for {origin}:")
        print(f"  Create   -> {render(create_prog)}")
        print(f"  Announce -> {render(boost_prog)}")


if __name__ == "__main__":
    main()
