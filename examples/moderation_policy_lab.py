"""A small laboratory for Pleroma's MRF policies.

Builds one receiving instance, configures a realistic policy pipeline
(SimplePolicy, ObjectAgePolicy, HellthreadPolicy, KeywordPolicy, TagPolicy)
and replays a set of crafted activities through it, printing what each
policy does to each activity.  Useful to understand exactly which mechanism
produces the moderation events the paper measures.

Run with::

    python examples/moderation_policy_lab.py
"""

from __future__ import annotations

from repro.activitypub.activities import create_activity
from repro.activitypub.actors import Actor
from repro.fediverse.clock import SECONDS_PER_DAY
from repro.fediverse.post import MediaAttachment, Post
from repro.mrf.object_age import ObjectAgePolicy
from repro.mrf.keywords import KeywordPolicy
from repro.mrf.pipeline import MRFPipeline
from repro.mrf.simple import SimplePolicy
from repro.mrf.tag import TagAction, TagPolicy
from repro.mrf.threads import HellthreadPolicy

NOW = 30 * SECONDS_PER_DAY


def build_pipeline() -> MRFPipeline:
    """An instance pipeline resembling a typical moderating admin's setup."""
    pipeline = MRFPipeline(local_domain="home.example")
    pipeline.add_policy(ObjectAgePolicy())
    pipeline.add_policy(
        SimplePolicy(
            reject=["blocked.example"],
            media_nsfw=["adult.example"],
            federated_timeline_removal=["noisy.example"],
        )
    )
    pipeline.add_policy(HellthreadPolicy(delist_threshold=5, reject_threshold=10))
    pipeline.add_policy(KeywordPolicy(reject=["casino bonus"]))
    tag_policy = TagPolicy()
    tag_policy.tag_user("annoying@elsewhere.example", TagAction.FORCE_UNLISTED)
    pipeline.add_policy(tag_policy)
    return pipeline


def sample_activities() -> list:
    """A handful of activities that each trigger a different policy."""
    def post(domain: str, author: str, content: str, **kwargs) -> Post:
        return Post(
            post_id=f"{domain}-{author}",
            author=f"{author}@{domain}",
            domain=domain,
            content=content,
            created_at=kwargs.pop("created_at", NOW - 600),
            **kwargs,
        )

    return [
        create_activity(post("friendly.example", "ana", "good morning fediverse")),
        create_activity(post("blocked.example", "troll", "you cannot silence me")),
        create_activity(
            post(
                "adult.example",
                "artist",
                "new piece up",
                attachments=(MediaAttachment(url="https://adult.example/a.png"),),
            )
        ),
        create_activity(
            post("friendly.example", "oldtimer", "remember this?", created_at=NOW - 20 * SECONDS_PER_DAY)
        ),
        create_activity(
            post(
                "elsewhere.example",
                "spammer",
                "unmissable casino bonus just for you",
            )
        ),
        create_activity(
            post(
                "elsewhere.example",
                "shouty",
                " ".join(f"@user{i}@many.example" for i in range(12)),
            )
        ),
        create_activity(
            post("elsewhere.example", "annoying", "posting about my day again"),
            actor=Actor(username="annoying", domain="elsewhere.example"),
        ),
    ]


def main() -> None:
    pipeline = build_pipeline()
    print("enabled policies:", ", ".join(pipeline.policy_names))
    print()
    header = f"{'origin':22s} {'author':10s} {'verdict':8s} {'policy':18s} {'action':28s}"
    print(header)
    print("-" * len(header))
    for activity in sample_activities():
        decision = pipeline.filter(activity, now=NOW)
        author = activity.actor.username
        print(
            f"{activity.origin_domain:22s} {author:10s} "
            f"{decision.verdict.value:8s} {decision.policy or '-':18s} {decision.action:28s}"
        )
    print()
    print(f"moderation events recorded: {len(pipeline.events)}")
    for event in pipeline.events:
        print(f"  [{event.policy}] {event.action} <- {event.origin_domain} ({event.reason})")


if __name__ == "__main__":
    main()
