"""The paper's headline result: collateral damage of instance-level rejects.

Reproduces Section 5 end-to-end — who is blocked when an instance is
rejected, how many of them ever posted harmful content, and how robust the
answer is to the Perspective threshold (Table 2) — then compares the
Section 7 strawman policies that would avoid most of that damage.

Run with::

    python examples/collateral_damage_study.py
"""

from __future__ import annotations

from repro import ReproPipeline
from repro.core.solutions import ModerationStrategy
from repro.experiments import paper_values


def main() -> None:
    pipeline = ReproPipeline(scenario="small", seed=42, campaign_days=2.0)

    print("scoring posts of rejected instances with the Perspective substitute ...")
    summary = pipeline.collateral_analyzer.summary()

    print()
    print("Section 5 — collateral damage at the 0.8 threshold")
    print(f"  rejected Pleroma instances          : {summary.rejected_pleroma_instances}")
    print(f"  ... with collected posts            : {summary.rejected_with_posts}")
    print(f"  labelled users on those instances   : {summary.labelled_users}")
    print(
        f"  harmful users                       : {summary.harmful_users} "
        f"({summary.harmful_user_share:.1%}; paper: {paper_values.HARMFUL_USER_SHARE:.1%})"
    )
    print(
        f"  innocent (collateral) users         : {summary.non_harmful_user_share:.1%} "
        f"(paper: {paper_values.NON_HARMFUL_USER_SHARE:.1%})"
    )

    print()
    print("Table 2 — non-harmful user share vs Perspective threshold")
    sweep = pipeline.collateral_analyzer.threshold_sweep()
    print("  threshold   measured   paper")
    for threshold, measured in sweep.items():
        paper = paper_values.TABLE2_NON_HARMFUL_BY_THRESHOLD[threshold]
        print(f"    {threshold:.1f}       {measured:6.1%}    {paper:6.1%}")

    print()
    print("Section 7 — what the strawman policies would change")
    comparison = pipeline.solution_evaluator.compare()
    print(f"  {'strategy':32s} {'blocked':>8s} {'collateral':>11s} {'harm stopped':>13s}")
    for outcome in comparison.outcomes:
        print(
            f"  {outcome.strategy.value:32s} {outcome.users_blocked:8d} "
            f"{outcome.collateral_share:10.1%} {outcome.harmful_post_suppression:13.1%}"
        )

    baseline = comparison.outcome(ModerationStrategy.INSTANCE_REJECT)
    per_user = comparison.outcome(ModerationStrategy.PER_USER_TAGGING)
    spared = baseline.innocent_users_blocked - per_user.innocent_users_blocked
    print()
    print(
        f"switching from instance-level rejects to per-user moderation would spare "
        f"{spared} innocent users on this dataset."
    )


if __name__ == "__main__":
    main()
