"""Demo of the Section 7 proposed policies as real MRF policies.

The paper proposes three mechanisms to reduce the collateral damage of
instance-level rejects: curated block-lists, classifier-assisted per-user
tagging, and automatic escalation against repeat offenders.  This demo runs
all three (plus the blanket reject baseline) against the same federated
instance — one troll among many ordinary users — and reports what reaches
the local timelines in each case.

Run with::

    python examples/proposed_policies_demo.py
"""

from __future__ import annotations

from repro.activitypub.delivery import FederationDelivery
from repro.fediverse.registry import FediverseRegistry
from repro.mrf.base import MRFPolicy
from repro.mrf.proposed import AutoTagPolicy, CuratedBlocklistPolicy, RepeatOffenderPolicy
from repro.mrf.simple import SimplePolicy
from repro.synth.text import TextGenerator

import random


def build_remote_instance(registry: FediverseRegistry) -> None:
    """One remote instance: 9 ordinary users and 1 persistent troll."""
    rng = random.Random(11)
    text = TextGenerator(rng)
    remote = registry.create_instance("mixed.example", install_default_policies=False)
    for index in range(9):
        username = f"user{index}"
        remote.register_user(username)
        for n in range(4):
            remote.publish(username, text.benign_post(length=18), created_at=float(n))
    remote.register_user("troll")
    for n in range(6):
        remote.publish(
            "troll", text.harmful_post(("toxicity",), 0.9, length=18), created_at=float(n)
        )


def evaluate(policy: MRFPolicy | None, label: str) -> None:
    """Deliver every remote post to a fresh local instance running ``policy``."""
    registry = FediverseRegistry()
    build_remote_instance(registry)
    local = registry.create_instance("home.example", install_default_policies=False)
    local.register_user("admin")
    if policy is not None:
        local.mrf.add_policy(policy)

    registry.clock.advance(3600)
    delivery = FederationDelivery(registry)
    remote = registry.get("mixed.example")
    benign_delivered = harmful_delivered = rejected = modified = 0
    for post in remote.local_posts():
        report = delivery.federate_post(post, ["home.example"])[0]
        is_troll = post.author.startswith("troll@")
        if report.rejected:
            rejected += 1
        elif report.modified:
            modified += 1
        elif is_troll:
            harmful_delivered += 1
        else:
            benign_delivered += 1

    print(
        f"{label:32s} benign delivered: {benign_delivered:3d}   "
        f"harmful untouched: {harmful_delivered:2d}   "
        f"rewritten: {modified:2d}   rejected: {rejected:2d}"
    )


def main() -> None:
    print("36 benign posts and 6 troll posts federate from mixed.example\n")
    evaluate(None, "no moderation")
    evaluate(SimplePolicy(reject=["mixed.example"]), "SimplePolicy reject (baseline)")
    evaluate(
        CuratedBlocklistPolicy(lists={"NoHate": ["hate.example"]}, subscribed=["NoHate"]),
        "CuratedBlocklistPolicy",
    )
    evaluate(AutoTagPolicy(min_posts=2), "AutoTagPolicy")
    evaluate(RepeatOffenderPolicy(tag_after=2, reject_after=4), "RepeatOffenderPolicy")
    print(
        "\nThe blanket reject drops every benign post (the paper's collateral damage);"
        "\nthe proposed per-user mechanisms suppress the troll while the other users"
        "\nkeep federating."
    )


if __name__ == "__main__":
    main()
