"""Demo of the Section 7 proposed policies as real MRF policies.

The paper proposes three mechanisms to reduce the collateral damage of
instance-level rejects: curated block-lists, classifier-assisted per-user
tagging, and automatic escalation against repeat offenders.  This demo runs
all three (plus the blanket reject baseline) against the same federated
instance — one troll among many ordinary users — and reports what reaches
the local timelines in each case.

Every policy — the proposed ones included — declares a
:class:`~repro.mrf.base.DecisionPlan`; the demo prints each plan's shape
and shows the effect on the batched delivery engine: the curated
block-list's origin-pure plan lets whole batches share a single reject
decision (``batch_rejects``), while content-independent rewrites are shared
per batch slice (``batch_rewrites``).

Run with::

    python examples/proposed_policies_demo.py
"""

from __future__ import annotations

from repro.activitypub.delivery import FederationDelivery
from repro.fediverse.registry import FediverseRegistry
from repro.mrf.base import MRFPolicy
from repro.mrf.proposed import AutoTagPolicy, CuratedBlocklistPolicy, RepeatOffenderPolicy
from repro.mrf.simple import SimplePolicy
from repro.synth.text import TextGenerator

import random


def build_remote_instance(registry: FediverseRegistry) -> None:
    """One remote instance: 9 ordinary users and 1 persistent troll."""
    rng = random.Random(11)
    text = TextGenerator(rng)
    remote = registry.create_instance("mixed.example", install_default_policies=False)
    for index in range(9):
        username = f"user{index}"
        remote.register_user(username)
        for n in range(4):
            remote.publish(username, text.benign_post(length=18), created_at=float(n))
    remote.register_user("troll")
    for n in range(6):
        remote.publish(
            "troll", text.harmful_post(("toxicity",), 0.9, length=18), created_at=float(n)
        )


def describe_plan(policy: MRFPolicy | None) -> str:
    """Summarise how the compiled pipeline can treat this policy."""
    if policy is None:
        return "no policy: every batch skips the pipeline entirely"
    plan = policy.plan()
    if plan is None:
        return "opaque: runs on every activity"
    pieces = []
    if plan.triggers.match_all:
        pieces.append("runs on every activity (stateful)")
    elif plan.triggers.domains or plan.triggers.suffixes:
        pieces.append("origin-triggered")
    if plan.origin_pure is not None:
        pieces.append("origin-pure: batches share one reject decision")
    if plan.shared_rewrite is not None:
        pieces.append("content-independent rewrite: slices share one rewrite")
    return "; ".join(pieces) or "narrow triggers"


def evaluate(policy: MRFPolicy | None, label: str) -> None:
    """Deliver every remote post to a fresh local instance running ``policy``.

    Posts federate through the *batched* delivery engine, one batch per
    simulated push wave, so the policy's decision plan determines how much
    of each batch shares a decision.
    """
    registry = FediverseRegistry()
    build_remote_instance(registry)
    local = registry.create_instance("home.example", install_default_policies=False)
    local.register_user("admin")
    if policy is not None:
        local.mrf.add_policy(policy)

    registry.clock.advance(3600)
    delivery = FederationDelivery(registry)
    remote = registry.get("mixed.example")
    benign_delivered = harmful_delivered = rejected = modified = 0
    for post in remote.local_posts():
        report = delivery.federate_post(post, ["home.example"])[0]
        is_troll = post.author.startswith("troll@")
        if report.rejected:
            rejected += 1
        elif report.modified:
            modified += 1
        elif is_troll:
            harmful_delivered += 1
        else:
            benign_delivered += 1

    print(
        f"{label:32s} benign delivered: {benign_delivered:3d}   "
        f"harmful untouched: {harmful_delivered:2d}   "
        f"rewritten: {modified:2d}   rejected: {rejected:2d}"
    )
    print(f"{'':32s} plan: {describe_plan(policy)}")


def show_shared_batch_decisions() -> None:
    """One batched delivery showing both shared-decision counters."""
    registry = FediverseRegistry()
    build_remote_instance(registry)
    local = registry.create_instance("home.example", install_default_policies=False)
    blocklist = CuratedBlocklistPolicy(
        lists={"NoTrolls": ["mixed.example"]}, subscribed=["NoTrolls"]
    )
    local.mrf.add_policy(blocklist)
    registry.clock.advance(3600)
    delivery = FederationDelivery(registry, sinks=[])
    remote = registry.get("mixed.example")
    from repro.activitypub.activities import create_activity

    activities = [create_activity(post) for post in remote.local_posts()]
    delivered, rejected = delivery.deliver_batch_counted(activities, "home.example")
    print(
        f"curated block-list batch:        {delivered} activities, {rejected} rejected "
        f"through batch_rejects={delivery.batch_rejects} shared decision(s)"
    )

    # The same batch against a default ObjectAge pipeline: old posts get a
    # content-independent delist shared per batch slice.
    registry2 = FediverseRegistry()
    build_remote_instance(registry2)
    registry2.create_instance("home.example")  # default policies incl. ObjectAge
    registry2.clock.advance(30 * 24 * 3600.0)
    delivery2 = FederationDelivery(registry2, sinks=[])
    remote2 = registry2.get("mixed.example")
    activities2 = [create_activity(post) for post in remote2.local_posts()]
    delivered2, rejected2 = delivery2.deliver_batch_counted(activities2, "home.example")
    print(
        f"stale-post batch (ObjectAge):    {delivered2} activities, {rejected2} rejected, "
        f"batch_rewrites={delivery2.batch_rewrites} batch(es) shared their rewrites"
    )


def main() -> None:
    print("36 benign posts and 6 troll posts federate from mixed.example\n")
    evaluate(None, "no moderation")
    evaluate(SimplePolicy(reject=["mixed.example"]), "SimplePolicy reject (baseline)")
    evaluate(
        CuratedBlocklistPolicy(lists={"NoHate": ["hate.example"]}, subscribed=["NoHate"]),
        "CuratedBlocklistPolicy",
    )
    evaluate(AutoTagPolicy(min_posts=2), "AutoTagPolicy")
    evaluate(RepeatOffenderPolicy(tag_after=2, reject_after=4), "RepeatOffenderPolicy")
    print(
        "\nThe blanket reject drops every benign post (the paper's collateral damage);"
        "\nthe proposed per-user mechanisms suppress the troll while the other users"
        "\nkeep federating.\n"
    )
    show_shared_batch_decisions()


if __name__ == "__main__":
    main()
