"""Run the paper's Section 3 measurement campaign and export the dataset.

Generates a synthetic fediverse calibrated to the paper, runs the 4-hourly
crawl (directory discovery, peers expansion, metadata snapshots, timeline
collection), prints the Section 3 headline statistics, and saves the crawled
dataset as JSON and CSV under ``./campaign_output``.

Run with::

    python examples/measurement_campaign.py [scenario]

where ``scenario`` is one of tiny / small / medium (default: small).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import CampaignConfig, MeasurementCampaign, build_scenario
from repro.datasets.export import save_dataset, write_csv_tables

OUTPUT_DIR = Path("campaign_output")


def main(scenario: str = "small") -> None:
    print(f"generating the {scenario!r} synthetic fediverse ...")
    fediverse = build_scenario(scenario, seed=42)
    stats = fediverse.stats
    print(
        f"  {stats.pleroma_instances} Pleroma + {stats.non_pleroma_instances} other instances, "
        f"{stats.users} users, {stats.posts} posts, "
        f"{stats.federated_deliveries} federated deliveries "
        f"({stats.rejected_deliveries} rejected by MRF policies)"
    )

    print("running the measurement campaign (4-hourly snapshots) ...")
    campaign = MeasurementCampaign(
        fediverse.registry,
        CampaignConfig(duration_days=2.0, snapshot_interval_hours=4.0),
    )
    result = campaign.run()

    print(f"  API requests issued: {result.api_requests}")
    print(f"  uncrawlable instances by status: {result.failure_status_breakdown}")

    dataset = result.dataset
    print("dataset statistics:")
    for key, value in sorted(dataset.stats().items()):
        print(f"  {key:35s} {value}")

    OUTPUT_DIR.mkdir(exist_ok=True)
    json_path = save_dataset(dataset, OUTPUT_DIR / "dataset.json")
    csv_paths = write_csv_tables(dataset, OUTPUT_DIR / "csv")
    print(f"wrote {json_path} and {len(csv_paths)} CSV tables under {OUTPUT_DIR / 'csv'}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
