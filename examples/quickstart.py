"""Quickstart: a two-instance fediverse and the full reproduction pipeline.

The first half builds a miniature fediverse by hand — two Pleroma instances,
one of which rejects the other — and shows Pleroma's MRF moderation acting
on real federated posts.  The second half runs the complete measurement
pipeline (synthetic fediverse → crawl → analysis) and regenerates one of the
paper's headline results.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ReproPipeline, run_experiment
from repro.activitypub.delivery import FederationDelivery
from repro.fediverse.registry import FediverseRegistry
from repro.mrf.simple import SimplePolicy


def hand_built_fediverse() -> None:
    """Two instances, one reject policy, one blocked post."""
    print("=== Part 1: moderation on a hand-built fediverse ===")
    registry = FediverseRegistry()
    moderated = registry.create_instance("quiet.example")
    rejected = registry.create_instance("rowdy.example")

    moderated.register_user("alice")
    rejected.register_user("bob")

    # The admin of quiet.example rejects everything from rowdy.example and
    # strips media from a picture-heavy instance.
    moderated.mrf.add_policy(
        SimplePolicy(reject=["rowdy.example"], media_removal=["pics.example"])
    )

    delivery = FederationDelivery(registry)
    post = rejected.publish("bob", "hello neighbours!")
    report = delivery.federate_post(post, ["quiet.example"])[0]

    print(f"post from {post.author!r} delivered to quiet.example:")
    print(f"  accepted: {report.accepted}")
    print(f"  policy:   {report.policy}")
    print(f"  action:   {report.action}")
    print(f"  moderation events logged: {len(moderated.mrf.events)}")
    print()


def full_pipeline() -> None:
    """Generate, crawl and analyse a synthetic fediverse."""
    print("=== Part 2: the reproduction pipeline ===")
    pipeline = ReproPipeline(scenario="tiny", seed=7, campaign_days=1.0)

    stats = pipeline.dataset.stats()
    print(
        f"crawled {stats['crawlable_pleroma_instances']} of "
        f"{stats['pleroma_instances']} Pleroma instances, "
        f"{stats['collected_posts']} public posts collected"
    )

    result = run_experiment("collateral", pipeline)
    print()
    print(result.to_text(row_limit=8))


def main() -> None:
    hand_built_fediverse()
    full_pipeline()


if __name__ == "__main__":
    main()
