"""E-GRAPH benchmark: the Section 6 federation-graph impact."""

from __future__ import annotations

from repro.experiments import graph_impact


def test_bench_graph_impact(benchmark, pipeline):
    """Quantify the reachability loss caused by the observed rejects."""
    result = benchmark(graph_impact.run, pipeline)
    assert result.measured("rejects_fragment_graph") == 1.0
    assert result.measured("pair_loss_share") >= 0.0
