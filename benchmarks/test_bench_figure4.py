"""E-FIG4 benchmark: regenerate Figure 4 (rejected instances' scores)."""

from __future__ import annotations

from repro.experiments import figure4


def test_bench_figure4(benchmark, warm_pipeline):
    """Regenerate Figure 4 and check the instance score band."""
    result = benchmark(figure4.run, warm_pipeline)
    assert 0.0 < result.measured("mean_toxicity") < 0.6
