"""E-STATS benchmark: regenerate the Section 3 dataset statistics."""

from __future__ import annotations

from repro.experiments import dataset_stats


def test_bench_dataset_stats(benchmark, pipeline):
    """Regenerate the Section 3 headline statistics and check their shape."""
    result = benchmark(dataset_stats.run, pipeline)
    assert result.measured("pleroma_share_of_instances") > 0.05
    assert result.measured("crawlable_pleroma_share") > 0.7
