"""E-MRF ablation benchmark: per-policy filtering throughput.

DESIGN.md calls for an ablation of the moderation engine itself: how fast
does each in-built policy (and a representative full pipeline) filter
activities?  This is the cost an instance pays per inbound federated post.
"""

from __future__ import annotations

import random

import pytest

from repro.activitypub.activities import create_activity
from repro.fediverse.post import MediaAttachment, Post
from repro.mrf.pipeline import MRFPipeline
from repro.mrf.registry import create_policy
from repro.mrf.simple import SimplePolicy
from repro.synth.text import TextGenerator

#: Policies benchmarked individually (a representative spread of cheap
#: pass-through, text-scanning and rewriting policies).
POLICIES = (
    "NoOpPolicy",
    "ObjectAgePolicy",
    "SimplePolicy",
    "TagPolicy",
    "HellthreadPolicy",
    "KeywordPolicy",
    "HashtagPolicy",
    "AntiLinkSpamPolicy",
    "NormalizeMarkup",
)


def _make_activities(count: int = 300) -> list:
    rng = random.Random(99)
    text = TextGenerator(rng)
    activities = []
    for index in range(count):
        content = text.benign_post(length=20)
        attachments = ()
        if index % 5 == 0:
            attachments = (MediaAttachment(url=f"https://origin.example/m{index}.png"),)
        post = Post(
            post_id=f"p{index}",
            author=f"user{index % 40}@origin.example",
            domain="origin.example",
            content=content,
            created_at=float(index),
            attachments=attachments,
        )
        activities.append(create_activity(post))
    return activities


ACTIVITIES = _make_activities()


@pytest.mark.parametrize("policy_name", POLICIES)
def test_bench_single_policy_throughput(benchmark, policy_name):
    """Filter a batch of activities through one policy."""
    kwargs = {}
    if policy_name == "SimplePolicy":
        kwargs = {"reject": ["blocked.example"], "media_nsfw": ["origin.example"]}
    elif policy_name == "KeywordPolicy":
        kwargs = {"reject": ["casino"], "federated_timeline_removal": ["gossip"]}
    policy = create_policy(policy_name, **kwargs)
    pipeline = MRFPipeline(local_domain="local.example")
    pipeline.add_policy(policy)

    def run() -> int:
        accepted = 0
        for activity in ACTIVITIES:
            if pipeline.filter(activity, now=1e6).accepted:
                accepted += 1
        return accepted

    accepted = benchmark(run)
    assert 0 <= accepted <= len(ACTIVITIES)


def test_bench_full_pipeline_throughput(benchmark):
    """Filter a batch of activities through a realistic multi-policy pipeline."""
    pipeline = MRFPipeline(local_domain="local.example")
    pipeline.add_policy(create_policy("ObjectAgePolicy"))
    pipeline.add_policy(SimplePolicy(media_nsfw=["origin.example"], reject=["blocked.example"]))
    pipeline.add_policy(create_policy("HellthreadPolicy"))
    pipeline.add_policy(create_policy("KeywordPolicy", reject=["casino"]))
    pipeline.add_policy(create_policy("NormalizeMarkup"))

    def run() -> int:
        return sum(1 for a in ACTIVITIES if pipeline.filter(a, now=1e6).accepted)

    accepted = benchmark(run)
    assert accepted == len(ACTIVITIES)
