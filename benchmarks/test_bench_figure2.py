"""E-FIG2 benchmark: regenerate Figure 2 (instances targeted per action)."""

from __future__ import annotations

from repro.experiments import figure2


def test_bench_figure2(benchmark, pipeline):
    """Regenerate Figure 2 and check reject targets the most instances."""
    result = benchmark(figure2.run, pipeline)
    assert result.rows[0]["action"] == "reject"
    assert result.measured("non_pleroma_share_of_reject_targets") > 0.5
