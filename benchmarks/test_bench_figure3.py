"""E-FIG3 benchmark: regenerate Figure 3 (instances applying each action)."""

from __future__ import annotations

from repro.experiments import figure3


def test_bench_figure3(benchmark, pipeline):
    """Regenerate Figure 3 and check reject is the most applied action."""
    result = benchmark(figure3.run, pipeline)
    assert result.measured("reject_applied_by_most_instances") == 1.0
    assert result.measured("reject_event_share") > 0.5
