"""E-TAB2 benchmark: regenerate Table 2 (threshold sweep)."""

from __future__ import annotations

from repro.experiments import table2


def test_bench_table2(benchmark, warm_pipeline):
    """Regenerate Table 2 and check the sweep stays above 80% non-harmful."""
    result = benchmark(table2.run, warm_pipeline)
    assert result.measured("sweep_is_monotone") == 1.0
    assert result.measured("non_harmful_at_0.5") > 0.8
