"""Shared fixtures for the benchmark harness.

Every per-figure/per-table benchmark regenerates the corresponding paper
artefact against a shared, session-scoped pipeline (generated and crawled
once), so the benchmark numbers measure the *analysis* cost and the reported
comparisons stay consistent across the whole harness.
"""

from __future__ import annotations

import pytest

from repro.experiments.pipeline import ReproPipeline


@pytest.fixture(scope="session")
def pipeline() -> ReproPipeline:
    """The calibration-scale pipeline every experiment benchmark reuses."""
    pipe = ReproPipeline(scenario="small", seed=42, campaign_days=2.0)
    # Materialise the expensive stages up-front so individual benchmarks
    # measure analysis cost, not generation/crawl cost.
    pipe.dataset
    return pipe


@pytest.fixture(scope="session")
def warm_pipeline(pipeline: ReproPipeline) -> ReproPipeline:
    """The same pipeline with the Perspective score cache pre-warmed."""
    pipeline.collateral_analyzer.summary()
    return pipeline
