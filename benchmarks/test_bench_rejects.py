"""E-REJ benchmark: regenerate the Section 4.2 rejected-instance scalars."""

from __future__ import annotations

from repro.experiments import rejects


def test_bench_rejects(benchmark, warm_pipeline):
    """Regenerate the Section 4.2 scalars and check their shape."""
    result = benchmark(rejects.run, warm_pipeline)
    assert result.measured("non_pleroma_share_of_rejected") > 0.5
    assert result.measured("spearman_posts_vs_rejects") > -0.2
    assert result.measured("annotated_harmful_category_share") > 0.6
