"""E-FIG7 benchmark: regenerate Figure 7 (the full policy spectrum)."""

from __future__ import annotations

from repro.experiments import figure7


def test_bench_figure7(benchmark, pipeline):
    """Regenerate Figure 7 and check custom policies are observed."""
    result = benchmark(figure7.run, pipeline)
    assert result.measured("most_enabled_policy_is_objectage") == 1.0
    assert result.measured("distinct_policy_types") >= 15
