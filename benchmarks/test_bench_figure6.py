"""E-FIG6 benchmark: regenerate Figure 6 (harmful vs non-harmful users)."""

from __future__ import annotations

from repro.experiments import figure6


def test_bench_figure6(benchmark, warm_pipeline):
    """Regenerate Figure 6 and check the non-harmful bars dominate."""
    result = benchmark(figure6.run, warm_pipeline)
    assert result.measured("non_harmful_user_share") > 0.85
