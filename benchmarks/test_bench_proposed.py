"""Ablation benchmark: the Section 7 proposed policies vs instance rejects.

Replays the same stream of mixed (harmful + benign) federated posts through
the blanket instance-level reject and through each proposed policy, and
measures both the filtering throughput and the collateral profile (how many
benign posts survive).
"""

from __future__ import annotations

import random

import pytest

from repro.activitypub.activities import create_activity
from repro.activitypub.actors import Actor
from repro.fediverse.post import Post
from repro.mrf.pipeline import MRFPipeline
from repro.mrf.proposed import AutoTagPolicy, CuratedBlocklistPolicy, RepeatOffenderPolicy
from repro.mrf.simple import SimplePolicy
from repro.synth.text import TextGenerator


def _activity_stream(count: int = 400):
    """A stream from one instance where 1 user in 20 posts harmful content."""
    rng = random.Random(17)
    text = TextGenerator(rng)
    activities = []
    for index in range(count):
        user = f"user{index % 20}"
        harmful = user == "user0"
        content = (
            text.harmful_post(("toxicity",), 0.88, length=20)
            if harmful
            else text.benign_post(length=20)
        )
        post = Post(
            post_id=f"p{index}",
            author=f"{user}@mixed.example",
            domain="mixed.example",
            content=content,
            created_at=float(index),
        )
        actor = Actor(username=user, domain="mixed.example", created_at=0.0, follower_count=5)
        activities.append(create_activity(post, actor=actor))
    return activities


STREAM = _activity_stream()
BENIGN_TOTAL = sum(1 for a in STREAM if a.actor.username != "user0")


def _pipeline_with(policy) -> MRFPipeline:
    pipeline = MRFPipeline(local_domain="home.example")
    pipeline.add_policy(policy)
    return pipeline


def _replay(pipeline: MRFPipeline) -> tuple[int, int]:
    """Return (benign posts delivered untouched, harmful posts suppressed)."""
    benign_delivered = 0
    harmful_suppressed = 0
    for activity in STREAM:
        decision = pipeline.filter(activity, now=1e6)
        harmful = activity.actor.username == "user0"
        if harmful and (decision.rejected or decision.modified):
            harmful_suppressed += 1
        if not harmful and decision.accepted and not decision.modified:
            benign_delivered += 1
    return benign_delivered, harmful_suppressed


def test_bench_baseline_instance_reject(benchmark):
    """Blanket reject of the whole instance: everything is suppressed."""
    pipeline = _pipeline_with(SimplePolicy(reject=["mixed.example"]))
    benign_delivered, _ = benchmark(_replay, pipeline)
    assert benign_delivered == 0  # the collateral damage the paper measures


def test_bench_curated_blocklist(benchmark):
    """Curated lists that do not contain this mostly-benign instance."""
    policy = CuratedBlocklistPolicy(
        lists={"NoHate": ["hate.example"]}, subscribed=["NoHate"]
    )
    pipeline = _pipeline_with(policy)
    benign_delivered, _ = benchmark(_replay, pipeline)
    assert benign_delivered == BENIGN_TOTAL


def test_bench_auto_tag_policy(benchmark):
    """Classifier-assisted per-user tagging spares benign users."""
    pipeline = _pipeline_with(AutoTagPolicy(min_posts=2))
    benign_delivered, harmful_suppressed = benchmark(_replay, pipeline)
    assert benign_delivered == BENIGN_TOTAL
    assert harmful_suppressed > 0


def test_bench_repeat_offender_policy(benchmark):
    """Strike-based escalation suppresses the offender, spares the rest."""
    pipeline = _pipeline_with(RepeatOffenderPolicy(tag_after=2, reject_after=4))
    benign_delivered, harmful_suppressed = benchmark(_replay, pipeline)
    assert benign_delivered == BENIGN_TOTAL
    assert harmful_suppressed > 0
