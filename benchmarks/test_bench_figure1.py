"""E-FIG1 benchmark: regenerate Figure 1 (top-15 policy types)."""

from __future__ import annotations

from repro.experiments import figure1


def test_bench_figure1(benchmark, pipeline):
    """Regenerate Figure 1 and check ObjectAgePolicy tops the ranking."""
    result = benchmark(figure1.run, pipeline)
    assert result.rows[0]["policy"] == "ObjectAgePolicy"
    assert result.measured("ObjectAgePolicy_instance_share") > 0.5
