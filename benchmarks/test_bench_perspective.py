"""Perspective-substitute benchmark: post-scoring throughput.

The paper scores every post of every rejected instance through the
Perspective API; this benchmark measures what the offline substitute costs
per post, with and without the client cache.
"""

from __future__ import annotations

import random

from repro.perspective.client import PerspectiveClient
from repro.perspective.scorer import LexiconScorer
from repro.synth.text import TextGenerator


def _texts(count: int = 500) -> list[str]:
    rng = random.Random(3)
    generator = TextGenerator(rng)
    texts = []
    for index in range(count):
        if index % 10 == 0:
            texts.append(generator.harmful_post(("toxicity",), 0.85, length=20))
        else:
            texts.append(generator.benign_post(length=20))
    return texts


TEXTS = _texts()


def test_bench_scorer_throughput(benchmark):
    """Raw scorer throughput (no client, no cache)."""
    scorer = LexiconScorer()
    results = benchmark(scorer.score_many, TEXTS)
    assert len(results) == len(TEXTS)


def test_bench_client_with_cache(benchmark):
    """Client throughput when every text repeats (full cache hits after warm-up)."""
    client = PerspectiveClient()
    client.analyze_many(TEXTS)

    def run():
        return client.analyze_many(TEXTS)

    results = benchmark(run)
    assert all(result.cached for result in results)
