"""E-CRAWL ablation benchmark: measurement-campaign cost.

How does the crawl cost scale with the fediverse size and the snapshot
interval?  The paper's campaign snapshots every Pleroma instance every four
hours for five months; this ablation shows what that choice costs in API
requests and wall-clock time.
"""

from __future__ import annotations

import pytest

from repro.crawler.campaign import CampaignConfig, MeasurementCampaign
from repro.synth.scenario import build_scenario

_FEDIVERSE_CACHE: dict[str, object] = {}


def _fediverse(scenario: str):
    if scenario not in _FEDIVERSE_CACHE:
        _FEDIVERSE_CACHE[scenario] = build_scenario(scenario, seed=21)
    return _FEDIVERSE_CACHE[scenario]


@pytest.mark.parametrize("scenario", ["tiny", "small"])
def test_bench_campaign_vs_fediverse_size(benchmark, scenario):
    """Full campaign (discovery, snapshots, timelines) vs population size."""
    fediverse = _fediverse(scenario)

    def run():
        return MeasurementCampaign(
            fediverse.registry,
            CampaignConfig(duration_days=1.0, directory_coverage=1.0),
        ).run()

    result = benchmark(run)
    assert result.crawlable_pleroma > 0
    assert result.dataset.stats()["collected_posts"] > 0


@pytest.mark.parametrize("interval_hours", [4.0, 12.0, 24.0])
def test_bench_campaign_vs_snapshot_interval(benchmark, interval_hours):
    """Campaign cost vs snapshot interval (the paper uses 4 hours)."""
    fediverse = _fediverse("tiny")

    def run():
        return MeasurementCampaign(
            fediverse.registry,
            CampaignConfig(
                duration_days=2.0,
                snapshot_interval_hours=interval_hours,
                directory_coverage=1.0,
            ),
        ).run()

    result = benchmark(run)
    expected_rounds = int(2.0 * 24 / interval_hours)
    assert max(result.snapshot_counts.values()) == expected_rounds
