"""E-TAB1 benchmark: regenerate Table 1 (top-5 rejected Pleroma instances)."""

from __future__ import annotations

from repro.experiments import table1


def test_bench_table1(benchmark, warm_pipeline):
    """Regenerate Table 1 and check the elite instances dominate the head."""
    result = benchmark(table1.run, warm_pipeline)
    assert result.measured("elite_instances_in_top5") >= 3
