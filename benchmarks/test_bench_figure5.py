"""E-FIG5 benchmark: regenerate Figure 5 (rejected instances, users, rejects)."""

from __future__ import annotations

from repro.experiments import figure5


def test_bench_figure5(benchmark, pipeline):
    """Regenerate Figure 5 and check the user concentration on rejected instances."""
    result = benchmark(figure5.run, pipeline)
    assert result.measured("rejected_user_share") > 0.7
    assert result.measured("rejected_pleroma_share") < 0.3
