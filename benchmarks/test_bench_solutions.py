"""E-SOL benchmark: the Section 7 strawman-policy ablation."""

from __future__ import annotations

from repro.experiments import solutions


def test_bench_solutions(benchmark, warm_pipeline):
    """Evaluate every strawman strategy and check per-user moderation wins."""
    result = benchmark(solutions.run, warm_pipeline)
    assert result.measured("baseline_collateral_share") > 0.8
    assert result.measured("per_user_tagging_collateral_share") <= 0.05
    assert result.measured("collateral_reduction_vs_baseline") > 0.8
