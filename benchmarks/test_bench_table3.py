"""E-TAB3 benchmark: regenerate Table 3 (in-built policy adoption)."""

from __future__ import annotations

from repro.experiments import table3


def test_bench_table3(benchmark, pipeline):
    """Regenerate Table 3 and check the paper's top policies are recovered."""
    result = benchmark(table3.run, pipeline)
    assert result.measured("top10_policies_recovered") >= 8
