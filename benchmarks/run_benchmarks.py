#!/usr/bin/env python
"""Run the perf harness and emit ``BENCH_<scenario>.json`` files.

This is deliberately *not* a pytest module: the tier-1 test run stays fast
and unaffected.  Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py
    PYTHONPATH=src python benchmarks/run_benchmarks.py --scenario small --scenario large
    PYTHONPATH=src python benchmarks/run_benchmarks.py --stage sharding --workers 1 --workers 4
    PYTHONPATH=src python benchmarks/run_benchmarks.py --out-dir benchmarks/results

See PERFORMANCE.md for what each number means.
"""

from __future__ import annotations

import argparse
import faulthandler
import sys
from pathlib import Path

if __package__ is None or __package__ == "":  # pragma: no cover - script mode
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.harness import STAGES, BenchReport, run_scenario, write_bench_json
from repro.synth.scenario import SCENARIOS


def _print_scaling_table(metrics: dict, workers: list[int]) -> None:
    """Print the sharding stage's per-worker-count scaling table."""
    naive = metrics.get("naive_seconds", 0.0)
    engine = metrics.get("engine_seconds", 0.0)
    print(
        f"   {'sharding':16s} engine {engine * 1000:9.2f} ms, "
        f"naive {naive * 1000:9.2f} ms, "
        f"best sharded {metrics.get('sharded_seconds', 0.0) * 1000:9.2f} ms"
        f"  -> {metrics.get('speedup', 0.0):6.1f}x"
    )
    print(
        f"   {'':16s} {'workers':>8s} {'seconds':>10s} {'speedup':>8s} "
        f"{'vs engine':>9s} {'efficiency':>10s} {'mode':>6s}"
    )
    for n in workers:
        seconds = metrics.get(f"sharded_seconds_workers_{n}")
        if seconds is None:
            continue
        forked = metrics.get(f"forked_workers_{n}", 0.0)
        print(
            f"   {'':16s} {n:8d} {seconds:10.4f} "
            f"{metrics.get(f'speedup_workers_{n}', 0.0):7.2f}x "
            f"{metrics.get(f'engine_ratio_workers_{n}', 0.0):8.2f}x "
            f"{metrics.get(f'scaling_efficiency_workers_{n}', 0.0):10.3f} "
            f"{'fork' if forked else 'inline':>6s}"
        )
    gate = metrics.get("fork_gate_seconds", 0.0)
    if gate:
        print(
            f"   {'':16s} forced-fork determinism gate passed "
            f"(2 workers, {gate:.4f}s)"
        )


def _print_shard_chaos(metrics: dict) -> None:
    """Print the shard_chaos stage's worker-death recovery summary."""
    if not metrics.get("fork_available"):
        print(
            f"   {'shard_chaos':16s} skipped (fork unavailable on this platform)"
        )
        return
    print(
        f"   {'shard_chaos':16s} recovery {metrics['recovery_rate']:.3f} "
        f"({metrics['recovered_shards']:.0f}/{metrics['failed_shards']:.0f} "
        f"failed shards), "
        f"{metrics['inline_fallbacks']:.0f} inline fallbacks, "
        f"retry cost {metrics['recovery_retry_seconds'] * 1000:.0f} ms"
    )
    print(
        f"   {'':16s} zero-fault supervised "
        f"{metrics['supervised_seconds'] * 1000:9.2f} ms vs unsupervised "
        f"{metrics['unsupervised_seconds'] * 1000:9.2f} ms "
        f"-> {metrics['zero_fault_overhead']:.2f}x overhead"
    )
    kinds = ", ".join(
        f"{key[len('recovered_'):]} {value:.0f}"
        for key, value in sorted(metrics.items())
        if key.startswith("recovered_") and key != "recovered_shards"
    )
    if kinds:
        print(f"   {'':16s} recovered by kind: {kinds}")


def _print_serving(metrics: dict) -> None:
    """Print the serving stage's per-thread-count latency table."""
    print(
        f"   {'serving':16s} best concurrent "
        f"{metrics.get('concurrent_seconds', 0.0) * 1000:9.2f} ms, "
        f"engine {metrics.get('engine_seconds', 0.0) * 1000:9.2f} ms, "
        f"naive {metrics.get('naive_seconds', 0.0) * 1000:9.2f} ms"
        f"  -> {metrics.get('speedup', 0.0):6.1f}x"
    )
    print(
        f"   {'':16s} {'threads':>8s} {'seconds':>10s} {'p50 ms':>9s} "
        f"{'p95 ms':>9s} {'p99 ms':>9s} {'tail':>6s} {'req/s':>10s}"
    )
    thread_counts = sorted(
        int(key[len("concurrent_seconds_threads_"):])
        for key in metrics
        if key.startswith("concurrent_seconds_threads_")
    )
    for n in thread_counts:
        print(
            f"   {'':16s} {n:8d} "
            f"{metrics[f'concurrent_seconds_threads_{n}']:10.4f} "
            f"{metrics[f'p50_ms_threads_{n}']:9.3f} "
            f"{metrics[f'p95_ms_threads_{n}']:9.3f} "
            f"{metrics[f'p99_ms_threads_{n}']:9.3f} "
            f"{metrics[f'tail_amplification_threads_{n}']:5.1f}x "
            f"{metrics[f'requests_per_second_threads_{n}']:10.0f}"
        )


def _print_report(report: BenchReport) -> None:
    print(f"== {report.scenario} (seed {report.seed}) ==")
    print(
        "   dataset: "
        + ", ".join(f"{key}={value}" for key, value in report.dataset.items())
    )
    for section, metrics in report.metrics.items():
        if section == "sharding":
            _print_scaling_table(metrics, report.workers)
            continue
        if section == "shard_chaos":
            _print_shard_chaos(metrics)
            continue
        if section == "serving":
            _print_serving(metrics)
            continue
        if "recovery_rate" in metrics:
            print(
                f"   {section:16s} recovery {metrics['recovery_rate']:.3f} "
                f"(frail {metrics['frail_recovery_rate']:.3f}), "
                f"{metrics['faults_injected']:.0f} faults, "
                f"{metrics['retries']:.0f} retries, "
                f"recall none/mixed/heavy "
                f"{metrics['reject_recall_none']:.3f}/"
                f"{metrics['reject_recall_mixed']:.3f}/"
                f"{metrics['reject_recall_heavy']:.3f}"
            )
            continue
        speedup = metrics.get("speedup", 0.0)
        naive = metrics.get("naive_seconds", 0.0)
        fast = (
            metrics.get("indexed_seconds")
            or metrics.get("compiled_seconds")
            or metrics.get("columns_seconds")
            or metrics.get("single_pass_seconds")
            or metrics.get("optimised_seconds")
            or metrics.get("engine_seconds")
            or 0.0
        )
        print(
            f"   {section:16s} {fast * 1000:9.2f} ms vs {naive * 1000:9.2f} ms naive"
            f"  -> {speedup:6.1f}x"
        )


def _check_speedups(reports: list[BenchReport], minimum: float) -> list[str]:
    """Return one line per bench stage whose recorded speedup is below ``minimum``.

    The CI smoke job runs with ``--min-speedup 1.0``: a regenerated BENCH
    output in which any optimised path is *slower* than its seed-faithful
    baseline fails the job, so perf regressions surface on the PR that
    introduces them rather than in a later re-measure.
    """
    failures = []
    for report in reports:
        for section, metrics in report.metrics.items():
            speedup = metrics.get("speedup")
            if speedup is not None and speedup < minimum:
                failures.append(
                    f"{report.scenario}/{section}: speedup {speedup:.2f}x "
                    f"below the {minimum:.2f}x floor"
                )
    return failures


def _check_recovery(reports: list[BenchReport], minimum: float) -> list[str]:
    """Return one line per stage whose recovery rate is below ``minimum``.

    The CI smoke job runs with ``--min-recovery``: the chaos and
    shard_chaos stages already gate zero-fault reproduction and
    bit-identical recovery internally (raising on divergence), and this
    check additionally fails the job when the resilient crawl recovers
    less than the given fraction of the fault-free crawl's snapshots, or
    when the shard supervisor recovers less than that fraction of the
    shards whose workers were killed.
    """
    failures = []
    for report in reports:
        for section, metrics in report.metrics.items():
            recovery = metrics.get("recovery_rate")
            if recovery is not None and recovery < minimum:
                failures.append(
                    f"{report.scenario}/{section}: recovery {recovery:.3f} "
                    f"below the {minimum:.3f} floor"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario(s) to benchmark (default: small and large)",
    )
    parser.add_argument(
        "--stage",
        action="append",
        choices=STAGES,
        help="bench stage(s) to run (default: all; xxlarge defaults to sharding)",
    )
    parser.add_argument(
        "--workers",
        action="append",
        type=int,
        help="worker count(s) for the sharding stage (repeatable; default 1 2 4)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--campaign-days", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="where BENCH_<scenario>.json files are written (default: repo root)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if any stage's recorded speedup falls below this",
    )
    parser.add_argument(
        "--min-recovery",
        type=float,
        default=None,
        help="fail (exit 1) if the chaos or shard_chaos recovery rate "
        "falls below this",
    )
    parser.add_argument(
        "--hang-timeout",
        type=float,
        default=1800.0,
        help="dump every thread's stack and abort if one scenario runs longer "
        "than this many seconds (0 disables)",
    )
    args = parser.parse_args(argv)
    scenarios = tuple(args.scenario) if args.scenario else ("small", "large")

    reports = []
    for scenario in scenarios:
        if args.hang_timeout > 0:
            # Hang tripwire, re-armed per scenario: if a wedged worker pipe
            # or supervisor poll loop ever stalls the harness, faulthandler
            # dumps every thread's stack to stderr and kills the process,
            # instead of the CI job idling until its global timeout.
            faulthandler.dump_traceback_later(args.hang_timeout, exit=True)
        report = run_scenario(
            scenario,
            seed=args.seed,
            campaign_days=args.campaign_days,
            repeats=args.repeats,
            stages=tuple(args.stage) if args.stage else None,
            workers=tuple(args.workers) if args.workers else None,
        )
        path = write_bench_json(report, args.out_dir)
        _print_report(report)
        print(f"   wrote {path}")
        reports.append(report)
    faulthandler.cancel_dump_traceback_later()

    if args.min_speedup is not None:
        failures = _check_speedups(reports, args.min_speedup)
        if failures:
            print("PERF REGRESSION:")
            for line in failures:
                print(f"   {line}")
            return 1
        print(f"all speedups clear the {args.min_speedup:.2f}x floor")
    if args.min_recovery is not None:
        failures = _check_recovery(reports, args.min_recovery)
        if failures:
            print("RESILIENCE REGRESSION:")
            for line in failures:
                print(f"   {line}")
            return 1
        print(f"chaos recovery clears the {args.min_recovery:.2f} floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
