#!/usr/bin/env python
"""Run the perf harness and emit ``BENCH_<scenario>.json`` files.

This is deliberately *not* a pytest module: the tier-1 test run stays fast
and unaffected.  Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py
    PYTHONPATH=src python benchmarks/run_benchmarks.py --scenario small --scenario large
    PYTHONPATH=src python benchmarks/run_benchmarks.py --out-dir benchmarks/results

See PERFORMANCE.md for what each number means.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ is None or __package__ == "":  # pragma: no cover - script mode
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.harness import BenchReport, run_scenario, write_bench_json
from repro.synth.scenario import SCENARIOS


def _print_report(report: BenchReport) -> None:
    print(f"== {report.scenario} (seed {report.seed}) ==")
    print(
        "   dataset: "
        + ", ".join(f"{key}={value}" for key, value in report.dataset.items())
    )
    for section, metrics in report.metrics.items():
        speedup = metrics.get("speedup", 0.0)
        naive = metrics.get("naive_seconds", 0.0)
        fast = (
            metrics.get("indexed_seconds")
            or metrics.get("single_pass_seconds")
            or metrics.get("optimised_seconds")
            or metrics.get("engine_seconds")
            or 0.0
        )
        print(
            f"   {section:16s} {fast * 1000:9.2f} ms vs {naive * 1000:9.2f} ms naive"
            f"  -> {speedup:6.1f}x"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario(s) to benchmark (default: small and large)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--campaign-days", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="where BENCH_<scenario>.json files are written (default: repo root)",
    )
    args = parser.parse_args(argv)
    scenarios = tuple(args.scenario) if args.scenario else ("small", "large")

    for scenario in scenarios:
        report = run_scenario(
            scenario,
            seed=args.seed,
            campaign_days=args.campaign_days,
            repeats=args.repeats,
        )
        path = write_bench_json(report, args.out_dir)
        _print_report(report)
        print(f"   wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
