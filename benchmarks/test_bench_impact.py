"""E-IMPACT benchmark: regenerate the Section 4.1 impact scalars.

This doubles as the end-to-end correctness check called out in DESIGN.md:
the impact numbers come from executed policy configurations, not tabulated
constants.
"""

from __future__ import annotations

from repro.experiments import impact


def test_bench_impact(benchmark, pipeline):
    """Regenerate the Section 4.1 scalars and check the headline shares."""
    result = benchmark(impact.run, pipeline)
    assert result.measured("user_impact_share") > 0.9
    assert result.measured("user_reject_share") > 0.75
    assert result.measured("reject_event_share") > 0.5
