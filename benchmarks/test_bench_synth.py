"""Workload-generation benchmark: synthetic-fediverse construction cost."""

from __future__ import annotations

import pytest

from repro.synth.generator import FediverseGenerator
from repro.synth.scenario import scenario_config


@pytest.mark.parametrize("scenario", ["tiny", "small"])
def test_bench_generation(benchmark, scenario):
    """Generate a complete fediverse (instances, users, posts, federation)."""
    config = scenario_config(scenario, seed=5)

    def run():
        return FediverseGenerator(config).generate()

    fediverse = benchmark(run)
    assert fediverse.stats.users > 0
    assert fediverse.stats.federated_deliveries > 0
