"""E-COLL benchmark: regenerate the Section 5 collateral-damage scalars."""

from __future__ import annotations

from repro.experiments import collateral


def test_bench_collateral(benchmark, warm_pipeline):
    """Regenerate the Section 5 scalars and check the collateral share."""
    result = benchmark(collateral.run, warm_pipeline)
    assert result.measured("non_harmful_user_share") > 0.85
    assert result.measured("harmful_user_share") < 0.15
