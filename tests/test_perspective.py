"""Tests for the Perspective-API substitute."""

from __future__ import annotations

import pytest

from repro.perspective.attributes import (
    ATTRIBUTES,
    Attribute,
    AttributeScores,
    HARMFUL_THRESHOLD,
)
from repro.perspective.client import PerspectiveClient, RateLimitExceeded
from repro.perspective.lexicon import Lexicon, default_lexicon, tokenize
from repro.perspective.scorer import (
    CEILING,
    LexiconScorer,
    density_for_score,
    score_for_density,
)


class TestAttributeScores:
    def test_defaults_to_zero(self):
        scores = AttributeScores()
        assert scores.max_score == 0.0
        assert not scores.is_harmful()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            AttributeScores(toxicity=1.5)
        with pytest.raises(ValueError):
            AttributeScores(profanity=-0.1)

    def test_get_by_enum_and_name(self):
        scores = AttributeScores(toxicity=0.4)
        assert scores.get(Attribute.TOXICITY) == 0.4
        assert scores.get("toxicity") == 0.4

    def test_is_harmful_threshold(self):
        scores = AttributeScores(sexually_explicit=0.85)
        assert scores.is_harmful()
        assert not scores.is_harmful(threshold=0.9)

    def test_harmful_attributes(self):
        scores = AttributeScores(toxicity=0.9, profanity=0.85)
        assert scores.harmful_attributes() == (Attribute.TOXICITY, Attribute.PROFANITY)

    def test_mean(self):
        mean = AttributeScores.mean(
            [AttributeScores(toxicity=0.2), AttributeScores(toxicity=0.6)]
        )
        assert mean.toxicity == pytest.approx(0.4)

    def test_mean_of_empty_list(self):
        assert AttributeScores.mean([]).max_score == 0.0

    def test_as_dict_has_all_attributes(self):
        assert set(AttributeScores().as_dict()) == {a.value for a in ATTRIBUTES}

    def test_paper_threshold_constant(self):
        assert HARMFUL_THRESHOLD == 0.8


class TestLexicon:
    def test_default_lexicon_has_all_attributes(self):
        lexicon = default_lexicon()
        for attribute in ATTRIBUTES:
            assert lexicon.attribute_terms(attribute)

    def test_add_and_remove_term(self):
        lexicon = Lexicon()
        lexicon.add_term(Attribute.TOXICITY, "Meanie", weight=1.2)
        assert lexicon.weight(Attribute.TOXICITY, "meanie") == 1.2
        assert lexicon.remove_term(Attribute.TOXICITY, "meanie")
        assert not lexicon.remove_term(Attribute.TOXICITY, "meanie")

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            Lexicon().add_term(Attribute.TOXICITY, "x", weight=0)

    def test_weighted_hits(self):
        lexicon = default_lexicon()
        hits = lexicon.weighted_hits(Attribute.TOXICITY, tokenize("you idiot idiot"))
        assert hits == pytest.approx(2.0)

    def test_default_lexicons_are_independent_copies(self):
        first = default_lexicon()
        first.add_term(Attribute.TOXICITY, "zonk")
        assert default_lexicon().weight(Attribute.TOXICITY, "zonk") == 0.0

    def test_tokenize(self):
        assert tokenize("Hello, World! it's fine") == ["hello", "world", "it's", "fine"]


class TestScorer:
    def test_density_mapping_roundtrip(self):
        for score in (0.0, 0.3, 0.8, 0.95):
            assert score_for_density(density_for_score(score)) == pytest.approx(score)

    def test_density_for_unreachable_score(self):
        with pytest.raises(ValueError):
            density_for_score(0.999)

    def test_score_is_capped(self):
        assert score_for_density(10.0) == CEILING

    def test_benign_text_scores_zero(self):
        scorer = LexiconScorer()
        assert LexiconScorer().score("a lovely walk along the river").max_score == 0.0
        assert scorer.score("").max_score == 0.0

    def test_toxic_text_scores_high(self):
        scorer = LexiconScorer()
        scores = scorer.score("you idiot moron scum you worthless idiot trash")
        assert scores.toxicity >= 0.8
        assert scores.sexually_explicit == 0.0

    def test_attribute_isolation(self):
        scorer = LexiconScorer()
        scores = scorer.score("lewd explicit porn nude erotic content")
        assert scores.sexually_explicit > 0.5
        assert scores.toxicity == 0.0

    def test_score_many_preserves_order(self):
        scorer = LexiconScorer()
        results = scorer.score_many(["nice day", "you idiot moron scum idiot"])
        assert results[0].toxicity < results[1].toxicity

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            LexiconScorer(gain=0)
        with pytest.raises(ValueError):
            LexiconScorer(ceiling=1.5)


class TestClient:
    def test_analyze_caches_repeated_texts(self):
        client = PerspectiveClient()
        first = client.analyze("some text")
        second = client.analyze("some text")
        assert not first.cached and second.cached
        assert client.stats.requests == 1
        assert client.stats.cache_hits == 1
        assert client.cache_size == 1

    def test_quota_enforced(self):
        client = PerspectiveClient(quota_per_window=2)
        client.analyze("one")
        client.analyze("two")
        with pytest.raises(RateLimitExceeded):
            client.analyze("three")
        assert client.stats.rate_limited == 1

    def test_quota_window_reset(self):
        client = PerspectiveClient(quota_per_window=1)
        client.analyze("one")
        client.reset_window()
        client.analyze("two")
        assert client.stats.requests == 2

    def test_cached_results_do_not_consume_quota(self):
        client = PerspectiveClient(quota_per_window=1)
        client.analyze("same")
        client.analyze("same")
        assert client.window_requests == 1

    def test_analyze_many(self):
        client = PerspectiveClient()
        results = client.analyze_many(["a b c", "you idiot moron idiot scum"])
        assert len(results) == 2
        assert results[1].scores.toxicity > 0

    def test_invalid_quota(self):
        with pytest.raises(ValueError):
            PerspectiveClient(quota_per_window=0)

    def test_clear_cache(self):
        client = PerspectiveClient()
        client.analyze("text")
        client.clear_cache()
        assert client.cache_size == 0
