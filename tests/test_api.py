"""Tests for the in-process HTTP API layer."""

from __future__ import annotations

import pytest

from repro.api.client import APIClient, APIError
from repro.api.http import HTTPRequest, HTTPResponse, HTTPStatus
from repro.api.router import Router
from repro.api.server import FediverseAPIServer
from repro.fediverse.registry import FediverseRegistry
from repro.fediverse.software import SoftwareKind
from repro.mrf.simple import SimplePolicy


@pytest.fixture
def served_registry() -> tuple[FediverseRegistry, FediverseAPIServer, APIClient]:
    registry = FediverseRegistry()
    instance = registry.create_instance("alpha.example", install_default_policies=False)
    instance.register_user("alice")
    for index in range(55):
        instance.publish("alice", f"post number {index}", created_at=float(index))
    instance.mrf.add_policy(SimplePolicy(reject=["bad.example"]))
    instance.add_peer("beta.example")
    registry.create_instance(
        "masto.example", software=SoftwareKind.MASTODON, install_default_policies=False
    )
    server = FediverseAPIServer(registry)
    return registry, server, APIClient(server)


class TestHTTPPrimitives:
    def test_request_from_url_parses_query(self):
        request = HTTPRequest.from_url("alpha.example", "/api/v1/timelines/public?local=true&limit=5")
        assert request.path == "/api/v1/timelines/public"
        assert request.bool_param("local") is True
        assert request.int_param("limit", 20) == 5

    def test_int_param_invalid(self):
        request = HTTPRequest.from_url("alpha.example", "/x?limit=abc")
        with pytest.raises(ValueError):
            request.int_param("limit", 20)

    def test_response_json_on_error_raises(self):
        response = HTTPResponse.error(HTTPStatus.NOT_FOUND)
        assert not response.ok
        with pytest.raises(ValueError):
            response.json()

    def test_status_reason(self):
        assert HTTPStatus.BAD_GATEWAY.reason == "Bad Gateway"

    def test_error_statuses_match_paper(self):
        for code in (403, 404, 410, 502, 503):
            assert int(HTTPStatus(code)) == code


class TestRouter:
    def test_dispatches_matching_route(self):
        router = Router()
        router.add("/hello", lambda request: HTTPResponse.json_ok({"hi": True}))
        response = router.dispatch(HTTPRequest(domain="x", path="/hello"))
        assert response.ok

    def test_unknown_path_is_404(self):
        router = Router()
        response = router.dispatch(HTTPRequest(domain="x", path="/nope"))
        assert response.status is HTTPStatus.NOT_FOUND

    def test_path_parameters(self):
        router = Router()
        router.add(
            "/api/v1/accounts/{username}",
            lambda request, username: HTTPResponse.json_ok({"username": username}),
        )
        response = router.dispatch(HTTPRequest(domain="x", path="/api/v1/accounts/alice"))
        assert response.body == {"username": "alice"}

    def test_decorator_registration(self):
        router = Router()

        @router.route("/ping")
        def ping(request):
            return HTTPResponse.json_ok("pong")

        assert "/ping" in router.patterns


class TestServerEndpoints:
    def test_instance_metadata(self, served_registry):
        _, _, client = served_registry
        payload = client.instance_metadata("alpha.example")
        assert payload["uri"] == "alpha.example"
        assert payload["stats"]["user_count"] == 1
        federation = payload["pleroma"]["metadata"]["federation"]
        assert "SimplePolicy" in federation["mrf_policies"]
        assert federation["mrf_simple"] == {"reject": ["bad.example"]}

    def test_mastodon_instance_has_no_pleroma_block(self, served_registry):
        _, _, client = served_registry
        assert "pleroma" not in client.instance_metadata("masto.example")

    def test_peers_endpoint(self, served_registry):
        _, _, client = served_registry
        assert client.instance_peers("alpha.example") == ["beta.example"]

    def test_timeline_pagination(self, served_registry):
        _, _, client = served_registry
        first_page = client.public_timeline("alpha.example", limit=40)
        assert len(first_page) == 40
        second_page = client.public_timeline(
            "alpha.example", limit=40, max_id=first_page[-1]["id"]
        )
        assert len(second_page) == 15
        ids = {post["id"] for post in first_page} | {post["id"] for post in second_page}
        assert len(ids) == 55

    def test_timeline_limit_is_capped(self, served_registry):
        _, _, client = served_registry
        assert len(client.public_timeline("alpha.example", limit=500)) == 40

    def test_timeline_hidden_when_not_exposed(self, served_registry):
        registry, _, client = served_registry
        registry.get("alpha.example").expose_public_timeline = False
        with pytest.raises(APIError) as excinfo:
            client.public_timeline("alpha.example")
        assert excinfo.value.status is HTTPStatus.FORBIDDEN

    def test_unknown_instance_404(self, served_registry):
        _, _, client = served_registry
        with pytest.raises(APIError) as excinfo:
            client.instance_metadata("ghost.example")
        assert excinfo.value.status is HTTPStatus.NOT_FOUND

    def test_unavailable_instance_returns_configured_status(self, served_registry):
        registry, _, client = served_registry
        registry.set_availability("alpha.example", 502, "down")
        with pytest.raises(APIError) as excinfo:
            client.instance_metadata("alpha.example")
        assert excinfo.value.status is HTTPStatus.BAD_GATEWAY

    def test_nodeinfo(self, served_registry):
        _, _, client = served_registry
        payload = client.nodeinfo("alpha.example")
        assert payload["software"]["name"] == "pleroma"
        assert payload["usage"]["users"]["total"] == 1

    def test_account_endpoints(self, served_registry):
        _, server, _ = served_registry
        response = server.get("alpha.example", "/api/v1/accounts/alice")
        assert response.ok and response.body["acct"] == "alice@alpha.example"
        statuses = server.get("alpha.example", "/api/v1/accounts/alice/statuses?limit=5")
        assert len(statuses.body) == 5
        missing = server.get("alpha.example", "/api/v1/accounts/ghost")
        assert missing.status is HTTPStatus.NOT_FOUND

    def test_client_stats_track_failures(self, served_registry):
        registry, _, client = served_registry
        registry.set_availability("alpha.example", 503)
        with pytest.raises(APIError):
            client.instance_metadata("alpha.example")
        client.instance_metadata("masto.example")
        assert client.stats.requests == 2
        assert client.stats.failed == 1
        assert client.stats.by_status[503] == 1
        assert client.stats.by_domain == {"alpha.example": 1, "masto.example": 1}


#: Every endpoint the crawler touches, with known-good and failing targets.
ACCOUNTING_PROBES = [
    ("alpha.example", "/api/v1/instance"),
    ("alpha.example", "/api/v1/instance/peers"),
    ("alpha.example", "/nodeinfo/2.0"),
    ("alpha.example", "/api/v1/timelines/public?local=true&limit=5"),
    ("masto.example", "/api/v1/instance"),
    ("masto.example", "/api/v1/timelines/public?local=true&limit=5"),
    ("ghost.example", "/api/v1/instance"),  # unknown -> 404
    ("ghost.example", "/nodeinfo/2.0"),
]


def _stats_tuple(client: APIClient):
    stats = client.stats
    return (stats.requests, stats.ok, stats.failed, stats.by_status, stats.by_domain)


class TestBatchedAccounting:
    """``get`` and ``get_many`` must agree on every counter, per endpoint."""

    def _fresh_client(self) -> APIClient:
        registry = FediverseRegistry()
        instance = registry.create_instance("alpha.example", install_default_policies=False)
        instance.register_user("alice")
        for index in range(12):
            instance.publish("alice", f"post {index}", created_at=float(index))
        instance.add_peer("beta.example")
        registry.create_instance(
            "masto.example", software=SoftwareKind.MASTODON, install_default_policies=False
        )
        registry.create_instance("down.example", install_default_policies=False)
        registry.set_availability("down.example", 502, "bad gateway")
        return APIClient(FediverseAPIServer(registry))

    def test_get_many_counts_match_sequential_gets(self):
        sequential = self._fresh_client()
        for domain, path in ACCOUNTING_PROBES:
            sequential.get(domain, path)

        batched = self._fresh_client()
        by_domain: dict[str, list[str]] = {}
        for domain, path in ACCOUNTING_PROBES:
            by_domain.setdefault(domain, []).append(path)
        for domain, paths in by_domain.items():
            batched.get_many(domain, paths)

        assert _stats_tuple(batched) == _stats_tuple(sequential)

    def test_get_many_responses_match_get(self):
        sequential = self._fresh_client()
        batched = self._fresh_client()
        for domain, path in ACCOUNTING_PROBES:
            single = sequential.get(domain, path)
            grouped = batched.get_many(domain, [path])[0]
            assert single.status is grouped.status
            assert single.body == grouped.body

    def test_error_statuses_recorded_identically(self):
        """APIError statuses (403/404/502) land in by_status the same way."""
        sequential = self._fresh_client()
        sequential.get("down.example", "/api/v1/instance")
        sequential.get("ghost.example", "/api/v1/instance")
        with pytest.raises(APIError):
            sequential.get_json("down.example", "/api/v1/instance/peers")

        batched = self._fresh_client()
        batched.get_many("down.example", ["/api/v1/instance", "/api/v1/instance/peers"])
        batched.get_many("ghost.example", ["/api/v1/instance"])

        assert _stats_tuple(batched) == _stats_tuple(sequential)
        assert batched.stats.by_status[502] == 2
        assert batched.stats.by_status[404] == 1

    def test_metadata_many_counts_like_sequential_metadata(self):
        domains = ["alpha.example", "down.example", "ghost.example", "masto.example"]
        sequential = self._fresh_client()
        for domain in domains:
            sequential.get(domain, "/api/v1/instance")
        batched = self._fresh_client()
        responses = batched.metadata_many(domains)
        assert _stats_tuple(batched) == _stats_tuple(sequential)
        assert [int(response.status) for response in responses] == [200, 502, 404, 200]

    def test_stream_timeline_counts_per_page(self):
        # 12 posts at page size 5 -> pages of 5, 5, 2 (short page stops).
        sequential = self._fresh_client()
        crawler_pages = 0
        max_id = None
        while True:
            page = sequential.public_timeline(
                "alpha.example", local=True, limit=5, max_id=max_id
            )
            crawler_pages += 1
            if not page or len(page) < 5:
                break
            max_id = page[-1]["id"]

        batched = self._fresh_client()
        stream = batched.stream_timeline("alpha.example", local=True, page_size=5)
        assert stream.pages == crawler_pages == 3
        assert _stats_tuple(batched) == _stats_tuple(sequential)

    def test_stream_timeline_failure_counts_one_request(self):
        sequential = self._fresh_client()
        sequential.get("down.example", "/api/v1/timelines/public?local=true&limit=5")
        batched = self._fresh_client()
        stream = batched.stream_timeline("down.example", local=True, page_size=5)
        assert not stream.ok
        assert stream.pages == 1
        assert _stats_tuple(batched) == _stats_tuple(sequential)
