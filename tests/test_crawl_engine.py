"""Tests for the batched crawl engine.

The engine's contract is strict: a campaign crawled through the batch
paths (grouped requests, cached metadata payloads, server-side timeline
streams) must be *indistinguishable* from the seed's one-request-at-a-time
loop — every :class:`CrawlResult` field, the failure ordering, the request
accounting and the assembled dataset.  The twin-campaign fuzz below pins
that over randomized scenarios (churn, mixed software populations, odd
page sizes, post caps, partial directory coverage); the seed-faithful loop
lives in :mod:`repro.perf.baselines`.
"""

from __future__ import annotations

import random

import pytest

from repro.api.client import APIClient
from repro.api.server import FediverseAPIServer, serialise_status
from repro.crawler.campaign import (
    CampaignConfig,
    CountingCrawlSink,
    CrawlResult,
    CrawlSink,
    MeasurementCampaign,
)
from repro.fediverse.post import MediaAttachment, Post, Visibility
from repro.fediverse.registry import FediverseRegistry
from repro.fediverse.software import SoftwareKind
from repro.mrf.simple import SimplePolicy
from repro.perf import baselines
from repro.synth.generator import FediverseGenerator
from repro.synth.scenario import scenario_config


def crawl_state(result: CrawlResult) -> dict:
    """Everything a campaign produces, as one comparable structure."""
    dataset = result.dataset
    return {
        "latest_snapshots": result.latest_snapshots,
        "snapshot_counts": result.snapshot_counts,
        "all_snapshots": result.all_snapshots,
        "timelines": result.timelines,
        "failures": result.failures,
        "discovered_domains": result.discovered_domains,
        "pleroma_domains": result.pleroma_domains,
        "first_seen": result.first_seen,
        "api_requests": result.api_requests,
        "breakdown": result.failure_status_breakdown,
        "dataset": {
            "instances": dataset.instances,
            "users": dataset.users,
            "posts": dataset.posts,
            "policy_settings": dataset.policy_settings,
            "reject_edges": dataset.reject_edges,
        },
    }


class FixedDirectory:
    """A directory listing exactly the given domains (order preserved)."""

    def __init__(self, domains: list[str]) -> None:
        self._domains = list(domains)

    def pleroma_instances(self) -> list[str]:
        return list(self._domains)


def build_mixed_registry() -> FediverseRegistry:
    """A hand-built fediverse exercising every crawl edge case at once.

    Pleroma instances with policies and posts, a Mastodon instance (whose
    software is only classifiable through nodeinfo), an instance that
    publishes no nodeinfo at all, a constantly-down instance, one with a
    hidden timeline, and one whose timeline length is an exact multiple of
    the page size (the extra-empty-page pagination case).
    """
    registry = FediverseRegistry()
    moderator = registry.create_instance("moderator.example")
    moderator.register_user("admin")
    for index in range(7):
        moderator.publish("admin", f"mod post {index} @troll@rejected.example")
    moderator.mrf.add_policy(SimplePolicy(reject=["rejected.example"]))

    rejected = registry.create_instance("rejected.example", install_default_policies=False)
    rejected.register_user("troll")
    for index in range(10):  # exact multiple of page_size=5
        rejected.publish("troll", f"post {index} #tag{index}")

    masto = registry.create_instance(
        "masto.example", software=SoftwareKind.MASTODON, version="3.3.0",
        install_default_policies=False,
    )
    masto.register_user("gargron")
    masto.publish("gargron", "hello from mastodon")

    secretive = registry.create_instance(
        "nonodeinfo.example", software=SoftwareKind.MASTODON, version="3.1.0",
        install_default_policies=False, expose_nodeinfo=False,
    )
    secretive.register_user("ghost")
    secretive.publish("ghost", "you cannot classify me")

    registry.create_instance("down.example", install_default_policies=False)
    registry.set_availability("down.example", 502, "bad gateway")

    hidden = registry.create_instance(
        "hidden.example", install_default_policies=False,
        expose_public_timeline=False,
    )
    hidden.register_user("shy")
    hidden.publish("shy", "nobody reads this")

    registry.federate("moderator.example", "rejected.example")
    registry.federate("moderator.example", "masto.example")
    registry.federate("rejected.example", "hidden.example")
    return registry


MIXED_DOMAINS = [
    "moderator.example",
    "rejected.example",
    "masto.example",
    "nonodeinfo.example",
    "down.example",
    "hidden.example",
]


class TestTwinCampaignEquivalence:
    """Batched campaign vs seed loop over twin (bit-identical) fediverses."""

    def test_mixed_population_hand_built(self):
        config = CampaignConfig(
            duration_days=0.5,
            timeline_page_size=5,
            keep_all_snapshots=True,
        )
        engine = MeasurementCampaign(
            build_mixed_registry(), config, directory=FixedDirectory(MIXED_DOMAINS)
        ).run()
        naive = baselines.naive_crawl(
            build_mixed_registry(), config, directory=FixedDirectory(MIXED_DOMAINS)
        )
        assert crawl_state(engine) == crawl_state(naive)
        # The mix actually exercised the interesting paths.
        assert engine.latest_snapshots["masto.example"].software == "mastodon"
        assert engine.latest_snapshots["nonodeinfo.example"].software == "unknown"
        assert any(f.reason.startswith("nodeinfo:") for f in engine.failures)
        assert engine.failure_status_breakdown == {502: 1}
        assert not engine.dataset.instance("hidden.example").timeline_reachable

    def test_max_posts_cap_and_oversized_pages(self):
        # page_size above the server's 40 cap: every page comes back short,
        # so the seed loop stops after one page per instance.
        config = CampaignConfig(
            duration_days=0.25, timeline_page_size=64, max_posts_per_instance=3
        )
        engine = MeasurementCampaign(
            build_mixed_registry(), config, directory=FixedDirectory(MIXED_DOMAINS)
        ).run()
        naive = baselines.naive_crawl(
            build_mixed_registry(), config, directory=FixedDirectory(MIXED_DOMAINS)
        )
        assert crawl_state(engine) == crawl_state(naive)
        assert all(
            collection.post_count <= 3 for collection in engine.timelines
        )

    @pytest.mark.parametrize("fuzz_seed", range(5))
    def test_generated_scenarios_fuzz(self, fuzz_seed):
        """Randomized twin campaigns over generated populations.

        Includes churn (mid-campaign availability flips), partial directory
        coverage, odd page sizes, post caps and snapshot retention — the
        full CrawlResult (and the dataset built from it) must be identical
        between the batch engine and the seed loop.
        """
        rng = random.Random(1000 + fuzz_seed)
        churn = rng.choice([0.0, 0.25, 0.4])
        overrides = {
            "n_pleroma_instances": rng.randint(12, 40),
            "instance_churn_rate": churn,
            "churn_window_days": 1.0,
        }
        config = scenario_config("tiny", seed=2000 + fuzz_seed, **overrides)
        campaign_config = CampaignConfig(
            duration_days=rng.choice([0.5, 1.0]),
            snapshot_interval_hours=config.snapshot_interval_hours,
            timeline_page_size=rng.choice([7, 40]),
            max_posts_per_instance=rng.choice([None, 17]),
            directory_coverage=rng.choice([0.7, 1.0]),
            keep_all_snapshots=rng.choice([True, False]),
        )
        engine = MeasurementCampaign(
            FediverseGenerator(config).generate().registry, campaign_config
        ).run()
        naive = baselines.naive_crawl(
            FediverseGenerator(config).generate().registry, campaign_config
        )
        assert crawl_state(engine) == crawl_state(naive)


class TestCrawlSinks:
    def test_counting_sink_matches_result(self):
        config = CampaignConfig(duration_days=0.5, timeline_page_size=5)
        sink = CountingCrawlSink()
        campaign = MeasurementCampaign(
            build_mixed_registry(),
            config,
            directory=FixedDirectory(MIXED_DOMAINS),
            sinks=[sink],
        )
        result = campaign.run()
        assert sink.snapshots == sum(result.snapshot_counts.values())
        assert sink.failures == len(result.failures)
        assert sink.timelines == len(result.timelines)
        assert sink.unreachable_timelines == sum(
            1 for collection in result.timelines if not collection.reachable
        )
        assert sink.posts == sum(
            collection.post_count
            for collection in result.timelines
            if collection.reachable
        )
        statuses: dict[int, int] = {}
        for failure in result.failures:
            statuses[failure.status_code] = statuses.get(failure.status_code, 0) + 1
        assert sink.failures_by_status == statuses

    def test_run_counted_keeps_aggregates_only(self):
        config = CampaignConfig(duration_days=0.5, timeline_page_size=5)
        counted = MeasurementCampaign(
            build_mixed_registry(), config, directory=FixedDirectory(MIXED_DOMAINS)
        ).run_counted()
        reference = MeasurementCampaign(
            build_mixed_registry(), config, directory=FixedDirectory(MIXED_DOMAINS)
        ).run()
        assert counted.snapshots == sum(reference.snapshot_counts.values())
        assert counted.posts == sum(
            collection.post_count
            for collection in reference.timelines
            if collection.reachable
        )
        assert counted.failures == len(reference.failures)

    def test_custom_sink_observes_rounds(self):
        observed_rounds: set[int] = set()

        class RoundSink(CrawlSink):
            def on_snapshot(self, round_index, snapshot):
                observed_rounds.add(round_index)

        config = CampaignConfig(duration_days=0.5)
        campaign = MeasurementCampaign(
            build_mixed_registry(), config, directory=FixedDirectory(MIXED_DOMAINS)
        )
        campaign.add_sink(RoundSink())
        campaign.run()
        assert observed_rounds == set(range(config.snapshot_rounds))


class TestBatchAPI:
    def test_handle_batch_unknown_domain(self):
        registry = FediverseRegistry()
        server = FediverseAPIServer(registry)
        responses = server.handle_batch(
            "ghost.example", ["/api/v1/instance", "/nodeinfo/2.0"]
        )
        assert [int(r.status) for r in responses] == [404, 404]
        assert server.requests_served == 2

    def test_handle_batch_unavailable_domain(self):
        registry = FediverseRegistry()
        registry.create_instance("flaky.example", install_default_policies=False)
        registry.set_availability("flaky.example", 503, "overloaded")
        server = FediverseAPIServer(registry)
        responses = server.handle_batch(
            "flaky.example", ["/api/v1/instance", "/api/v1/instance/peers"]
        )
        assert [int(r.status) for r in responses] == [503, 503]
        assert responses[0].body == {"error": "overloaded"}

    def test_handle_batch_falls_back_to_router(self):
        registry = FediverseRegistry()
        instance = registry.create_instance("alpha.example", install_default_policies=False)
        instance.register_user("alice")
        server = FediverseAPIServer(registry)
        responses = server.handle_batch(
            "alpha.example",
            ["/api/v1/instance", "/api/v1/accounts/alice", "/nope"],
        )
        assert responses[0].ok
        assert responses[1].ok
        assert responses[1].body["acct"] == "alice@alpha.example"
        assert int(responses[2].status) == 404

    def test_metadata_cache_invalidates_on_mutation(self):
        registry = FediverseRegistry()
        instance = registry.create_instance("alpha.example", install_default_policies=False)
        instance.register_user("alice")
        server = FediverseAPIServer(registry)
        first = server.handle_batch("alpha.example", ["/api/v1/instance"])[0]
        again = server.handle_batch("alpha.example", ["/api/v1/instance"])[0]
        # Unchanged instance: the exact same payload object is served.
        assert again.body is first.body
        instance.publish("alice", "new post")
        after = server.handle_batch("alpha.example", ["/api/v1/instance"])[0]
        assert after.body is not first.body
        assert after.body["stats"]["status_count"] == first.body["stats"]["status_count"] + 1

    def test_metadata_cache_invalidates_on_policy_replacement(self):
        """Removing a policy and adding a same-named replacement must bust
        the cache even when the replacement reuses the freed object's id
        (and both carry config_version 0) — the membership epoch tracks it."""
        registry = FediverseRegistry()
        instance = registry.create_instance("alpha.example", install_default_policies=False)
        instance.mrf.add_policy(SimplePolicy(reject=["old.example"]))
        server = FediverseAPIServer(registry)
        for iteration in range(50):
            instance.mrf.remove_policy("SimplePolicy")
            instance.mrf.add_policy(SimplePolicy(reject=[f"new{iteration}.example"]))
            payload = server.handle_batch("alpha.example", ["/api/v1/instance"])[0].body
            federation = payload["pleroma"]["metadata"]["federation"]
            assert federation["mrf_simple"] == {"reject": [f"new{iteration}.example"]}

    def test_metadata_cache_invalidate_compiled_escape_hatch(self):
        """In-place policy mutation + invalidate_compiled() busts the cache."""
        registry = FediverseRegistry()
        instance = registry.create_instance("alpha.example", install_default_policies=False)
        policy = SimplePolicy(reject=["old.example"])
        instance.mrf.add_policy(policy)
        server = FediverseAPIServer(registry)
        before = server.handle_batch("alpha.example", ["/api/v1/instance"])[0].body
        assert before["pleroma"]["metadata"]["federation"]["mrf_simple"] == {
            "reject": ["old.example"]
        }
        instance.mrf.invalidate_compiled()
        after = server.handle_batch("alpha.example", ["/api/v1/instance"])[0]
        assert after.body is not before

    def test_metadata_cache_invalidates_on_policy_change(self):
        registry = FediverseRegistry()
        instance = registry.create_instance("alpha.example", install_default_policies=False)
        server = FediverseAPIServer(registry)
        before = server.handle_batch("alpha.example", ["/api/v1/instance"])[0]
        instance.mrf.add_policy(SimplePolicy(reject=["bad.example"]))
        after = server.handle_batch("alpha.example", ["/api/v1/instance"])[0]
        federation = after.body["pleroma"]["metadata"]["federation"]
        assert "SimplePolicy" in federation["mrf_policies"]
        assert before.body is not after.body

    def test_batch_metadata_equals_single_request(self):
        registry = build_mixed_registry()
        server = FediverseAPIServer(registry)
        for domain in MIXED_DOMAINS:
            single = server.get(domain, "/api/v1/instance")
            batched = server.handle_batch(domain, ["/api/v1/instance"])[0]
            assert single.status is batched.status
            assert single.body == batched.body

    def test_stream_timeline_matches_paged_client(self):
        registry = build_mixed_registry()
        server = FediverseAPIServer(registry)
        client = APIClient(server)
        for page_size in (3, 5, 10, 64):
            stream = server.stream_timeline(
                "rejected.example", local=True, page_size=page_size
            )
            paged: list[dict] = []
            pages = 0
            max_id = None
            while True:
                page = client.public_timeline(
                    "rejected.example", local=True, limit=page_size, max_id=max_id
                )
                pages += 1
                if not page:
                    break
                paged.extend(page)
                max_id = page[-1]["id"]
                if len(page) < page_size:
                    break
            assert stream.statuses == paged
            assert stream.pages == pages


class TestStatusSerialisation:
    def test_fast_serialiser_matches_to_dict(self):
        posts = [
            Post(
                post_id="alpha.example-1",
                author="alice@alpha.example",
                domain="Alpha.Example",  # normalised at construction
                content="hey @bob@beta.example check #stuff https://x.example",
                created_at=12.5,
                visibility=Visibility.UNLISTED,
                attachments=(
                    MediaAttachment(url="https://alpha.example/a.png", description="pic"),
                ),
                subject="cw",
                in_reply_to="alpha.example-0",
                sensitive=True,
                tags=("stuff",),
            ),
            Post(
                post_id="beta.example-9",
                author="bob@beta.example",
                domain="beta.example",
                content="",
                created_at=0.0,
            ),
        ]
        for post in posts:
            assert serialise_status(post) == post.to_dict()
