"""Tests for the perf harness (run at tiny scale so tier-1 stays fast)."""

from __future__ import annotations

import json

import pytest

from repro.perf.harness import (
    SWEEP_THRESHOLDS,
    bench_ingestion,
    bench_scoring,
    bench_sweep,
    run_scenario,
    write_bench_json,
)


@pytest.fixture(scope="module")
def tiny_report(tmp_path_factory):
    report = run_scenario("tiny", seed=7, campaign_days=1.0, repeats=1)
    return report, tmp_path_factory.mktemp("bench")


def test_report_contains_every_benchmark(tiny_report) -> None:
    report, _ = tiny_report
    assert set(report.metrics) == {
        "ingestion",
        "scoring",
        "corpus",
        "threshold_sweep",
        "delivery",
        "crawl",
        "chaos",
        "serving",
        "protocol",
        "sharding",
        "shard_chaos",
    }
    for section, metrics in report.metrics.items():
        if section in ("chaos", "shard_chaos"):
            # The chaos stages gate reproduction/recovery, not speed: no
            # baseline race, hence no speedup key.
            continue
        assert metrics["speedup"] > 0.0
        assert metrics["naive_seconds"] >= 0.0
    assert report.metrics["scoring"]["posts_per_second"] > 0.0
    assert report.metrics["scoring"]["single_pass_seconds"] > 0.0
    assert report.metrics["corpus"]["relabels_per_second"] > 0.0
    assert report.metrics["corpus"]["interned_texts"] > 0.0
    assert report.metrics["threshold_sweep"]["thresholds"] == len(SWEEP_THRESHOLDS)
    assert report.metrics["delivery"]["deliveries"] > 0.0
    assert report.metrics["delivery"]["batches"] > 0.0
    assert report.metrics["delivery"]["batch_rejects"] >= 0.0
    assert report.metrics["crawl"]["domains"] > 0.0
    assert report.metrics["crawl"]["rounds"] > 0.0
    assert report.metrics["crawl"]["api_requests"] > 0.0
    serving = report.metrics["serving"]
    assert serving["thread_counts"] >= 2.0
    for key in ("p50_ms_threads_1", "p99_ms_threads_2", "tail_amplification_threads_2"):
        assert serving[key] >= 0.0
    assert serving["requests_per_second"] > 0.0
    assert report.metrics["crawl"]["posts_collected"] > 0.0
    # The crawl stage ran (and therefore passed) the churn equivalence gate,
    # and the reduced churn population actually lost domains mid-campaign.
    assert report.metrics["crawl"]["churn_flipped_domains"] > 0.0
    # The chaos stage passed its zero-fault and determinism gates (it raises
    # otherwise) and actually injected faults in its mixed-profile run.
    assert report.metrics["chaos"]["faults_injected"] > 0.0
    assert 0.0 <= report.metrics["chaos"]["recovery_rate"] <= 1.0
    assert report.metrics["chaos"]["reject_recall_none"] > 0.0
    # The sharding stage passed its bit-identity gates (it raises otherwise)
    # and measured every default worker count.
    assert report.metrics["sharding"]["deliveries"] > 0.0
    if report.metrics["sharding"]["fork_available"]:
        # The forced-fork determinism gate ran (and passed — it raises).
        assert report.metrics["sharding"]["fork_gate_seconds"] > 0.0
    for n in (1, 2, 4):
        assert report.metrics["sharding"][f"sharded_seconds_workers_{n}"] > 0.0
        assert report.metrics["sharding"][f"scaling_efficiency_workers_{n}"] > 0.0
    # The protocol stage passed its three equivalence gates (it raises
    # otherwise), pushed engagement traffic through the engine, and its
    # amortisation run actually cached key derivations.
    protocol = report.metrics["protocol"]
    assert protocol["boosts_received"] > 0.0
    assert protocol["favourites_received"] > 0.0
    assert protocol["verifications"] > 0.0
    assert protocol["cache_hit_rate"] > 0.0
    assert (
        protocol["simulated_seconds_cached"]
        < protocol["simulated_seconds_uncached"]
    )
    assert report.workers == [1, 2, 4]
    assert report.dataset["posts"] > 0
    # The shard_chaos stage passed its recovery gates (it raises otherwise):
    # every injected worker-death kind merged bit-identically and recovered.
    shard_chaos = report.metrics["shard_chaos"]
    if shard_chaos["fork_available"]:
        assert shard_chaos["recovery_rate"] == 1.0
        assert shard_chaos["failed_shards"] > 0.0
        assert shard_chaos["inline_fallbacks"] >= 1.0
        assert shard_chaos["zero_fault_overhead"] > 0.0
        for kind in ("crash_early", "crash_late", "hang", "corrupt", "error"):
            assert shard_chaos[f"recovered_{kind}"] > 0.0


def test_bench_json_is_machine_readable(tiny_report) -> None:
    report, out_dir = tiny_report
    path = write_bench_json(report, out_dir)
    assert path.name == "BENCH_tiny.json"
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["scenario"] == "tiny"
    assert payload["seed"] == 7
    assert payload["metrics"]["ingestion"]["speedup"] > 0.0


def test_individual_benchmarks_accept_pipeline_parts(tiny_pipeline) -> None:
    dataset = tiny_pipeline.dataset
    ingestion = bench_ingestion(dataset.reject_edges, repeats=1)
    assert ingestion["workload_inserts"] == 2 * len(dataset.reject_edges)
    scoring = bench_scoring(
        tiny_pipeline.perspective.scorer,
        [post.content for post in dataset.posts[:200]],
        repeats=1,
    )
    assert scoring["texts"] == 200.0
    sweep = bench_sweep(tiny_pipeline, repeats=1)
    assert sweep["labelled_users"] > 0.0
