"""Tests for the precompiled MRF fast path and policy prechecks."""

from __future__ import annotations

import random

import pytest

from repro.activitypub.activities import create_activity, follow_activity
from repro.activitypub.actors import Actor
from repro.fediverse.clock import SECONDS_PER_DAY
from repro.fediverse.post import Post
from repro.mrf.bots import AntiFollowbotPolicy
from repro.mrf.custom import CustomPolicy
from repro.mrf.keywords import KeywordPolicy
from repro.mrf.media import HashtagPolicy, StealEmojiPolicy
from repro.mrf.noop import NoOpPolicy
from repro.mrf.object_age import ObjectAgePolicy
from repro.mrf.pipeline import MRFPipeline
from repro.mrf.simple import SimplePolicy
from repro.mrf.tag import TagAction, TagPolicy


def make_post(domain="origin.example", created_at=0.0, **kwargs):
    return Post(
        post_id=f"{domain}-{random.randrange(10**9)}",
        author=f"user@{domain}",
        domain=domain,
        content=kwargs.pop("content", "a perfectly ordinary post"),
        created_at=created_at,
        **kwargs,
    )


def make_activity(domain="origin.example", created_at=0.0, **kwargs):
    return create_activity(make_post(domain=domain, created_at=created_at, **kwargs))


def assert_equivalent(pipeline: MRFPipeline, activity, now: float):
    """filter() (compiled) and filter_uncompiled() must agree, events included."""
    compiled_events_before = len(pipeline.events)
    compiled = pipeline.filter(activity, now=now)
    compiled_events = pipeline.events[compiled_events_before:]

    uncompiled_events_before = len(pipeline.events)
    uncompiled = pipeline.filter_uncompiled(activity, now=now)
    uncompiled_events = pipeline.events[uncompiled_events_before:]

    assert compiled.verdict == uncompiled.verdict
    assert compiled.policy == uncompiled.policy
    assert compiled.action == uncompiled.action
    assert compiled.reason == uncompiled.reason
    assert compiled.modified == uncompiled.modified
    assert [
        (e.origin_domain, e.policy, e.action, e.accepted, e.reason)
        for e in compiled_events
    ] == [
        (e.origin_domain, e.policy, e.action, e.accepted, e.reason)
        for e in uncompiled_events
    ]
    return compiled


class TestFastPath:
    def test_never_acting_pipeline_compiles_to_noop(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(NoOpPolicy())
        pipeline.add_policy(TagPolicy())  # no tagged users
        pipeline.add_policy(CustomPolicy(name="MysteryPolicy"))  # no behaviour
        compiled = pipeline.compiled()
        assert compiled.never_acts
        decision = pipeline.filter(make_activity(), now=10.0)
        assert decision.accepted and not decision.modified
        assert pipeline.events == []

    def test_simple_policy_fast_skip_for_unlisted_origin(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(SimplePolicy(reject=["bad.example"], media_nsfw=["*.lewd.example"]))
        ok = assert_equivalent(pipeline, make_activity("fine.example"), now=10.0)
        assert ok.accepted
        rejected = assert_equivalent(pipeline, make_activity("bad.example"), now=10.0)
        assert rejected.rejected
        wild = assert_equivalent(pipeline, make_activity("sub.lewd.example"), now=10.0)
        assert wild.accepted and wild.modified

    def test_accept_list_disables_fast_path(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(SimplePolicy(accept=["friend.example"]))
        assert not pipeline.compiled().never_acts
        rejected = assert_equivalent(pipeline, make_activity("stranger.example"), now=10.0)
        assert rejected.rejected
        accepted = assert_equivalent(pipeline, make_activity("friend.example"), now=10.0)
        assert accepted.accepted

    def test_object_age_cutoff(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(ObjectAgePolicy(threshold=7 * SECONDS_PER_DAY))
        now = 30 * SECONDS_PER_DAY
        young = assert_equivalent(
            pipeline, make_activity(created_at=now - SECONDS_PER_DAY), now=now
        )
        assert young.accepted and not young.modified
        old = assert_equivalent(pipeline, make_activity(created_at=0.0), now=now)
        assert old.modified
        assert old.action == "strip_followers"
        assert old.reason == "delist+strip_followers"
        assert old.activity.post.visibility.value == "unlisted"
        assert old.activity.post.extra["followers_stripped"] is True
        assert old.activity.extra["followers_stripped"] is True

    def test_tag_policy_handles(self):
        pipeline = MRFPipeline(local_domain="local.example")
        tags = TagPolicy({"user@origin.example": [TagAction.FORCE_NSFW]})
        pipeline.add_policy(tags)
        flagged = assert_equivalent(pipeline, make_activity(), now=10.0)
        assert flagged.modified and flagged.activity.post.sensitive
        other = create_activity(make_post(), actor=Actor.from_handle("other@origin.example"))
        untouched = assert_equivalent(pipeline, other, now=10.0)
        assert untouched.accepted and not untouched.modified

    def test_antifollowbot_gated_on_follows(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(AntiFollowbotPolicy())
        create = assert_equivalent(pipeline, make_activity(), now=10.0)
        assert create.accepted
        bot = Actor(username="followbot", domain="origin.example", bot=True)
        follow = follow_activity(bot, "alice@local.example", published=5.0)
        rejected = assert_equivalent(pipeline, follow, now=10.0)
        assert rejected.rejected

    def test_keyword_policy_content_trigger(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(KeywordPolicy(reject=["forbidden phrase"]))
        compiled = pipeline.compiled()
        assert compiled.fully_planned
        assert compiled.content_triggers
        clean = assert_equivalent(pipeline, make_activity(content="all good"), now=10.0)
        assert clean.accepted and not clean.modified
        bad = make_activity(content="this contains the forbidden phrase indeed")
        rejected = assert_equivalent(pipeline, bad, now=10.0)
        assert rejected.rejected

    def test_opaque_third_party_policies_always_run(self):
        class LegacyPolicy(KeywordPolicy):
            """A pre-plan-API subclass: plan() inherited from MRFPolicy."""

            name = "LegacyPolicy"

            def plan(self):
                return None

        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(LegacyPolicy(reject=["forbidden phrase"]))
        assert not pipeline.compiled().fully_planned
        bad = make_activity(content="this contains the forbidden phrase indeed")
        rejected = assert_equivalent(pipeline, bad, now=10.0)
        assert rejected.rejected

    def test_mixed_pipeline_equivalence_randomised(self):
        """Twin pipelines (one compiled path, one uncompiled) see the same
        activity stream and must produce identical decisions and events —
        stateful policies (StealEmoji) evolve identically on both."""
        now = 30 * SECONDS_PER_DAY

        def build() -> MRFPipeline:
            pipeline = MRFPipeline(local_domain="local.example")
            pipeline.add_policy(ObjectAgePolicy())
            pipeline.add_policy(
                TagPolicy({"user@tagged.example": [TagAction.FORCE_UNLISTED]})
            )
            pipeline.add_policy(
                SimplePolicy(reject=["bad.example"], media_nsfw=["nsfw.example"])
            )
            pipeline.add_policy(NoOpPolicy())
            pipeline.add_policy(StealEmojiPolicy(hosts=["*.example"]))
            pipeline.add_policy(HashtagPolicy(sensitive=["nsfw"]))
            return pipeline

        compiled_pipeline = build()
        uncompiled_pipeline = build()
        rng = random.Random(1234)
        domains = ["bad.example", "nsfw.example", "tagged.example", "plain.example"]
        for _ in range(60):
            activity = make_activity(
                domain=rng.choice(domains),
                created_at=rng.uniform(0.0, now),
                content=rng.choice(
                    ["hello world", "spicy :emoji: content", "#nsfw tagged things"]
                ),
            )
            compiled = compiled_pipeline.filter(activity, now=now)
            uncompiled = uncompiled_pipeline.filter_uncompiled(activity, now=now)
            assert (
                compiled.verdict,
                compiled.policy,
                compiled.action,
                compiled.reason,
                compiled.modified,
            ) == (
                uncompiled.verdict,
                uncompiled.policy,
                uncompiled.action,
                uncompiled.reason,
                uncompiled.modified,
            )
        assert [
            (e.origin_domain, e.policy, e.action, e.accepted, e.reason)
            for e in compiled_pipeline.events
        ] == [
            (e.origin_domain, e.policy, e.action, e.accepted, e.reason)
            for e in uncompiled_pipeline.events
        ]


class TestCompiledInvalidation:
    def test_add_target_recompiles(self):
        pipeline = MRFPipeline(local_domain="local.example")
        policy = SimplePolicy()
        pipeline.add_policy(policy)
        assert pipeline.filter(make_activity("soon-bad.example"), now=1.0).accepted
        policy.add_target("reject", "soon-bad.example")
        assert pipeline.filter(make_activity("soon-bad.example"), now=1.0).rejected

    def test_remove_target_recompiles(self):
        pipeline = MRFPipeline(local_domain="local.example")
        policy = SimplePolicy(reject=["bad.example"])
        pipeline.add_policy(policy)
        assert pipeline.filter(make_activity("bad.example"), now=1.0).rejected
        policy.remove_target("reject", "bad.example")
        assert pipeline.filter(make_activity("bad.example"), now=1.0).accepted

    def test_tagging_recompiles(self):
        pipeline = MRFPipeline(local_domain="local.example")
        tags = TagPolicy()
        pipeline.add_policy(tags)
        assert not pipeline.filter(make_activity(), now=1.0).modified
        tags.tag_user("user@origin.example", TagAction.FORCE_NSFW)
        assert pipeline.filter(make_activity(), now=1.0).modified

    def test_add_remove_policy_invalidates(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(NoOpPolicy())
        assert pipeline.compiled().never_acts
        pipeline.add_policy(SimplePolicy(reject=["bad.example"]))
        assert not pipeline.compiled().never_acts
        pipeline.remove_policy("SimplePolicy")
        assert pipeline.compiled().never_acts


class TestPolicyOrdering:
    def test_remove_and_readd_appends_at_end(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(ObjectAgePolicy())
        pipeline.add_policy(SimplePolicy(reject=["bad.example"]))
        pipeline.add_policy(NoOpPolicy())
        assert pipeline.policy_names == ["ObjectAgePolicy", "SimplePolicy", "NoOpPolicy"]

        assert pipeline.remove_policy("ObjectAgePolicy")
        assert pipeline.policy_names == ["SimplePolicy", "NoOpPolicy"]

        pipeline.add_policy(ObjectAgePolicy())
        assert pipeline.policy_names == ["SimplePolicy", "NoOpPolicy", "ObjectAgePolicy"]

    def test_readding_changes_evaluation_order(self):
        """After re-adding, SimplePolicy rejects before ObjectAge can rewrite."""
        now = 30 * SECONDS_PER_DAY
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(ObjectAgePolicy())
        pipeline.add_policy(SimplePolicy(reject=["bad.example"]))
        old_activity = make_activity("bad.example", created_at=0.0)
        pipeline.filter(old_activity, now=now)
        # Original order: ObjectAge rewrote (event) before SimplePolicy rejected.
        assert [e.policy for e in pipeline.events] == ["ObjectAgePolicy", "SimplePolicy"]

        pipeline.events.clear()
        assert pipeline.remove_policy("ObjectAgePolicy")
        pipeline.add_policy(ObjectAgePolicy())
        pipeline.filter(make_activity("bad.example", created_at=0.0), now=now)
        # New order: the reject short-circuits before ObjectAge ever runs.
        assert [e.policy for e in pipeline.events] == ["SimplePolicy"]
