"""Tests for the remaining in-built MRF policies."""

from __future__ import annotations

import pytest

from repro.activitypub.activities import create_activity, flag_activity, follow_activity
from repro.activitypub.actors import Actor
from repro.fediverse.clock import SECONDS_PER_DAY
from repro.fediverse.post import MediaAttachment, Post, Visibility
from repro.mrf.allowlist import BlockPolicy, UserAllowListPolicy
from repro.mrf.base import MRFContext
from repro.mrf.bots import (
    AntiFollowbotPolicy,
    AntiLinkSpamPolicy,
    FollowBotPolicy,
    ForceBotUnlistedPolicy,
)
from repro.mrf.keywords import (
    KeywordPolicy,
    NoEmptyPolicy,
    NoPlaceholderTextPolicy,
    NormalizeMarkup,
    VocabularyPolicy,
)
from repro.mrf.media import HashtagPolicy, MediaProxyWarmingPolicy, StealEmojiPolicy
from repro.mrf.object_age import ObjectAgePolicy
from repro.mrf.subchain import SubchainPolicy
from repro.mrf.tag import TagAction, TagPolicy
from repro.mrf.threads import AntiHellthreadPolicy, EnsureRePrepended, HellthreadPolicy
from repro.mrf.visibility import ActivityExpirationPolicy, MentionPolicy, RejectNonPublic

CTX = MRFContext(local_domain="alpha.example", now=30 * SECONDS_PER_DAY)


def remote_post(**overrides) -> Post:
    defaults = dict(
        post_id="r1",
        author="remote@beta.example",
        domain="beta.example",
        content="an ordinary remote post about gardening",
        created_at=CTX.now - 3600.0,
    )
    defaults.update(overrides)
    return Post(**defaults)


def wrap(post: Post, actor: Actor | None = None):
    return create_activity(post, actor=actor)


class TestObjectAgePolicy:
    def test_fresh_post_passes(self):
        policy = ObjectAgePolicy()
        assert policy.filter(wrap(remote_post()), CTX).accepted

    def test_old_post_delisted_and_stripped(self):
        policy = ObjectAgePolicy()
        old = remote_post(created_at=CTX.now - 10 * SECONDS_PER_DAY)
        decision = policy.filter(wrap(old), CTX)
        assert decision.accepted and decision.modified
        assert decision.activity.post.visibility is Visibility.UNLISTED
        assert decision.activity.extra["followers_stripped"] is True

    def test_reject_action(self):
        policy = ObjectAgePolicy(actions=("reject",))
        old = remote_post(created_at=CTX.now - 10 * SECONDS_PER_DAY)
        assert policy.filter(wrap(old), CTX).rejected

    def test_custom_threshold(self):
        policy = ObjectAgePolicy(threshold=60.0, actions=("reject",))
        assert policy.filter(wrap(remote_post(created_at=CTX.now - 30)), CTX).accepted
        assert policy.filter(wrap(remote_post(created_at=CTX.now - 120)), CTX).rejected

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ObjectAgePolicy(threshold=0)
        with pytest.raises(ValueError):
            ObjectAgePolicy(actions=("vanish",))

    def test_non_post_activity_ignored(self):
        policy = ObjectAgePolicy(actions=("reject",))
        follow = follow_activity(Actor.from_handle("a@beta.example"), "b@alpha.example", 0.0)
        assert policy.filter(follow, CTX).accepted


class TestTagPolicy:
    def test_untagged_user_passes(self):
        policy = TagPolicy()
        assert policy.filter(wrap(remote_post()), CTX).accepted

    def test_unknown_tag_rejected(self):
        policy = TagPolicy()
        with pytest.raises(ValueError):
            policy.tag_user("remote@beta.example", "mrf_tag:not-a-tag")

    def test_force_nsfw(self):
        policy = TagPolicy({"remote@beta.example": [TagAction.FORCE_NSFW]})
        decision = policy.filter(wrap(remote_post()), CTX)
        assert decision.activity.post.sensitive

    def test_strip_media(self):
        policy = TagPolicy({"remote@beta.example": [TagAction.STRIP_MEDIA]})
        post = remote_post(attachments=(MediaAttachment(url="https://beta.example/m.png"),))
        assert policy.filter(wrap(post), CTX).activity.post.attachments == ()

    def test_force_unlisted_and_sandbox(self):
        policy = TagPolicy(
            {"remote@beta.example": [TagAction.FORCE_UNLISTED, TagAction.SANDBOX]}
        )
        decision = policy.filter(wrap(remote_post()), CTX)
        assert decision.activity.post.visibility is Visibility.FOLLOWERS_ONLY

    def test_disable_remote_subscription(self):
        policy = TagPolicy(
            {"remote@beta.example": [TagAction.DISABLE_REMOTE_SUBSCRIPTION]}
        )
        follow = follow_activity(
            Actor.from_handle("remote@beta.example"), "alice@alpha.example", 0.0
        )
        assert policy.filter(follow, CTX).rejected

    def test_untag(self):
        policy = TagPolicy({"remote@beta.example": [TagAction.FORCE_NSFW]})
        assert policy.untag_user("remote@beta.example", TagAction.FORCE_NSFW)
        assert policy.tags_for("remote@beta.example") == set()


class TestHellthreadPolicies:
    def test_below_threshold_passes(self):
        policy = HellthreadPolicy(delist_threshold=5, reject_threshold=10)
        post = remote_post(content="@a@x.example @b@x.example hi")
        assert policy.filter(wrap(post), CTX).accepted

    def test_delist(self):
        policy = HellthreadPolicy(delist_threshold=3, reject_threshold=10)
        mentions = " ".join(f"@u{i}@x.example" for i in range(4))
        decision = policy.filter(wrap(remote_post(content=mentions)), CTX)
        assert decision.accepted
        assert decision.activity.post.visibility is Visibility.UNLISTED

    def test_reject(self):
        policy = HellthreadPolicy(delist_threshold=3, reject_threshold=5)
        mentions = " ".join(f"@u{i}@x.example" for i in range(6))
        assert policy.filter(wrap(remote_post(content=mentions)), CTX).rejected

    def test_anti_hellthread_exempts(self):
        anti = AntiHellthreadPolicy()
        hell = HellthreadPolicy(delist_threshold=3, reject_threshold=5)
        mentions = " ".join(f"@u{i}@x.example" for i in range(8))
        exempted = anti.filter(wrap(remote_post(content=mentions)), CTX).activity
        assert hell.filter(exempted, CTX).accepted

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            HellthreadPolicy(delist_threshold=-1)


class TestEnsureRePrepended:
    def test_reply_subject_rewritten(self):
        policy = EnsureRePrepended()
        post = remote_post(subject="meeting", in_reply_to="other-post")
        decision = policy.filter(wrap(post), CTX)
        assert decision.activity.post.subject == "re: meeting"

    def test_existing_re_untouched(self):
        policy = EnsureRePrepended()
        post = remote_post(subject="Re: meeting", in_reply_to="other-post")
        assert not policy.filter(wrap(post), CTX).modified

    def test_non_reply_untouched(self):
        policy = EnsureRePrepended()
        assert not policy.filter(wrap(remote_post(subject="meeting")), CTX).modified


class TestKeywordPolicy:
    def test_reject_pattern(self):
        policy = KeywordPolicy(reject=["casino"])
        post = remote_post(content="best casino bonus ever")
        assert policy.filter(wrap(post), CTX).rejected

    def test_reject_matches_subject(self):
        policy = KeywordPolicy(reject=["casino"])
        post = remote_post(subject="CASINO night")
        assert policy.filter(wrap(post), CTX).rejected

    def test_ftl_removal_pattern(self):
        policy = KeywordPolicy(federated_timeline_removal=["gossip"])
        decision = policy.filter(wrap(remote_post(content="hot gossip today")), CTX)
        assert decision.accepted
        assert decision.activity.extra["federated_timeline_removal"] is True

    def test_replace_pattern(self):
        policy = KeywordPolicy(replace={"heck": "h*ck"})
        decision = policy.filter(wrap(remote_post(content="what the heck")), CTX)
        assert "h*ck" in decision.activity.post.content

    def test_clean_post_passes(self):
        policy = KeywordPolicy(reject=["casino"])
        assert not policy.filter(wrap(remote_post()), CTX).modified


class TestVocabularyAndMarkupPolicies:
    def test_vocabulary_reject_type(self):
        policy = VocabularyPolicy(reject=["Flag"])
        flag = flag_activity(
            Actor.from_handle("r@beta.example"), "a@alpha.example", ("u",), "x", 0.0
        )
        assert policy.filter(flag, CTX).rejected

    def test_vocabulary_accept_list(self):
        policy = VocabularyPolicy(accept=["Create"])
        assert policy.filter(wrap(remote_post()), CTX).accepted
        follow = follow_activity(Actor.from_handle("r@beta.example"), "a@alpha.example", 0.0)
        assert policy.filter(follow, CTX).rejected

    def test_normalize_markup_strips_tags(self):
        policy = NormalizeMarkup()
        post = remote_post(content="<p>hello <b>world</b></p>")
        decision = policy.filter(wrap(post), CTX)
        assert decision.activity.post.content == "hello world"

    def test_no_empty_policy(self):
        policy = NoEmptyPolicy()
        assert policy.filter(wrap(remote_post(content="   ")), CTX).rejected
        assert policy.filter(wrap(remote_post()), CTX).accepted
        media_only = remote_post(
            content=" ", attachments=(MediaAttachment(url="https://x.example/a.png"),)
        )
        assert policy.filter(wrap(media_only), CTX).accepted

    def test_no_placeholder_text_policy(self):
        policy = NoPlaceholderTextPolicy()
        post = remote_post(
            content=".", attachments=(MediaAttachment(url="https://x.example/a.png"),)
        )
        assert policy.filter(wrap(post), CTX).activity.post.content == ""


class TestBotPolicies:
    def test_anti_followbot_rejects_bot_follow(self):
        policy = AntiFollowbotPolicy()
        bot = Actor(username="followbot9000", domain="beta.example", bot=True)
        follow = follow_activity(bot, "alice@alpha.example", 0.0)
        assert policy.filter(follow, CTX).rejected

    def test_anti_followbot_allows_human_follow(self):
        policy = AntiFollowbotPolicy()
        human = Actor(username="carol", domain="beta.example")
        follow = follow_activity(human, "alice@alpha.example", 0.0)
        assert policy.filter(follow, CTX).accepted

    def test_force_bot_unlisted(self):
        policy = ForceBotUnlistedPolicy()
        bot_post = remote_post(is_bot=True)
        decision = policy.filter(wrap(bot_post), CTX)
        assert decision.activity.post.visibility is Visibility.UNLISTED
        assert decision.activity.extra["federated_timeline_removal"] is True

    def test_anti_link_spam_rejects_new_account_links(self):
        policy = AntiLinkSpamPolicy()
        spammer = Actor(username="new", domain="beta.example", created_at=CTX.now, follower_count=0)
        post = remote_post(content="click https://spam.example/win now")
        assert policy.filter(wrap(post, actor=spammer), CTX).rejected

    def test_anti_link_spam_allows_established_account(self):
        policy = AntiLinkSpamPolicy()
        veteran = Actor(username="old", domain="beta.example", created_at=0.0, follower_count=12)
        post = remote_post(content="see https://blog.example/post")
        assert policy.filter(wrap(post, actor=veteran), CTX).accepted

    def test_anti_link_spam_ignores_linkless_posts(self):
        policy = AntiLinkSpamPolicy()
        spammer = Actor(username="new", domain="beta.example", created_at=CTX.now)
        assert policy.filter(wrap(remote_post(), actor=spammer), CTX).accepted

    def test_follow_bot_policy_records_new_authors(self):
        policy = FollowBotPolicy()
        policy.filter(wrap(remote_post()), CTX)
        policy.filter(wrap(remote_post(post_id="r2")), CTX)
        assert policy.pending_follows == ["remote@beta.example"]


class TestMediaPolicies:
    def test_steal_emoji_from_whitelisted_host(self):
        policy = StealEmojiPolicy(hosts=["beta.example"])
        post = remote_post(content="nice :custom_blob: emoji :another_one:")
        decision = policy.filter(wrap(post), CTX)
        assert decision.accepted
        assert set(policy.stolen) == {"custom_blob", "another_one"}

    def test_steal_emoji_ignores_other_hosts(self):
        policy = StealEmojiPolicy(hosts=["gamma.example"])
        policy.filter(wrap(remote_post(content=":blob:")), CTX)
        assert policy.stolen == {}

    def test_media_proxy_warming_records_urls(self):
        policy = MediaProxyWarmingPolicy()
        post = remote_post(attachments=(MediaAttachment(url="https://beta.example/m.png"),))
        policy.filter(wrap(post), CTX)
        policy.filter(wrap(post), CTX)
        assert policy.prefetched == ["https://beta.example/m.png"]

    def test_hashtag_sensitive(self):
        policy = HashtagPolicy(sensitive=["nsfw"])
        post = remote_post(content="spicy #NSFW content")
        assert policy.filter(wrap(post), CTX).activity.post.sensitive

    def test_hashtag_reject(self):
        policy = HashtagPolicy(reject=["spam"])
        assert policy.filter(wrap(remote_post(content="#spam here")), CTX).rejected

    def test_hashtag_ftl_removal(self):
        policy = HashtagPolicy(federated_timeline_removal=["politics"])
        decision = policy.filter(wrap(remote_post(content="#politics rant")), CTX)
        assert decision.activity.extra["federated_timeline_removal"] is True

    def test_hashtag_policy_uses_explicit_tags_field(self):
        policy = HashtagPolicy(sensitive=["nsfw"])
        post = remote_post(tags=("nsfw",))
        assert policy.filter(wrap(post), CTX).activity.post.sensitive


class TestVisibilityPolicies:
    def test_reject_non_public_followers_only(self):
        policy = RejectNonPublic()
        post = remote_post(visibility=Visibility.FOLLOWERS_ONLY)
        assert policy.filter(wrap(post), CTX).rejected

    def test_reject_non_public_allows_when_configured(self):
        policy = RejectNonPublic(allow_followers_only=True)
        post = remote_post(visibility=Visibility.FOLLOWERS_ONLY)
        assert policy.filter(wrap(post), CTX).accepted

    def test_mention_policy(self):
        policy = MentionPolicy(actors=["victim@alpha.example"])
        post = remote_post(content="targeting @victim@alpha.example today")
        assert policy.filter(wrap(post), CTX).rejected
        assert policy.filter(wrap(remote_post()), CTX).accepted

    def test_activity_expiration_stamps_local_posts(self):
        policy = ActivityExpirationPolicy(days=30)
        local = remote_post(domain="alpha.example", author="alice@alpha.example")
        decision = policy.filter(wrap(local), CTX)
        assert decision.activity.post.expires_at == pytest.approx(
            local.created_at + 30 * SECONDS_PER_DAY
        )

    def test_activity_expiration_ignores_remote_posts(self):
        policy = ActivityExpirationPolicy(days=30)
        assert not policy.filter(wrap(remote_post()), CTX).modified

    def test_activity_expiration_invalid_days(self):
        with pytest.raises(ValueError):
            ActivityExpirationPolicy(days=0)


class TestAllowBlockPolicies:
    def test_user_allow_list_blocks_unlisted_actor(self):
        policy = UserAllowListPolicy({"beta.example": ["friend@beta.example"]})
        assert policy.filter(wrap(remote_post()), CTX).rejected

    def test_user_allow_list_allows_listed_actor(self):
        policy = UserAllowListPolicy({"beta.example": ["remote@beta.example"]})
        assert policy.filter(wrap(remote_post()), CTX).accepted

    def test_user_allow_list_ignores_domains_without_list(self):
        policy = UserAllowListPolicy({"gamma.example": ["x@gamma.example"]})
        assert policy.filter(wrap(remote_post()), CTX).accepted

    def test_block_policy(self):
        policy = BlockPolicy(["remote@beta.example"])
        assert policy.filter(wrap(remote_post()), CTX).rejected
        assert policy.unblock("remote@beta.example")
        assert policy.filter(wrap(remote_post()), CTX).accepted


class TestSubchainPolicy:
    def test_matching_actor_runs_chain(self):
        policy = SubchainPolicy(
            match_actor=["remote@beta.example"],
            chain=[KeywordPolicy(reject=["gardening"])],
        )
        decision = policy.filter(wrap(remote_post()), CTX)
        assert decision.rejected
        assert decision.policy == "SubchainPolicy"

    def test_non_matching_actor_skips_chain(self):
        policy = SubchainPolicy(
            match_actor=["someoneelse@beta.example"],
            chain=[KeywordPolicy(reject=["gardening"])],
        )
        assert policy.filter(wrap(remote_post()), CTX).accepted

    def test_chain_rewrites_propagate(self):
        policy = SubchainPolicy(
            match_actor=["remote@"],
            chain=[KeywordPolicy(replace={"gardening": "horticulture"})],
        )
        decision = policy.filter(wrap(remote_post()), CTX)
        assert "horticulture" in decision.activity.post.content
