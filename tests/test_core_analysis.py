"""Tests for the core analysis layer on a hand-built dataset.

These tests use a small dataset whose correct answers can be worked out by
hand, so they pin the analysis semantics independently of the synthetic
generator (the integration tests cover the generated data).
"""

from __future__ import annotations

import pytest

from repro.core.annotation import InstanceAnnotator
from repro.core.collateral import CollateralAnalyzer
from repro.core.federation_graph import FederationGraphAnalyzer
from repro.core.harmfulness import HarmfulnessLabeller
from repro.core.policy_analysis import PolicyAnalyzer
from repro.core.reject_analysis import RejectAnalyzer
from repro.core.simplepolicy_analysis import SimplePolicyAnalyzer
from repro.core.solutions import ModerationStrategy, SolutionEvaluator
from repro.datasets.schema import (
    InstanceRecord,
    PolicySettingRecord,
    PostRecord,
    RejectEdge,
    UserRecord,
)
from repro.datasets.store import Dataset

TOXIC_TEXT = "you idiot moron scum worthless idiot trash vermin subhuman scum"
BENIGN_TEXT = "a lovely afternoon of gardening and fresh bread"


@pytest.fixture
def handmade_dataset() -> Dataset:
    """Two moderating instances, one rejected instance with 1 harmful user of 4."""
    ds = Dataset()
    ds.add_instance(
        InstanceRecord(
            domain="mod1.example", software="pleroma", user_count=10, status_count=50,
            enabled_policies=("SimplePolicy", "ObjectAgePolicy"), policies_exposed=True,
            peers=("rejected.example", "mod2.example"), timeline_reachable=True,
        )
    )
    ds.add_instance(
        InstanceRecord(
            domain="mod2.example", software="pleroma", user_count=20, status_count=80,
            enabled_policies=("SimplePolicy",), policies_exposed=True,
            peers=("rejected.example", "mod1.example"), timeline_reachable=True,
        )
    )
    ds.add_instance(
        InstanceRecord(
            domain="rejected.example", software="pleroma", user_count=100, status_count=900,
            enabled_policies=("ObjectAgePolicy",), policies_exposed=True,
            peers=("mod1.example", "mod2.example"), timeline_reachable=True,
        )
    )
    ds.add_instance(
        InstanceRecord(
            domain="island.example", software="pleroma", user_count=5, status_count=10,
            enabled_policies=(), policies_exposed=True, peers=(), timeline_reachable=True,
        )
    )
    ds.add_instance(InstanceRecord(domain="gab.example", software="mastodon", user_count=0))

    for source in ("mod1.example", "mod2.example"):
        ds.add_policy_setting(
            PolicySettingRecord(
                domain=source,
                policy="SimplePolicy",
                config={"reject": ["rejected.example", "gab.example"]},
            )
        )
        ds.add_reject_edge(RejectEdge(source, "rejected.example", "reject"))
        ds.add_reject_edge(RejectEdge(source, "gab.example", "reject"))
    ds.add_policy_setting(
        PolicySettingRecord(domain="mod1.example", policy="ObjectAgePolicy")
    )
    ds.add_policy_setting(
        PolicySettingRecord(domain="rejected.example", policy="ObjectAgePolicy")
    )
    ds.add_reject_edge(RejectEdge("mod1.example", "pics.example", "media_removal"))

    # Users and posts on the rejected instance: 1 harmful, 3 benign.
    profiles = {
        "troll@rejected.example": (TOXIC_TEXT, 4),
        "ann@rejected.example": (BENIGN_TEXT, 3),
        "bee@rejected.example": (BENIGN_TEXT, 2),
        "cal@rejected.example": (BENIGN_TEXT, 3),
    }
    post_counter = 0
    for handle, (text, count) in profiles.items():
        ds.add_user(UserRecord(handle=handle, domain="rejected.example", post_count=count))
        for _ in range(count):
            post_counter += 1
            ds.add_post(
                PostRecord(
                    post_id=f"p{post_counter}",
                    author=handle,
                    domain="rejected.example",
                    content=text,
                    created_at=float(post_counter),
                    collected_from="rejected.example",
                )
            )
    return ds


class TestPolicyAnalyzer:
    def test_prevalence(self, handmade_dataset):
        analyzer = PolicyAnalyzer(handmade_dataset)
        prevalence = {row.policy: row for row in analyzer.prevalence()}
        assert prevalence["SimplePolicy"].instance_count == 2
        assert prevalence["ObjectAgePolicy"].instance_count == 2
        assert prevalence["SimplePolicy"].user_count == 30
        # 135 users total on observable instances.
        assert prevalence["SimplePolicy"].user_share == pytest.approx(30 / 135)

    def test_policy_type_counts(self, handmade_dataset):
        counts = PolicyAnalyzer(handmade_dataset).policy_type_counts()
        assert counts == {"total": 2, "builtin": 2, "custom": 0}

    def test_impact_shares(self, handmade_dataset):
        impact = PolicyAnalyzer(handmade_dataset).impact()
        # island.example (5 users, 10 posts) is neither targeted nor peered
        # with a policy-enabling instance; everything else is impacted.
        assert impact.users_total == 135
        assert impact.users_impacted == 130
        assert impact.user_impact_share == pytest.approx(130 / 135)
        assert impact.post_impact_share == pytest.approx(1030 / 1040)
        # Only rejected.example (100 users / 900 posts) is reject-targeted.
        assert impact.user_reject_share == pytest.approx(100 / 135)
        assert impact.post_reject_share == pytest.approx(900 / 1040)
        # 5 moderation edges, 4 of them rejects.
        assert impact.reject_event_share == pytest.approx(4 / 5)
        # 3 moderated targets, 2 rejected.
        assert impact.rejected_instance_share == pytest.approx(2 / 3)


class TestSimplePolicyAnalyzer:
    def test_action_breakdown(self, handmade_dataset):
        analyzer = SimplePolicyAnalyzer(handmade_dataset)
        reject = analyzer.action_breakdown("reject")
        assert reject.targeting_instances == 2
        assert reject.targeted_instances == 2
        assert reject.targeted_pleroma == 1
        assert reject.targeted_non_pleroma == 1
        assert reject.users_on_targeted_pleroma == 100

    def test_full_breakdown_sorted_by_targets(self, handmade_dataset):
        breakdown = SimplePolicyAnalyzer(handmade_dataset).full_breakdown()
        assert breakdown[0].action == "reject"

    def test_reject_adoption_share(self, handmade_dataset):
        assert SimplePolicyAnalyzer(handmade_dataset).reject_adoption_share() == 1.0

    def test_event_shares_sum_to_one(self, handmade_dataset):
        shares = SimplePolicyAnalyzer(handmade_dataset).action_event_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["reject"] == pytest.approx(0.8)


class TestHarmfulness:
    def test_user_labels(self, handmade_dataset):
        labeller = HarmfulnessLabeller(handmade_dataset)
        troll = labeller.label_user("troll@rejected.example")
        ann = labeller.label_user("ann@rejected.example")
        assert troll.is_harmful()
        assert troll.harmful_post_count == 4
        assert not ann.is_harmful()
        assert labeller.label_user("ghost@rejected.example") is None

    def test_instance_scores(self, handmade_dataset):
        labeller = HarmfulnessLabeller(handmade_dataset)
        scores = labeller.score_instance("rejected.example")
        assert scores.post_count == 12
        assert scores.harmful_post_count == 4
        assert scores.user_count == 4
        assert scores.harmful_user_count() == 1
        assert 0 < scores.mean_scores.toxicity < 0.6


class TestRejectAnalyzer:
    def test_rejected_instances(self, handmade_dataset):
        analyzer = RejectAnalyzer(handmade_dataset)
        rows = analyzer.rejected_instances(with_scores=True)
        assert {row.domain for row in rows} == {"rejected.example", "gab.example"}
        pleroma_row = next(row for row in rows if row.domain == "rejected.example")
        assert pleroma_row.rejects_received == 2
        assert pleroma_row.rejects_applied == 0
        assert pleroma_row.toxicity is not None

    def test_summary(self, handmade_dataset):
        summary = RejectAnalyzer(handmade_dataset).summary()
        assert summary.rejected_total == 2
        assert summary.rejected_pleroma == 1
        assert summary.rejected_pleroma_share == pytest.approx(1 / 4)
        assert summary.rejected_user_share == pytest.approx(100 / 135)
        assert summary.share_rejected_by_fewer_than == 1.0
        assert summary.elite_share == 0.0


class TestCollateral:
    def test_summary(self, handmade_dataset):
        analyzer = CollateralAnalyzer(handmade_dataset)
        summary = analyzer.summary()
        assert summary.analysed_instances == 1
        assert summary.labelled_users == 4
        assert summary.harmful_users == 1
        assert summary.harmful_user_share == pytest.approx(0.25)
        assert summary.non_harmful_user_share == pytest.approx(0.75)
        assert summary.harmful_posts == 4
        assert summary.harmful_post_ratio == pytest.approx(4 / 8)
        assert summary.attribute_shares["toxicity"] == pytest.approx(1.0)

    def test_threshold_sweep_monotone(self, handmade_dataset):
        sweep = CollateralAnalyzer(handmade_dataset).threshold_sweep()
        values = list(sweep.values())
        assert values == sorted(values)

    def test_per_instance_breakdown(self, handmade_dataset):
        rows = CollateralAnalyzer(handmade_dataset).per_instance_breakdown()
        assert rows[0].domain == "rejected.example"
        assert rows[0].toxic_users == 1
        assert rows[0].non_harmful_users == 3


class TestAnnotation:
    def test_rejected_instance_annotated_toxic(self, handmade_dataset):
        summary = InstanceAnnotator(handmade_dataset).annotate_rejected()
        assert summary.total_instances == 1
        assert summary.annotatable_instances == 1
        assert summary.category_counts == {"toxic": 1}
        assert summary.harmful_category_share == 1.0

    def test_instance_without_posts_not_annotatable(self, handmade_dataset):
        annotation = InstanceAnnotator(handmade_dataset).annotate_instance("mod1.example")
        assert not annotation.annotatable
        assert annotation.category == "unknown"


class TestFederationGraph:
    def test_graph_construction(self, handmade_dataset):
        analyzer = FederationGraphAnalyzer(handmade_dataset)
        graph = analyzer.federation_graph()
        assert graph.has_edge("mod1.example", "rejected.example")
        assert analyzer.reject_graph().has_edge("mod1.example", "rejected.example")

    def test_impact(self, handmade_dataset):
        impact = FederationGraphAnalyzer(handmade_dataset).impact()
        assert impact.reject_edges == 4
        assert impact.post_reject_reachable_pairs < impact.baseline_reachable_pairs
        assert impact.pair_loss_share > 0
        assert impact.reachability_loss["rejected.example"] > 0

    def test_most_rejecting(self, handmade_dataset):
        ranking = FederationGraphAnalyzer(handmade_dataset).most_rejecting_instances()
        assert ranking[0][1] == 2


class TestSolutions:
    def test_strategy_tradeoffs(self, handmade_dataset):
        comparison = SolutionEvaluator(handmade_dataset).compare()
        baseline = comparison.outcome(ModerationStrategy.INSTANCE_REJECT)
        per_user = comparison.outcome(ModerationStrategy.PER_USER_TAGGING)
        nsfw = comparison.outcome(ModerationStrategy.NSFW_TAGGING)
        assert baseline.users_blocked == 4
        assert baseline.collateral_share == pytest.approx(0.75)
        assert per_user.users_blocked == 1
        assert per_user.collateral_share == 0.0
        assert per_user.harmful_coverage == 1.0
        assert nsfw.users_blocked == 0
        assert nsfw.harmful_post_suppression == 1.0
        assert baseline.innocent_block_share > per_user.innocent_block_share

    def test_best_tradeoff_is_not_baseline(self, handmade_dataset):
        comparison = SolutionEvaluator(handmade_dataset).compare()
        assert comparison.best_tradeoff().strategy is not ModerationStrategy.INSTANCE_REJECT

    def test_repeat_offender_limit(self, handmade_dataset):
        evaluator = SolutionEvaluator(handmade_dataset, repeat_offender_limit=10)
        outcome = evaluator.evaluate(ModerationStrategy.REPEAT_OFFENDER_ESCALATION)
        assert outcome.users_blocked == 0


class TestSharedLabeller:
    """Analysis components without an explicit labeller share one interned
    default per dataset — one client, one corpus-column store — with labels
    bitwise identical to privately computed ones."""

    def test_default_labeller_is_interned_per_dataset(self, handmade_dataset):
        shared = HarmfulnessLabeller.shared(handmade_dataset)
        assert HarmfulnessLabeller.shared(handmade_dataset) is shared
        assert InstanceAnnotator(handmade_dataset).labeller is shared
        assert CollateralAnalyzer(handmade_dataset).labeller is shared
        assert RejectAnalyzer(handmade_dataset).labeller is shared
        assert SolutionEvaluator(handmade_dataset).labeller is shared
        # A different dataset gets its own labeller.
        other = Dataset()
        assert HarmfulnessLabeller.shared(other) is not shared

    def test_explicit_labeller_still_wins(self, handmade_dataset):
        private = HarmfulnessLabeller(handmade_dataset)
        annotator = InstanceAnnotator(handmade_dataset, labeller=private)
        assert annotator.labeller is private
        assert annotator.labeller is not HarmfulnessLabeller.shared(handmade_dataset)

    def test_shared_annotation_bitwise_identical_to_private(self, handmade_dataset):
        private = InstanceAnnotator(
            handmade_dataset, labeller=HarmfulnessLabeller(handmade_dataset)
        )
        shared = InstanceAnnotator(handmade_dataset)
        a = private.annotate_rejected()
        b = shared.annotate_rejected()
        assert a.annotations == b.annotations
        assert a.category_counts == b.category_counts
        assert a.annotatable_share == b.annotatable_share
        assert a.harmful_category_share == b.harmful_category_share
        assert a.general_share == b.general_share
