"""Tests for actors, activities and federation delivery."""

from __future__ import annotations

import pytest

from repro.activitypub.activities import (
    ActivityType,
    create_activity,
    delete_activity,
    flag_activity,
    follow_activity,
)
from repro.activitypub.actors import Actor
from repro.activitypub.delivery import FederationDelivery
from repro.fediverse.errors import FederationError
from repro.fediverse.post import Post
from repro.fediverse.user import User
from repro.mrf.simple import SimplePolicy


class TestActor:
    def test_from_user_copies_metadata(self):
        user = User(username="alice", domain="alpha.example", created_at=42.0, bot=True)
        user.add_follower("bob@beta.example")
        actor = Actor.from_user(user)
        assert actor.handle == "alice@alpha.example"
        assert actor.actor_type == "Service"
        assert actor.created_at == 42.0
        assert actor.follower_count == 1

    def test_from_handle(self):
        actor = Actor.from_handle("@carol@gamma.example")
        assert actor.username == "carol"
        assert actor.domain == "gamma.example"

    def test_inbox_outbox(self, actor):
        assert actor.inbox.endswith("/users/bob/inbox")
        assert actor.outbox.endswith("/users/bob/outbox")


class TestActivities:
    def test_create_activity_wraps_post(self, sample_post):
        activity = create_activity(sample_post)
        assert activity.activity_type is ActivityType.CREATE
        assert activity.is_create
        assert activity.post is sample_post
        assert activity.origin_domain == "beta.example"
        assert activity.to  # public addressing

    def test_delete_activity(self, actor):
        activity = delete_activity("https://beta.example/objects/1", actor, published=5.0)
        assert activity.is_delete
        assert activity.obj == "https://beta.example/objects/1"

    def test_follow_activity(self, actor):
        activity = follow_activity(actor, "alice@alpha.example", published=5.0)
        assert activity.is_follow
        assert activity.obj == "alice@alpha.example"

    def test_flag_activity(self, actor):
        activity = flag_activity(
            actor, "alice@alpha.example", ("uri1",), "spam", published=5.0
        )
        assert activity.is_flag
        assert activity.obj["target"] == "alice@alpha.example"

    def test_with_post_keeps_extra(self, sample_activity, sample_post):
        sample_activity.extra["k"] = "v"
        rewritten = sample_activity.with_post(sample_post.with_changes(sensitive=True))
        assert rewritten.extra == {"k": "v"}
        assert rewritten.post.sensitive

    def test_with_flag_sets_post_extra(self, sample_activity):
        flagged = sample_activity.with_flag("federated_timeline_removal")
        assert flagged.extra["federated_timeline_removal"] is True
        assert flagged.post.extra["federated_timeline_removal"] is True
        # The original is untouched.
        assert "federated_timeline_removal" not in sample_activity.extra


class TestFederationDelivery:
    def test_accepted_create_is_stored(self, registry, two_instances):
        alpha, beta = two_instances
        post = beta.publish("bob", "hello from beta")
        delivery = FederationDelivery(registry)
        report = delivery.federate_post(post, ["alpha.example"])[0]
        assert report.accepted
        assert post.post_id in alpha.remote_posts
        assert delivery.stats.accepted == 1

    def test_rejected_create_is_dropped(self, registry, two_instances):
        alpha, beta = two_instances
        alpha.mrf.add_policy(SimplePolicy(reject=["beta.example"]))
        post = beta.publish("bob", "hello again")
        delivery = FederationDelivery(registry)
        report = delivery.federate_post(post, ["alpha.example"])[0]
        assert report.rejected
        assert report.policy == "SimplePolicy"
        assert post.post_id not in alpha.remote_posts
        assert delivery.stats.rejected == 1

    def test_delivery_to_origin_raises(self, registry, two_instances, sample_activity):
        delivery = FederationDelivery(registry)
        with pytest.raises(FederationError):
            delivery.deliver(sample_activity, "beta.example")

    def test_broadcast_skips_origin(self, registry, two_instances):
        _, beta = two_instances
        post = beta.publish("bob", "broadcast me")
        delivery = FederationDelivery(registry)
        reports = delivery.federate_post(post, ["beta.example", "alpha.example"])
        assert len(reports) == 1
        assert reports[0].target_domain == "alpha.example"

    def test_delete_removes_remote_copy(self, registry, two_instances):
        alpha, beta = two_instances
        post = beta.publish("bob", "short lived")
        delivery = FederationDelivery(registry)
        delivery.federate_post(post, ["alpha.example"])
        actor = Actor.from_user(beta.get_user("bob"))
        delete = delete_activity(post.uri, actor, published=10.0)
        report = delivery.deliver(delete, "alpha.example")
        assert report.accepted
        assert post.post_id not in alpha.remote_posts

    def test_follow_applied_to_target_user(self, registry, two_instances):
        alpha, beta = two_instances
        actor = Actor.from_user(beta.get_user("bob"))
        follow = follow_activity(actor, "alice@alpha.example", published=1.0)
        delivery = FederationDelivery(registry)
        report = delivery.deliver(follow, "alpha.example")
        assert report.accepted
        assert "bob@beta.example" in alpha.get_user("alice").followers

    def test_moderation_event_logged_on_reject(self, registry, two_instances):
        alpha, beta = two_instances
        alpha.mrf.add_policy(SimplePolicy(reject=["beta.example"]))
        post = beta.publish("bob", "blocked content")
        FederationDelivery(registry).federate_post(post, ["alpha.example"])
        events = alpha.mrf.events
        assert len(events) == 1
        assert events[0].action == "reject"
        assert events[0].origin_domain == "beta.example"
        assert events[0].moderating_domain == "alpha.example"
