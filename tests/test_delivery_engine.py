"""Tests for the batched delivery engine: batches, sinks and accounting."""

from __future__ import annotations

import pytest

from repro.activitypub.activities import create_activity
from repro.activitypub.actors import Actor
from repro.activitypub.delivery import (
    CountingSink,
    FederationDelivery,
    FederationStats,
    ListSink,
    StreamingEdgeSink,
)
from repro.datasets.store import Dataset
from repro.fediverse.registry import FediverseRegistry
from repro.mrf.simple import SimplePolicy
from repro.perf import baselines
from repro.synth.generator import FediverseGenerator
from repro.synth.scenario import scenario_config


@pytest.fixture
def rejecting_pair(registry: FediverseRegistry):
    """beta federates to alpha; alpha rejects beta and strips gamma's media."""
    alpha = registry.create_instance("alpha.example", install_default_policies=False)
    beta = registry.create_instance("beta.example", install_default_policies=False)
    gamma = registry.create_instance("gamma.example", install_default_policies=False)
    beta.register_user("bob")
    gamma.register_user("gail")
    alpha.mrf.add_policy(
        SimplePolicy(reject=["beta.example"], media_nsfw=["gamma.example"])
    )
    return alpha, beta, gamma


def _activities(instance, username, contents):
    user = instance.get_user(username)
    actor = Actor.from_user(user)
    posts = [instance.publish(username, content) for content in contents]
    return [create_activity(post, actor=actor) for post in posts]


class TestDeliverBatch:
    def test_batch_matches_single_deliveries(self, registry, rejecting_pair):
        alpha, beta, _ = rejecting_pair
        activities = _activities(beta, "bob", ["one", "two", "three"])

        batched = FederationDelivery(registry)
        batch_reports = batched.deliver_batch(activities, "alpha.example")

        single = FederationDelivery(registry)
        single_reports = [single.deliver(a, "alpha.example") for a in activities]

        assert [(r.accepted, r.policy, r.action) for r in batch_reports] == [
            (r.accepted, r.policy, r.action) for r in single_reports
        ]
        assert batched.stats == single.stats

    def test_counted_path_matches_report_path(self, registry, rejecting_pair):
        alpha, beta, gamma = rejecting_pair
        activities = _activities(beta, "bob", ["a", "b"]) + _activities(
            gamma, "gail", ["c"]
        )
        with_reports = FederationDelivery(registry)
        reports = with_reports.deliver_batch(activities, "alpha.example")

        counted = FederationDelivery(registry, sinks=[])
        delivered, rejected = counted.deliver_batch_counted(activities, "alpha.example")

        assert delivered == len(reports) == 3
        assert rejected == sum(1 for r in reports if r.rejected) == 2
        assert counted.stats == with_reports.stats
        assert counted.reports == []  # nothing materialised

    def test_broadcast_normalises_and_skips_duplicates(self, registry, rejecting_pair):
        _, beta, _ = rejecting_pair
        post = beta.publish("bob", "hello out there")
        delivery = FederationDelivery(registry)
        reports = delivery.federate_post(
            post,
            [
                "ALPHA.example",
                "https://alpha.example/",
                "beta.example",  # the origin: skipped
                "gamma.example",
            ],
        )
        assert [r.target_domain for r in reports] == ["alpha.example", "gamma.example"]


class TestStatsAccounting:
    def test_counters_for_mixed_outcomes(self, registry, rejecting_pair):
        alpha, beta, gamma = rejecting_pair
        delivery = FederationDelivery(registry)
        for activity in _activities(beta, "bob", ["x", "y"]):
            delivery.deliver(activity, "alpha.example")
        for activity in _activities(gamma, "gail", ["z"]):
            delivery.deliver(activity, "alpha.example")

        stats = delivery.stats
        assert stats.delivered == 3
        assert stats.rejected == 2
        assert stats.accepted == 1
        assert stats.modified == 1  # gamma's post forced NSFW
        assert stats.by_policy == {"SimplePolicy": 3}

    def test_report_rejected_property(self, registry, rejecting_pair):
        _, beta, _ = rejecting_pair
        delivery = FederationDelivery(registry)
        report = delivery.deliver(
            _activities(beta, "bob", ["nope"])[0], "alpha.example"
        )
        assert report.rejected and not report.accepted
        assert report.policy == "SimplePolicy"
        assert report.action == "reject"

    def test_federation_stats_record(self):
        stats = FederationStats()
        from repro.activitypub.delivery import DeliveryReport

        stats.record(
            DeliveryReport("a1", "o.example", "t.example", accepted=False, policy="P", action="reject")
        )
        stats.record(
            DeliveryReport("a2", "o.example", "t.example", accepted=True, policy="P", action="media_nsfw", modified=True)
        )
        assert (stats.delivered, stats.accepted, stats.rejected, stats.modified) == (2, 1, 1, 1)
        assert stats.by_policy == {"P": 2}


class TestSinks:
    def test_list_sink_default_preserves_reports(self, registry, rejecting_pair):
        _, beta, _ = rejecting_pair
        delivery = FederationDelivery(registry)
        delivery.deliver(_activities(beta, "bob", ["hi"])[0], "alpha.example")
        assert len(delivery.reports) == 1
        assert delivery.reports[0].target_domain == "alpha.example"

    def test_counting_sink(self, registry, rejecting_pair):
        _, beta, gamma = rejecting_pair
        counting = CountingSink()
        delivery = FederationDelivery(registry, sinks=[counting])
        activities = _activities(beta, "bob", ["1", "2"]) + _activities(gamma, "gail", ["3"])
        delivery.deliver_batch(activities, "alpha.example")
        assert counting.stats.delivered == 3
        assert counting.stats.rejected == 2
        assert delivery.reports == []  # no list sink attached

    def test_streaming_edge_sink_feeds_dataset(self, registry, rejecting_pair):
        _, beta, _ = rejecting_pair
        dataset = Dataset()
        sink = StreamingEdgeSink(dataset)
        delivery = FederationDelivery(registry, sinks=[sink])
        activities = _activities(beta, "bob", ["1", "2"])
        delivery.deliver_batch(activities, "alpha.example")
        # Two rejected deliveries stream two observations deduplicated into
        # one moderation edge: alpha (moderator) -> beta (moderated).
        assert sink.streamed == 2
        assert len(dataset.reject_edges) == 1
        edge = dataset.reject_edges[0]
        assert (edge.source, edge.target, edge.action) == (
            "alpha.example",
            "beta.example",
            "reject",
        )
        assert dataset.rejects_applied("alpha.example") == 1
        assert dataset.rejected_domains() == ["beta.example"]

    def test_extra_sink_via_add_sink(self, registry, rejecting_pair):
        _, beta, _ = rejecting_pair
        extra = ListSink()
        delivery = FederationDelivery(registry)
        delivery.add_sink(extra)
        delivery.deliver(_activities(beta, "bob", ["hi"])[0], "alpha.example")
        assert len(extra.reports) == len(delivery.reports) == 1


class TestEngineEquivalence:
    """The batched engine and the seed-faithful loop agree on a real workload."""

    def test_tiny_generation_equivalence(self):
        config = scenario_config("tiny", seed=11)
        generator = FediverseGenerator(config)

        engine_prepared = generator.prepare()
        engine_delivery = FederationDelivery(engine_prepared.registry, sinks=[])
        generator.federate(engine_prepared, engine_delivery)

        naive_prepared = generator.prepare()
        naive_stats, naive_reports = baselines.naive_federate(
            naive_prepared.registry,
            generator.federation_batches(naive_prepared),
        )

        assert engine_delivery.stats.delivered == naive_stats.delivered
        assert engine_delivery.stats.rejected == naive_stats.rejected
        assert engine_delivery.stats.modified == naive_stats.modified
        assert engine_delivery.stats.by_policy == naive_stats.by_policy
        assert (
            engine_prepared.ground_truth.summary()
            == naive_prepared.ground_truth.summary()
        )

        def event_stream(registry):
            return {
                inst.domain: [
                    (e.timestamp, e.origin_domain, e.policy, e.action, e.accepted, e.reason)
                    for e in inst.mrf.events
                ]
                for inst in registry.instances()
            }

        assert event_stream(engine_prepared.registry) == event_stream(
            naive_prepared.registry
        )

        def remote_state(registry):
            return {
                inst.domain: sorted(
                    (pid, p.visibility.value, p.sensitive, tuple(sorted(p.extra.items())))
                    for pid, p in inst.remote_posts.items()
                )
                for inst in registry.instances()
            }

        assert remote_state(engine_prepared.registry) == remote_state(
            naive_prepared.registry
        )

        def timeline_state(registry):
            # Guards the counted path's inlined receive_remote_post fast
            # path: timeline placement must match the real method exactly.
            return {
                inst.domain: (
                    list(inst.timelines.public),
                    list(inst.timelines.whole_known_network),
                )
                for inst in registry.instances()
            }

        assert timeline_state(engine_prepared.registry) == timeline_state(
            naive_prepared.registry
        )

    def test_generate_matches_seed_counters(self):
        config = scenario_config("tiny", seed=11)
        generated = FediverseGenerator(config).generate()
        naive_prepared = FediverseGenerator(config).prepare()
        naive_stats, _ = baselines.naive_federate(
            naive_prepared.registry,
            FediverseGenerator(config).federation_batches(naive_prepared),
        )
        assert generated.stats.federated_deliveries == naive_stats.delivered
        assert generated.stats.rejected_deliveries == naive_stats.rejected
