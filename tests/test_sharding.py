"""Tests for the sharded multi-process federation engine (``repro.shard``).

The central claim under test is the engine's determinism gate: for a fixed
seed, the shard-merged federation state — ground truth, generation
counters, per-activity moderation-event streams, remote-post state, peer
sets and aggregate delivery stats — is bit-identical to the single-process
engine at every worker count, in both the inline and the forked execution
mode.  The twin-run fuzz exercises that claim across randomized scenario
parameters, including churn populations; the unit tests pin the two
mechanisms the claim leans on (the stable domain-hash partitioner and the
deterministic cross-shard merge).
"""

from __future__ import annotations

import pickle
import random
import types
import zlib

import pytest

from repro.activitypub.delivery import FederationDelivery
from repro.shard.engine import (
    ShardedRunResult,
    federate_sharded,
    fork_available,
    run_sharded,
)
from repro.shard.partition import partition_batches, partition_domains, shard_of
from repro.shard.state import (
    ShardResult,
    capture_shard,
    delivered_pairs,
    federation_state,
    merge_shard_results,
)
from repro.synth.generator import FediverseGenerator
from repro.synth.scenario import scenario_config


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def single_process_state(generator: FediverseGenerator) -> dict:
    """The reference run: the single-process batched engine's state snapshot."""
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    delivery = FederationDelivery(prepared.registry, sinks=[])
    stats = prepared.stats
    for batch in work:
        delivered, rejected = delivery.deliver_batch_counted(
            batch.activities, batch.target_domain
        )
        stats.federated_deliveries += delivered
        stats.rejected_deliveries += rejected
    return federation_state(prepared, delivery.stats)


def sharded_run(
    generator: FediverseGenerator, n_workers: int, processes: bool | None
) -> ShardedRunResult:
    """One sharded run on a freshly prepared fediverse."""
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    return federate_sharded(prepared, work, n_workers, processes=processes)


# --------------------------------------------------------------------------- #
# Domain-hash partitioner
# --------------------------------------------------------------------------- #
class TestPartitioner:
    DOMAINS = [f"instance-{i}.example" for i in range(200)]

    def test_shard_of_is_stable_crc32(self):
        """The partitioner must not depend on Python's salted str hash: it is
        pinned to CRC-32 of the UTF-8 bytes, stable across processes."""
        for domain in self.DOMAINS:
            for n in (2, 3, 4, 7):
                expected = zlib.crc32(domain.encode("utf-8")) % n
                assert shard_of(domain, n) == expected
                # Repeated calls agree (no hidden state).
                assert shard_of(domain, n) == expected

    def test_shard_of_range_and_single_shard(self):
        for domain in self.DOMAINS:
            assert shard_of(domain, 1) == 0
            for n in (1, 2, 3, 4, 8):
                assert 0 <= shard_of(domain, n) < n

    def test_shard_of_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            shard_of("a.example", 0)
        with pytest.raises(ValueError):
            shard_of("a.example", -1)

    def test_partition_domains_is_an_exact_cover(self):
        """Every domain lands in exactly one shard, in input order."""
        for n in (1, 2, 4, 7):
            shards = partition_domains(self.DOMAINS, n)
            assert len(shards) == n
            flat = [domain for shard in shards for domain in shard]
            assert sorted(flat) == sorted(self.DOMAINS)
            for index, shard in enumerate(shards):
                assert all(shard_of(domain, n) == index for domain in shard)
                # Input order is preserved within each shard.
                positions = [self.DOMAINS.index(domain) for domain in shard]
                assert positions == sorted(positions)

    def test_partition_spreads_across_shards(self):
        """Rough balance: with 200 domains no shard of 4 stays empty."""
        shards = partition_domains(self.DOMAINS, 4)
        assert all(shard for shard in shards)

    def test_partition_batches_groups_by_target_in_stream_order(self):
        rng = random.Random(7)
        targets = [f"t{i}.example" for i in range(11)]
        batches = [
            types.SimpleNamespace(seq=i, target_domain=rng.choice(targets))
            for i in range(80)
        ]
        for n in (1, 3, 4):
            shards = partition_batches(batches, n)
            flat = [batch for shard in shards for batch in shard]
            assert sorted(b.seq for b in flat) == list(range(80))
            for index, shard in enumerate(shards):
                assert all(shard_of(b.target_domain, n) == index for b in shard)
                # Each shard's list is a subsequence of the input stream.
                assert [b.seq for b in shard] == sorted(b.seq for b in shard)


# --------------------------------------------------------------------------- #
# Deterministic cross-shard merge
# --------------------------------------------------------------------------- #
class TestMerge:
    @pytest.fixture(scope="class")
    def inline_shards(self):
        """A real tiny run split into 4 shards, delivered inline by hand."""
        generator = FediverseGenerator(scenario_config("tiny", seed=13))
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        pairs = delivered_pairs(work)
        shards = partition_batches(work, 4)
        results = []
        for shard, batches in enumerate(shards):
            delivery = FederationDelivery(prepared.registry, sinks=[])
            delivered = rejected = 0
            for batch in batches:
                d, r = delivery.deliver_batch_counted(
                    batch.activities, batch.target_domain
                )
                delivered += d
                rejected += r
            results.append(
                capture_shard(
                    shard,
                    prepared.registry.shard_instances(shard, 4),
                    delivery.stats,
                    delivered,
                    rejected,
                    delivery.batch_rejects,
                    delivery.batch_rewrites,
                )
            )
        return prepared, results, pairs

    def test_merge_is_insensitive_to_result_arrival_order(self, inline_shards):
        """Workers may finish in any order; the merge sorts by shard index,
        so every arrival order produces the identical snapshot."""
        prepared, results, pairs = inline_shards
        reference = merge_shard_results(prepared, results, pairs)
        rng = random.Random(42)
        for _ in range(5):
            shuffled = list(results)
            rng.shuffle(shuffled)
            assert merge_shard_results(prepared, shuffled, pairs) == reference

    def test_merge_rejects_duplicate_domain_ownership(self, inline_shards):
        """A domain captured by two shards violates the ownership argument
        the exactness proof rests on — the merge must refuse it loudly."""
        prepared, _, pairs = inline_shards
        first = ShardResult(shard=0, events={"dup.example": ()})
        second = ShardResult(shard=1, events={"dup.example": ()})
        with pytest.raises(RuntimeError, match="more than one shard"):
            merge_shard_results(prepared, [first, second], pairs)

    def test_shard_instances_partition_the_registry(self, inline_shards):
        prepared, _, _ = inline_shards
        registry = prepared.registry
        all_domains = sorted(i.domain for i in registry.instances())
        owned = sorted(
            instance.domain
            for shard in range(4)
            for instance in registry.shard_instances(shard, 4)
        )
        assert owned == all_domains

    def test_shard_result_round_trips_through_pickle(self, inline_shards):
        """Results cross a multiprocessing pipe — they must pickle cleanly
        and by value."""
        _, results, _ = inline_shards
        for result in results:
            clone = pickle.loads(pickle.dumps(result))
            assert clone == result


# --------------------------------------------------------------------------- #
# Twin-run equivalence (the determinism gate)
# --------------------------------------------------------------------------- #
def fuzz_configs():
    """Randomized-but-reproducible scenario parameter sets, churn included."""
    rng = random.Random(20260807)
    cases = [
        ("tiny", {}),
        # A churn population: instances disappear mid-campaign, which is the
        # hardest case for delivery bookkeeping.
        ("tiny", {"instance_churn_rate": 0.25}),
    ]
    for _ in range(2):
        cases.append(
            (
                "tiny",
                {
                    "campaign_days": rng.choice([1.0, 2.0]),
                    "federation_fanout": rng.choice([2, 4]),
                    "instance_churn_rate": rng.choice([0.0, 0.2]),
                },
            )
        )
    # Activity-mix populations: boosts, favourites and reply threads flow
    # through the same sharded delivery path, so the determinism gate must
    # hold for them too.  New draws come after the original ones so the
    # original cases' seeds stay stable.
    for _ in range(2):
        cases.append(
            (
                "tiny",
                {
                    "federation_announce_share": rng.choice([0.3, 0.6]),
                    "federation_like_share": rng.choice([0.2, 0.5]),
                    "reply_thread_share": rng.choice([0.0, 0.15]),
                    "reply_thread_max_depth": rng.choice([6, 12]),
                    "instance_churn_rate": rng.choice([0.0, 0.2]),
                },
            )
        )
    return [
        pytest.param(name, dict(overrides, seed=rng.randrange(1, 10_000)), id=f"case{i}")
        for i, (name, overrides) in enumerate(cases)
    ]


class TestShardedEquivalence:
    @pytest.mark.parametrize(("scenario", "overrides"), fuzz_configs())
    def test_merged_state_bit_identical_inline(self, scenario, overrides):
        """Twin-run fuzz: shard-merged output equals the single-process
        engine's, bit for bit, at worker counts 1, 2 and 4."""
        seed = overrides.pop("seed")
        generator = FediverseGenerator(
            scenario_config(scenario, seed=seed, **overrides)
        )
        reference = single_process_state(generator)
        for n_workers in (1, 2, 4):
            result = sharded_run(generator, n_workers, processes=False)
            assert result.mode == "inline"
            assert result.state == reference
            assert sum(result.shard_batches) == result.batches

    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_merged_state_bit_identical_forked(self, n_workers):
        """The forked mode — real worker processes, batch slices over pipes,
        pickled captures back — merges to the same bits."""
        generator = FediverseGenerator(
            scenario_config("tiny", seed=29, instance_churn_rate=0.2)
        )
        reference = single_process_state(generator)
        result = sharded_run(generator, n_workers, processes=True)
        assert result.mode == "fork"
        assert result.state == reference
        # In fork mode the coordinator's registry stays untouched; the
        # counters must still come back through the pickled captures.
        assert sum(result.shard_batches) == result.batches
        assert result.delivered > 0

    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    def test_merged_state_bit_identical_forked_activity_mix(self):
        """Forked workers deliver Announce/Like/reply traffic to the same
        bits: engagement counters cross the pickle boundary intact."""
        generator = FediverseGenerator(
            scenario_config(
                "tiny",
                seed=31,
                federation_announce_share=0.5,
                federation_like_share=0.4,
                reply_thread_share=0.1,
                reply_thread_max_depth=8,
            )
        )
        reference = single_process_state(generator)
        result = sharded_run(generator, 2, processes=True)
        assert result.mode == "fork"
        assert result.state == reference

    def test_worker_count_must_be_positive(self):
        generator = FediverseGenerator(scenario_config("tiny", seed=3))
        prepared = generator.prepare()
        with pytest.raises(ValueError):
            federate_sharded(prepared, [], 0)

    def test_run_sharded_end_to_end(self):
        """The xxlarge entry point: prepare + materialise + federate in one
        call, merged state still bit-identical to the reference."""
        config = scenario_config("tiny", seed=57)
        reference = single_process_state(FediverseGenerator(config))
        prepared, result = run_sharded(config, 2)
        assert result.n_workers == 2
        assert result.state == reference
        assert prepared.registry is not None


# --------------------------------------------------------------------------- #
# Shared decision-cache hygiene
# --------------------------------------------------------------------------- #
class TestSharedStateHygiene:
    """Every run mode must leave the process-wide decision caches empty.

    The caches (rewrite ledgers, mention counts) only pay off within one
    run, and entries keep delivered posts alive; the engine clears them on
    the way out in the inline mode *and* in fork mode, where prepare() and
    stream materialisation populate the coordinator's caches even though
    the workers' copies die with their processes.
    """

    @staticmethod
    def assert_caches_empty():
        from repro.mrf import shared

        assert not shared._MENTIONS
        assert all(not ledger for ledger in shared._REWRITES.values())

    def test_inline_run_leaves_caches_empty(self):
        generator = FediverseGenerator(scenario_config("tiny", seed=61))
        result = sharded_run(generator, 2, processes=False)
        assert result.mode == "inline"
        self.assert_caches_empty()

    @pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
    def test_forked_run_leaves_caches_empty(self):
        generator = FediverseGenerator(scenario_config("tiny", seed=61))
        result = sharded_run(generator, 2, processes=True)
        assert result.mode == "fork"
        self.assert_caches_empty()
