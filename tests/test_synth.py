"""Tests for the synthetic-fediverse generator and its helpers."""

from __future__ import annotations

import random

import pytest

from repro.perspective.attributes import Attribute
from repro.perspective.scorer import LexiconScorer
from repro.synth.config import (
    PAPER_ACTION_ADOPTION,
    PAPER_POLICY_ADOPTION,
    SynthConfig,
)
from repro.synth.generator import FediverseGenerator
from repro.synth.ground_truth import GroundTruth, InstanceCategory
from repro.synth.names import NameGenerator
from repro.synth.population import (
    bounded_zipf_weights,
    geometric_count,
    lognormal_count,
    split_count,
    weighted_sample_without_replacement,
)
from repro.synth.scenario import SCENARIOS, build_scenario, scenario_config
from repro.synth.text import TextGenerator


class TestConfig:
    def test_defaults_valid(self):
        config = SynthConfig()
        assert config.n_non_pleroma_instances > config.n_pleroma_instances
        assert 0 < config.n_controversial_instances < config.n_pleroma_instances

    def test_validation(self):
        with pytest.raises(ValueError):
            SynthConfig(n_pleroma_instances=5)
        with pytest.raises(ValueError):
            SynthConfig(controversial_share=1.5)
        with pytest.raises(ValueError):
            SynthConfig(harmful_target_score=0.999)

    def test_policy_adoption_matches_paper_table(self):
        assert PAPER_POLICY_ADOPTION["ObjectAgePolicy"] == pytest.approx(869 / 1298)
        assert PAPER_POLICY_ADOPTION["SimplePolicy"] == pytest.approx(330 / 1298)

    def test_action_adoption_contains_all_ten_actions(self):
        assert len(PAPER_ACTION_ADOPTION) == 10
        assert PAPER_ACTION_ADOPTION["reject"] == 0.73

    def test_scaled(self):
        config = SynthConfig(n_pleroma_instances=100)
        bigger = config.scaled(2.0)
        assert bigger.n_pleroma_instances == 200
        assert config.n_pleroma_instances == 100

    def test_campaign_seconds(self):
        config = SynthConfig(campaign_days=2.0)
        assert config.campaign_seconds == pytest.approx(2 * 86400)


class TestNameGenerator:
    def test_domains_are_unique(self):
        names = NameGenerator(random.Random(1))
        domains = {names.domain() for _ in range(500)}
        assert len(domains) == 500

    def test_domains_use_reserved_tlds(self):
        names = NameGenerator(random.Random(1))
        assert names.domain().rsplit(".", 1)[1] in {"example", "test", "invalid"}

    def test_hint_embedded(self):
        names = NameGenerator(random.Random(1))
        assert "spicy" in names.domain(hint="spicy")

    def test_usernames_unique(self):
        names = NameGenerator(random.Random(1))
        usernames = {names.username() for _ in range(200)}
        assert len(usernames) == 200


class TestPopulationHelpers:
    def test_lognormal_count_minimum(self):
        rng = random.Random(3)
        assert all(lognormal_count(rng, 2.0, minimum=1) >= 1 for _ in range(100))

    def test_lognormal_count_mean_roughly_preserved(self):
        rng = random.Random(3)
        samples = [lognormal_count(rng, 50.0, sigma=0.8) for _ in range(3000)]
        assert 40 < sum(samples) / len(samples) < 62

    def test_lognormal_invalid(self):
        with pytest.raises(ValueError):
            lognormal_count(random.Random(1), 0.0)

    def test_geometric_count_mean(self):
        rng = random.Random(5)
        samples = [geometric_count(rng, 8.0) for _ in range(3000)]
        assert 7 < sum(samples) / len(samples) < 9

    def test_zipf_weights_decreasing(self):
        weights = bounded_zipf_weights(10)
        assert weights == sorted(weights, reverse=True)

    def test_weighted_sample_without_replacement(self):
        rng = random.Random(7)
        items = [f"i{i}" for i in range(20)]
        weights = [1.0] * 20
        sample = weighted_sample_without_replacement(rng, items, weights, 5)
        assert len(sample) == len(set(sample)) == 5

    def test_weighted_sample_respects_weights(self):
        rng = random.Random(7)
        items = ["heavy", "light"]
        counts = {"heavy": 0, "light": 0}
        for _ in range(500):
            pick = weighted_sample_without_replacement(rng, items, [50.0, 1.0], 1)[0]
            counts[pick] += 1
        assert counts["heavy"] > counts["light"] * 5

    def test_split_count(self):
        assert split_count(100, 0.25) == (25, 75)
        with pytest.raises(ValueError):
            split_count(10, 1.5)


class TestTextGenerator:
    def test_benign_post_scores_low(self):
        text = TextGenerator(random.Random(11))
        scorer = LexiconScorer()
        assert scorer.score(text.benign_post(30)).max_score < 0.3

    def test_harmful_post_reaches_target(self):
        text = TextGenerator(random.Random(11))
        scorer = LexiconScorer()
        scores = [
            scorer.score(text.harmful_post(("toxicity",), 0.88, length=22)).toxicity
            for _ in range(60)
        ]
        assert sum(scores) / len(scores) > 0.75

    def test_two_attribute_post(self):
        text = TextGenerator(random.Random(11))
        scorer = LexiconScorer()
        totals = {"toxicity": 0.0, "profanity": 0.0}
        for _ in range(60):
            scores = scorer.score(
                text.harmful_post(("profanity", "toxicity"), 0.85, length=26)
            )
            totals["toxicity"] += scores.toxicity
            totals["profanity"] += scores.profanity
        assert totals["toxicity"] / 60 > 0.6
        assert totals["profanity"] / 60 > 0.6

    def test_harmful_post_without_attributes_is_benign(self):
        text = TextGenerator(random.Random(11))
        assert LexiconScorer().score(text.harmful_post((), 0.9)).max_score < 0.3

    def test_spam_post_contains_link(self):
        text = TextGenerator(random.Random(11))
        assert "https://" in text.spam_post()

    def test_hellthread_post_mentions(self):
        text = TextGenerator(random.Random(11))
        post = text.hellthread_post(mention_count=12)
        assert post.count("@victim") == 12


class TestGroundTruth:
    def test_category_queries(self):
        truth = GroundTruth()
        truth.instance_categories["a.example"] = InstanceCategory.TOXIC
        truth.controversial_domains.add("a.example")
        truth.harmful_users["u@a.example"] = ("toxicity",)
        assert truth.category("a.example").is_harmful
        assert truth.category("other.example") is InstanceCategory.MAINSTREAM
        assert truth.is_controversial("a.example")
        assert truth.is_harmful_user("u@a.example")
        assert truth.harmful_user_count("a.example") == 1

    def test_category_attribute_mapping(self):
        assert InstanceCategory.TOXIC.attribute == "toxicity"
        assert InstanceCategory.GENERAL.attribute is None


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        first = FediverseGenerator(SynthConfig(n_pleroma_instances=25, seed=5)).generate()
        second = FediverseGenerator(SynthConfig(n_pleroma_instances=25, seed=5)).generate()
        assert first.registry.domains == second.registry.domains
        assert first.stats.posts == second.stats.posts
        assert first.ground_truth.summary() == second.ground_truth.summary()

    def test_different_seeds_differ(self):
        first = FediverseGenerator(SynthConfig(n_pleroma_instances=25, seed=5)).generate()
        second = FediverseGenerator(SynthConfig(n_pleroma_instances=25, seed=6)).generate()
        assert first.registry.domains != second.registry.domains

    def test_population_counts(self, tiny_fediverse):
        config = tiny_fediverse.config
        registry = tiny_fediverse.registry
        assert len(registry.pleroma_instances()) == config.n_pleroma_instances
        assert len(registry.non_pleroma_instances()) == config.n_non_pleroma_instances

    def test_controversial_instances_hold_most_users(self, tiny_fediverse):
        truth = tiny_fediverse.ground_truth
        controversial = sum(
            truth.users_per_instance[d] for d in truth.controversial_domains
        )
        total = sum(truth.users_per_instance.values())
        assert controversial / total > 0.6

    def test_elite_instances_exist_and_are_controversial(self, tiny_fediverse):
        truth = tiny_fediverse.ground_truth
        assert len(truth.elite_domains) == tiny_fediverse.config.n_elite
        assert set(truth.elite_domains) <= truth.controversial_domains

    def test_harmful_users_mostly_on_controversial_instances(self, tiny_fediverse):
        truth = tiny_fediverse.ground_truth
        on_controversial = sum(
            1
            for handle in truth.harmful_users
            if handle.rsplit("@", 1)[1] in truth.controversial_domains
        )
        assert on_controversial / max(1, len(truth.harmful_users)) > 0.8

    def test_federation_exercises_moderation(self, tiny_fediverse):
        assert tiny_fediverse.stats.federated_deliveries > 0
        assert tiny_fediverse.stats.rejected_deliveries > 0

    def test_policy_assignment_recorded(self, tiny_fediverse):
        assignment = tiny_fediverse.policy_assignment
        assert len(assignment) == tiny_fediverse.config.n_pleroma_instances
        enabled = {name for names in assignment.values() for name in names}
        assert "ObjectAgePolicy" in enabled
        assert "SimplePolicy" in enabled

    def test_harmful_users_recovered_by_scorer(self, tiny_fediverse):
        scorer = LexiconScorer()
        truth = tiny_fediverse.ground_truth
        registry = tiny_fediverse.registry
        recovered = 0
        checked = 0
        for handle in list(truth.harmful_users)[:40]:
            username, domain = handle.split("@", 1)
            user = registry.get(domain).get_user(username)
            posts = [registry.get(domain).get_post(post_id) for post_id in user.post_ids]
            if not posts:
                continue
            checked += 1
            means = [scorer.score(post.content) for post in posts]
            mean_max = max(
                sum(score.get(attribute) for score in means) / len(means)
                for attribute in Attribute
            )
            if mean_max >= 0.75:
                recovered += 1
        assert checked > 0
        assert recovered / checked > 0.85


class TestScenarios:
    def test_known_scenarios(self):
        assert {
            "tiny",
            "small",
            "medium",
            "large",
            "xlarge",
            "burst",
            "churn",
            "paper",
        } <= set(SCENARIOS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            scenario_config("galactic")

    def test_scenario_overrides(self):
        config = scenario_config("tiny", n_elite_instances=2)
        assert config.n_elite_instances == 2

    def test_build_scenario_runs(self):
        fediverse = build_scenario("tiny", seed=3)
        assert fediverse.stats.users > 0

    def test_xlarge_scales_beyond_large(self):
        assert (
            SCENARIOS["xlarge"]["n_pleroma_instances"]
            > SCENARIOS["large"]["n_pleroma_instances"]
        )

    def test_plain_scenarios_have_no_burst_or_churn(self):
        for name in ("tiny", "small", "medium", "large", "paper"):
            config = scenario_config(name)
            assert config.federation_hot_origin_share == 0.0
            assert config.instance_churn_rate == 0.0


class TestBurstScenario:
    def test_hot_origins_widen_fanout(self):
        base = build_scenario("burst", seed=9, n_pleroma_instances=40,
                              federation_hot_origin_share=0.0)
        burst = build_scenario("burst", seed=9, n_pleroma_instances=40)
        assert burst.stats.federated_deliveries > base.stats.federated_deliveries
        assert burst.stats.users == base.stats.users  # only federation differs

    def test_burst_deterministic(self):
        first = build_scenario("burst", seed=9, n_pleroma_instances=40)
        second = build_scenario("burst", seed=9, n_pleroma_instances=40)
        assert first.stats == second.stats
        assert first.ground_truth.summary() == second.ground_truth.summary()


class TestChurnScenario:
    def test_churned_instances_marked(self):
        fediverse = build_scenario("churn", seed=9, n_pleroma_instances=40)
        churned = fediverse.ground_truth.churned_domains
        assert churned
        for domain in churned:
            availability = fediverse.registry.get(domain).availability
            assert availability.down_after is not None
            assert availability.down_after >= fediverse.config.campaign_seconds
        # Elite instances never churn.
        assert not churned & set(fediverse.ground_truth.elite_domains)

    def test_churned_instance_goes_down_over_time(self):
        fediverse = build_scenario("churn", seed=9, n_pleroma_instances=40)
        crawlable = [
            domain
            for domain in sorted(fediverse.ground_truth.churned_domains)
            if fediverse.registry.get(domain).availability.status_code == 200
        ]
        assert crawlable
        availability = fediverse.registry.get(crawlable[0]).availability
        assert availability.ok_at(availability.down_after - 1.0)
        assert not availability.ok_at(availability.down_after)
        assert availability.status_at(availability.down_after) == 503

    def test_churn_campaign_loses_instances_mid_crawl(self):
        from repro.experiments.pipeline import ReproPipeline

        pipeline = ReproPipeline(
            scenario="churn",
            seed=9,
            campaign_days=1.5,
            n_pleroma_instances=40,
            instance_churn_rate=0.3,
        )
        crawl = pipeline.crawl
        churned = pipeline.fediverse.ground_truth.churned_domains
        assert churned
        rounds = max(crawl.snapshot_counts.values())
        partially_seen = [
            domain
            for domain in churned
            if 0 < crawl.snapshot_counts.get(domain, 0) < rounds
        ]
        # At least one churned instance was seen early and lost later.
        assert partially_seen
        # The dataset still builds and the analysis runs end-to-end.
        assert pipeline.dataset.stats()["pleroma_instances"] > 0
