"""Smoke tests for the example scripts and scale-invariance checks.

The examples are part of the public surface of the repository; these tests
keep them importable and runnable so they do not rot as the library evolves.
The scale-invariance tests back the DESIGN.md claim that headline
percentages are stable across generator scales.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

from repro.experiments.registry import run_experiment

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    """Import an example script as a module."""
    if str(EXAMPLES_DIR) not in sys.path:
        sys.path.insert(0, str(EXAMPLES_DIR))
    return importlib.import_module(name)


class TestExampleScripts:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "measurement_campaign.py",
            "collateral_damage_study.py",
            "moderation_policy_lab.py",
            "proposed_policies_demo.py",
        } <= names

    def test_moderation_policy_lab_runs(self, capsys):
        module = _load_example("moderation_policy_lab")
        module.main()
        output = capsys.readouterr().out
        assert "SimplePolicy" in output
        assert "moderation events recorded" in output

    def test_proposed_policies_demo_runs(self, capsys):
        module = _load_example("proposed_policies_demo")
        module.main()
        output = capsys.readouterr().out
        assert "SimplePolicy reject (baseline)" in output
        assert "benign delivered:   0" in output  # the baseline's collateral
        assert "RepeatOffenderPolicy" in output

    def test_quickstart_hand_built_part_runs(self, capsys):
        module = _load_example("quickstart")
        module.hand_built_fediverse()
        output = capsys.readouterr().out
        assert "accepted: False" in output
        assert "policy:   SimplePolicy" in output

    def test_measurement_campaign_runs_on_tiny(self, capsys, tmp_path, monkeypatch):
        module = _load_example("measurement_campaign")
        monkeypatch.setattr(module, "OUTPUT_DIR", tmp_path / "campaign_output")
        module.main("tiny")
        output = capsys.readouterr().out
        assert "dataset statistics:" in output
        assert (tmp_path / "campaign_output" / "dataset.json").exists()
        assert (tmp_path / "campaign_output" / "csv" / "instances.csv").exists()


class TestScaleInvariance:
    """Headline percentages are stable between the tiny and small scales."""

    def test_collateral_share_stable_across_scales(self, tiny_pipeline, small_pipeline):
        tiny = run_experiment("collateral", tiny_pipeline).measured("non_harmful_user_share")
        small = run_experiment("collateral", small_pipeline).measured("non_harmful_user_share")
        assert abs(tiny - small) < 0.08

    def test_reject_user_share_stable_across_scales(self, tiny_pipeline, small_pipeline):
        tiny = run_experiment("impact", tiny_pipeline).measured("user_reject_share")
        small = run_experiment("impact", small_pipeline).measured("user_reject_share")
        assert abs(tiny - small) < 0.15

    def test_policy_ranking_stable_across_scales(self, tiny_pipeline, small_pipeline):
        tiny_top = [row["policy"] for row in run_experiment("figure1", tiny_pipeline).rows[:3]]
        small_top = [row["policy"] for row in run_experiment("figure1", small_pipeline).rows[:3]]
        assert tiny_top[0] == small_top[0] == "ObjectAgePolicy"
        assert set(tiny_top) & set(small_top) >= {"ObjectAgePolicy", "TagPolicy"}

    def test_table2_shape_stable_across_scales(self, tiny_pipeline, small_pipeline):
        tiny = run_experiment("table2", tiny_pipeline)
        small = run_experiment("table2", small_pipeline)
        for threshold in (0.5, 0.8, 0.9):
            assert abs(
                tiny.measured(f"non_harmful_at_{threshold}")
                - small.measured(f"non_harmful_at_{threshold}")
            ) < 0.1
