"""Tests for the markdown report generator and assorted edge cases."""

from __future__ import annotations

import pytest

from repro.core.annotation import InstanceAnnotator
from repro.core.collateral import CollateralAnalyzer
from repro.core.federation_graph import FederationGraphAnalyzer
from repro.core.harmfulness import HarmfulnessLabeller
from repro.core.policy_analysis import PolicyAnalyzer
from repro.core.reject_analysis import RejectAnalyzer
from repro.core.simplepolicy_analysis import SimplePolicyAnalyzer
from repro.core.solutions import SolutionEvaluator
from repro.datasets.store import Dataset
from repro.experiments.base import ExperimentResult
from repro.experiments.report import render_report, render_result, write_experiments_markdown
from repro.synth.policies import PolicyAssigner
from repro.synth.config import SynthConfig
from repro.synth.ground_truth import GroundTruth, InstanceCategory

import random


class TestReportRendering:
    def test_render_result_produces_markdown_table(self):
        result = ExperimentResult(experiment_id="x", title="X test")
        result.add_comparison("share", 0.5, 0.6, unit="%")
        result.add_comparison("count", 12, None)
        text = render_result(result)
        assert "## x — X test" in text
        assert "| share | 60.0% | 50.0% |" in text
        assert "| count | n/a | 12 |" in text

    def test_render_report_contains_every_experiment(self, tiny_pipeline):
        text = render_report(tiny_pipeline)
        for section in ("dataset_stats", "figure1", "table2", "collateral", "solutions"):
            assert f"## {section}" in text

    def test_write_experiments_markdown(self, tmp_path):
        path = write_experiments_markdown(
            tmp_path / "EXPERIMENTS.md", scenario="tiny", seed=7, campaign_days=1.0
        )
        content = path.read_text(encoding="utf-8")
        assert content.startswith("# EXPERIMENTS")
        assert "paper" in content and "measured" in content


class TestEmptyDatasetEdgeCases:
    """Every analyzer must behave sanely on an empty dataset."""

    @pytest.fixture
    def empty(self) -> Dataset:
        return Dataset()

    def test_policy_analyzer(self, empty):
        analyzer = PolicyAnalyzer(empty)
        assert analyzer.prevalence() == []
        assert analyzer.policy_exposure_share() == 0.0
        impact = analyzer.impact()
        assert impact.user_impact_share == 0.0
        assert impact.reject_event_share == 0.0

    def test_simplepolicy_analyzer(self, empty):
        analyzer = SimplePolicyAnalyzer(empty)
        assert analyzer.reject_adoption_share() == 0.0
        assert analyzer.action_event_shares() == {}
        assert analyzer.media_removal_user_share() == 0.0

    def test_reject_analyzer(self, empty):
        analyzer = RejectAnalyzer(empty)
        assert analyzer.rejected_instances() == []
        summary = analyzer.summary()
        assert summary.rejected_total == 0
        assert summary.spearman_posts_vs_rejects == 0.0

    def test_collateral_analyzer(self, empty):
        analyzer = CollateralAnalyzer(empty)
        summary = analyzer.summary()
        assert summary.labelled_users == 0
        assert summary.harmful_user_share == 0.0
        assert analyzer.threshold_sweep() == {t: 0.0 for t in (0.5, 0.6, 0.7, 0.8, 0.9)}

    def test_annotator(self, empty):
        summary = InstanceAnnotator(empty).annotate_rejected()
        assert summary.total_instances == 0
        assert summary.harmful_category_share == 0.0

    def test_graph_analyzer(self, empty):
        impact = FederationGraphAnalyzer(empty).impact()
        assert impact.nodes == 0
        assert impact.pair_loss_share == 0.0

    def test_solution_evaluator(self, empty):
        comparison = SolutionEvaluator(empty).compare()
        assert all(outcome.users_blocked == 0 for outcome in comparison.outcomes)

    def test_labeller_threshold_validation(self, empty):
        with pytest.raises(ValueError):
            HarmfulnessLabeller(empty, threshold=0.0)


class TestPolicyAssigner:
    def test_action_choice_always_nonempty(self):
        config = SynthConfig(n_pleroma_instances=20)
        assigner = PolicyAssigner(config, random.Random(1), GroundTruth())
        for _ in range(50):
            assert assigner.choose_actions()

    def test_controversial_instances_rarely_get_simplepolicy(self):
        config = SynthConfig(n_pleroma_instances=20, controversial_simplepolicy_factor=0.0)
        truth = GroundTruth()
        truth.controversial_domains.add("contro.example")
        truth.instance_categories["contro.example"] = InstanceCategory.TOXIC
        assigner = PolicyAssigner(config, random.Random(2), truth)

        class _FakeInstance:
            domain = "contro.example"

        draws = [assigner.choose_policies(_FakeInstance()) for _ in range(100)]
        assert not any("SimplePolicy" in names for names in draws)

    def test_target_pool_weights_elites_highest(self):
        config = SynthConfig(n_pleroma_instances=20)
        truth = GroundTruth()
        truth.elite_domains = ["elite.example"]
        truth.controversial_domains = {"elite.example", "contro.example"}
        truth.blockable_non_pleroma_domains = {"ordinary.example"}
        assigner = PolicyAssigner(config, random.Random(3), truth)
        candidates, weights = assigner.build_target_pool()
        assert set(candidates) == {"elite.example", "contro.example", "ordinary.example"}
        assert weights["elite.example"] > weights["contro.example"] > weights["ordinary.example"]


class TestPipelineDeterminism:
    def test_same_seed_gives_identical_headline_numbers(self):
        from repro.experiments.pipeline import ReproPipeline
        from repro.experiments.registry import run_experiment

        first = ReproPipeline(scenario="tiny", seed=77, campaign_days=1.0)
        second = ReproPipeline(scenario="tiny", seed=77, campaign_days=1.0)
        a = run_experiment("collateral", first)
        b = run_experiment("collateral", second)
        assert a.measured("harmful_user_share") == b.measured("harmful_user_share")
        assert a.measured("non_harmful_user_share") == b.measured("non_harmful_user_share")
        a_impact = run_experiment("impact", first)
        b_impact = run_experiment("impact", second)
        assert a_impact.measured("user_reject_share") == b_impact.measured("user_reject_share")
