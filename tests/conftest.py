"""Shared fixtures for the test suite.

Expensive artefacts (generated fediverses, crawled datasets, analysis
pipelines) are session-scoped: the tiny scenario is generated once and
reused by every test that only needs *a* realistic dataset, keeping the
whole suite fast while still exercising the full pipeline.
"""

from __future__ import annotations

import pytest

from repro.activitypub.actors import Actor
from repro.activitypub.activities import create_activity
from repro.experiments.pipeline import ReproPipeline
from repro.fediverse.instance import Instance
from repro.fediverse.post import Post, Visibility
from repro.fediverse.registry import FediverseRegistry
from repro.fediverse.software import SoftwareKind
from repro.mrf.base import MRFContext
from repro.synth.scenario import build_scenario


# --------------------------------------------------------------------------- #
# Small hand-built fixtures (unit tests)
# --------------------------------------------------------------------------- #
@pytest.fixture
def registry() -> FediverseRegistry:
    """An empty registry with a fresh clock."""
    return FediverseRegistry()


@pytest.fixture
def two_instances(registry: FediverseRegistry) -> tuple[Instance, Instance]:
    """Two federated Pleroma instances with one user each."""
    alpha = registry.create_instance("alpha.example", install_default_policies=False)
    beta = registry.create_instance("beta.example", install_default_policies=False)
    alpha.register_user("alice")
    beta.register_user("bob")
    registry.federate("alpha.example", "beta.example")
    return alpha, beta


@pytest.fixture
def sample_post() -> Post:
    """A benign public post originating on beta.example."""
    return Post(
        post_id="beta.example-1",
        author="bob@beta.example",
        domain="beta.example",
        content="lovely weather for a bike ride today",
        created_at=100.0,
    )


@pytest.fixture
def sample_activity(sample_post: Post):
    """The sample post wrapped in a Create activity."""
    return create_activity(sample_post)


@pytest.fixture
def mrf_context() -> MRFContext:
    """An MRF context for alpha.example at t=200s."""
    return MRFContext(local_domain="alpha.example", now=200.0)


@pytest.fixture
def actor() -> Actor:
    """A plain remote actor."""
    return Actor(username="bob", domain="beta.example", created_at=0.0, follower_count=3)


# --------------------------------------------------------------------------- #
# Session-scoped pipeline fixtures (integration tests)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def tiny_fediverse():
    """A generated tiny fediverse (shared across the whole session)."""
    return build_scenario("tiny", seed=7)


@pytest.fixture(scope="session")
def tiny_pipeline() -> ReproPipeline:
    """A fully crawled + analysed tiny pipeline."""
    return ReproPipeline(scenario="tiny", seed=7, campaign_days=1.0)


@pytest.fixture(scope="session")
def small_pipeline() -> ReproPipeline:
    """A fully crawled + analysed small pipeline (the calibration scale)."""
    return ReproPipeline(scenario="small", seed=42, campaign_days=2.0)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_pipeline: ReproPipeline):
    """The crawled dataset of the tiny pipeline."""
    return tiny_pipeline.dataset


@pytest.fixture(scope="session")
def small_dataset(small_pipeline: ReproPipeline):
    """The crawled dataset of the small pipeline."""
    return small_pipeline.dataset
