"""Tests that the measurement recovers the generator's planted ground truth,
plus additional coverage of generator/crawler behaviours on generated data."""

from __future__ import annotations

import pytest

from repro.crawler.campaign import CampaignConfig, MeasurementCampaign
from repro.fediverse.software import SoftwareKind
from repro.synth.ground_truth import InstanceCategory


class TestGeneratedPopulationShape:
    def test_elite_instances_are_always_crawlable(self, tiny_fediverse):
        registry = tiny_fediverse.registry
        for domain in tiny_fediverse.ground_truth.elite_domains:
            instance = registry.get(domain)
            assert instance.availability.ok
            assert instance.expose_public_timeline

    def test_uncrawlable_share_close_to_configured(self, tiny_fediverse):
        registry = tiny_fediverse.registry
        config = tiny_fediverse.config
        pleroma = registry.pleroma_instances()
        uncrawlable = sum(1 for instance in pleroma if not instance.availability.ok)
        expected = sum(config.uncrawlable_status_shares.values())
        assert uncrawlable / len(pleroma) == pytest.approx(expected, abs=0.12)

    def test_non_pleroma_instances_have_no_users(self, tiny_fediverse):
        for instance in tiny_fediverse.registry.non_pleroma_instances():
            assert instance.user_count == 0

    def test_categories_assigned_to_every_instance(self, tiny_fediverse):
        truth = tiny_fediverse.ground_truth
        for instance in tiny_fediverse.registry.pleroma_instances():
            assert truth.category(instance.domain) in InstanceCategory

    def test_controversial_categories_mostly_harmful(self, tiny_fediverse):
        truth = tiny_fediverse.ground_truth
        categories = [truth.category(d) for d in truth.controversial_domains]
        harmful = sum(1 for c in categories if c.is_harmful)
        assert harmful / len(categories) > 0.6

    def test_sexually_explicit_instances_post_more_media(self, tiny_fediverse):
        truth = tiny_fediverse.ground_truth
        registry = tiny_fediverse.registry
        sexual_rates, other_rates = [], []
        for domain in truth.controversial_domains:
            instance = registry.get(domain)
            posts = instance.local_posts()
            if len(posts) < 10:
                continue
            rate = sum(1 for p in posts if p.has_media) / len(posts)
            if truth.category(domain) is InstanceCategory.SEXUALLY_EXPLICIT:
                sexual_rates.append(rate)
            else:
                other_rates.append(rate)
        if sexual_rates and other_rates:
            assert max(sexual_rates) > min(other_rates)

    def test_bot_share_is_small_but_present(self, tiny_fediverse):
        users = [
            user
            for instance in tiny_fediverse.registry.pleroma_instances()
            for user in instance.users.values()
        ]
        bots = sum(1 for user in users if user.bot)
        assert 0 < bots / len(users) < 0.15


class TestGroundTruthRecovery:
    """The crawled dataset + analysis recovers what the generator planted."""

    def test_rejected_domains_are_mostly_planted_controversial(self, tiny_pipeline, tiny_fediverse):
        # Note: tiny_pipeline uses the same scenario/seed family but its own
        # generation; regenerate the matching truth through the pipeline.
        truth = tiny_pipeline.fediverse.ground_truth
        dataset = tiny_pipeline.dataset
        rejected_pleroma = [
            domain
            for domain in dataset.rejected_domains()
            if dataset.instance(domain) is not None and dataset.instance(domain).is_pleroma
        ]
        if not rejected_pleroma:
            pytest.skip("no rejected Pleroma instances at this scale")
        planted = sum(1 for domain in rejected_pleroma if truth.is_controversial(domain))
        assert planted / len(rejected_pleroma) > 0.7

    def test_measured_harmful_users_were_planted_harmful(self, tiny_pipeline):
        truth = tiny_pipeline.fediverse.ground_truth
        labeller = tiny_pipeline.labeller
        analyzer = tiny_pipeline.collateral_analyzer
        matched = total = 0
        for domain in analyzer.analysed_domains():
            for label in labeller.label_users_on(domain):
                if label.is_harmful():
                    total += 1
                    if truth.is_harmful_user(label.handle):
                        matched += 1
        if total == 0:
            pytest.skip("no harmful users labelled at this scale")
        assert matched / total > 0.7

    def test_planted_harmful_users_with_posts_are_found(self, tiny_pipeline):
        truth = tiny_pipeline.fediverse.ground_truth
        dataset = tiny_pipeline.dataset
        labeller = tiny_pipeline.labeller
        found = missed = 0
        for handle in truth.harmful_users:
            if not dataset.posts_by(handle):
                continue  # the crawl never saw this user's posts
            label = labeller.label_user(handle)
            if label is not None and label.is_harmful(0.7):
                found += 1
            else:
                missed += 1
        if found + missed == 0:
            pytest.skip("no planted harmful users visible in the crawl")
        assert found / (found + missed) > 0.8

    def test_annotation_recovers_planted_categories(self, tiny_pipeline):
        truth = tiny_pipeline.fediverse.ground_truth
        annotator = tiny_pipeline.annotator
        agreements = comparisons = 0
        for annotation in annotator.annotate_rejected().annotations:
            planted = truth.category(annotation.domain)
            if not annotation.annotatable or planted is InstanceCategory.MAINSTREAM:
                continue
            comparisons += 1
            if planted is InstanceCategory.GENERAL:
                agreements += annotation.category == "general"
            else:
                agreements += annotation.is_harmful_category
        if comparisons == 0:
            pytest.skip("nothing to annotate at this scale")
        assert agreements / comparisons > 0.6


class TestCampaignVariants:
    def test_keep_all_snapshots(self, tiny_fediverse):
        campaign = MeasurementCampaign(
            tiny_fediverse.registry,
            CampaignConfig(
                duration_days=0.5, directory_coverage=1.0, keep_all_snapshots=True
            ),
        )
        result = campaign.run()
        rounds = CampaignConfig(duration_days=0.5).snapshot_rounds
        assert len(result.all_snapshots) == rounds * result.crawlable_pleroma

    def test_max_posts_per_instance_cap(self, tiny_fediverse):
        campaign = MeasurementCampaign(
            tiny_fediverse.registry,
            CampaignConfig(
                duration_days=0.25, directory_coverage=1.0, max_posts_per_instance=5
            ),
        )
        result = campaign.run()
        per_instance = {}
        for post in result.dataset.posts:
            per_instance[post.collected_from] = per_instance.get(post.collected_from, 0) + 1
        assert per_instance
        assert max(per_instance.values()) <= 5

    def test_partial_directory_coverage_reduces_crawl(self, tiny_fediverse):
        full = MeasurementCampaign(
            tiny_fediverse.registry,
            CampaignConfig(duration_days=0.25, directory_coverage=1.0),
        ).run()
        partial = MeasurementCampaign(
            tiny_fediverse.registry,
            CampaignConfig(duration_days=0.25, directory_coverage=0.5),
        ).run()
        assert len(partial.pleroma_domains) < len(full.pleroma_domains)

    def test_pleroma_share_of_dataset(self, tiny_pipeline):
        stats = tiny_pipeline.dataset.stats()
        share = stats["pleroma_instances"] / stats["instances_total"]
        # The paper finds Pleroma to be a small fraction of the discovered
        # fediverse (15.4%); the synthetic population mirrors that.
        assert 0.08 < share < 0.35

    def test_every_crawled_instance_runs_pleroma_or_unknown(self, tiny_dataset):
        for record in tiny_dataset.reachable_pleroma_instances():
            assert record.software == SoftwareKind.PLEROMA.value
