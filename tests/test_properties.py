"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.export import dataset_from_json, dataset_to_json
from repro.datasets.schema import InstanceRecord, PostRecord, RejectEdge, UserRecord
from repro.datasets.store import Dataset
from repro.fediverse.identifiers import domain_matches, make_handle, normalise_domain, parse_handle
from repro.fediverse.timeline import Timeline
from repro.perspective.attributes import ATTRIBUTES, AttributeScores
from repro.perspective.scorer import (
    CEILING,
    LexiconScorer,
    density_for_score,
    score_for_density,
)
from repro.synth.population import (
    geometric_count,
    lognormal_count,
    split_count,
    weighted_sample_without_replacement,
)
from repro.synth.text import TextGenerator

# ---------------------------------------------------------------------------#
# Strategies
# ---------------------------------------------------------------------------#
domain_labels = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10
)
domains = st.builds(lambda a, b: f"{a}.{b}", domain_labels, domain_labels)
usernames = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=12
)
scores = st.floats(min_value=0.0, max_value=1.0)
texts = st.text(min_size=0, max_size=200)


class TestIdentifierProperties:
    @given(domains)
    def test_normalise_is_idempotent(self, domain):
        once = normalise_domain(domain)
        assert normalise_domain(once) == once

    @given(usernames, domains)
    def test_handle_roundtrip(self, username, domain):
        handle = make_handle(username, domain)
        parsed_username, parsed_domain = parse_handle(handle)
        assert parsed_username == username
        assert parsed_domain == normalise_domain(domain)

    @given(domains)
    def test_domain_matches_itself(self, domain):
        assert domain_matches(domain, domain)

    @given(domains, domain_labels)
    def test_wildcard_matches_any_subdomain(self, domain, label):
        assert domain_matches(f"{label}.{domain}", f"*.{domain}")


class TestScorerProperties:
    @given(scores.filter(lambda s: s <= CEILING))
    def test_density_roundtrip(self, score):
        assert abs(score_for_density(density_for_score(score)) - score) < 1e-9

    @given(st.floats(min_value=0.0, max_value=5.0))
    def test_score_bounded(self, density):
        assert 0.0 <= score_for_density(density) <= CEILING

    @given(texts)
    def test_scores_always_in_range(self, text):
        result = LexiconScorer().score(text)
        for attribute in ATTRIBUTES:
            assert 0.0 <= result.get(attribute) <= 1.0

    @given(st.lists(st.builds(AttributeScores, toxicity=scores, profanity=scores, sexually_explicit=scores), min_size=1, max_size=20))
    def test_mean_is_bounded_by_min_and_max(self, score_list):
        mean = AttributeScores.mean(score_list)
        for attribute in ATTRIBUTES:
            values = [s.get(attribute) for s in score_list]
            assert min(values) - 1e-9 <= mean.get(attribute) <= max(values) + 1e-9

    @given(st.integers(min_value=0, max_value=2**32), st.floats(min_value=0.5, max_value=0.95), st.integers(min_value=10, max_value=40))
    @settings(max_examples=30)
    def test_planted_text_scores_near_target_on_average(self, seed, target, length):
        rng = random.Random(seed)
        generator = TextGenerator(rng)
        scorer = LexiconScorer()
        sampled = [
            scorer.score(generator.harmful_post(("toxicity",), target, length=length)).toxicity
            for _ in range(20)
        ]
        mean = sum(sampled) / len(sampled)
        assert abs(mean - target) < 0.2


class TestTimelineProperties:
    @given(st.lists(st.text(min_size=1, max_size=8), max_size=60))
    def test_no_duplicates_and_order_preserved(self, post_ids):
        timeline = Timeline("t")
        for post_id in post_ids:
            timeline.add(post_id)
        unique_in_order = list(dict.fromkeys(post_ids))
        assert list(timeline) == unique_in_order
        assert len(timeline) == len(set(post_ids))

    @given(st.lists(st.text(min_size=1, max_size=8), max_size=60), st.integers(min_value=1, max_value=10))
    def test_latest_returns_newest_first(self, post_ids, limit):
        timeline = Timeline("t")
        for post_id in post_ids:
            timeline.add(post_id)
        latest = timeline.latest(limit=limit)
        unique_in_order = list(dict.fromkeys(post_ids))
        assert latest == list(reversed(unique_in_order))[:limit]


class TestPopulationProperties:
    @given(st.integers(min_value=0, max_value=2**32), st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=50)
    def test_counts_respect_minimum(self, seed, mean):
        rng = random.Random(seed)
        assert lognormal_count(rng, mean, minimum=2) >= 2
        assert geometric_count(rng, max(1.0, mean), minimum=1) >= 1

    @given(st.integers(min_value=0, max_value=1000), st.floats(min_value=0.0, max_value=1.0))
    def test_split_count_conserves_total(self, total, share):
        matching, remaining = split_count(total, share)
        assert matching + remaining == total
        assert matching >= 0 and remaining >= 0

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=50)
    def test_weighted_sample_is_distinct_subset(self, seed, weights, k):
        rng = random.Random(seed)
        items = [f"item{i}" for i in range(len(weights))]
        sample = weighted_sample_without_replacement(rng, items, weights, k)
        assert len(sample) == len(set(sample))
        assert set(sample) <= set(items)
        assert len(sample) == min(k, len(items))


class TestDatasetProperties:
    @given(
        st.lists(
            st.builds(
                InstanceRecord,
                domain=domains,
                software=st.sampled_from(["pleroma", "mastodon", "unknown"]),
                user_count=st.integers(min_value=0, max_value=10_000),
                status_count=st.integers(min_value=0, max_value=100_000),
                reachable=st.booleans(),
            ),
            max_size=15,
        ),
        st.lists(
            st.builds(
                RejectEdge,
                source=domains,
                target=domains,
                action=st.sampled_from(["reject", "media_removal", "media_nsfw"]),
            ),
            max_size=25,
        ),
    )
    @settings(max_examples=40)
    def test_json_roundtrip_preserves_stats(self, instances, edges):
        dataset = Dataset()
        for record in instances:
            dataset.add_instance(record)
        dataset.add_reject_edges(edges)
        rebuilt = dataset_from_json(dataset_to_json(dataset))
        assert rebuilt.stats() == dataset.stats()
        assert rebuilt.rejected_domains() == dataset.rejected_domains()

    @given(
        st.lists(
            st.builds(
                PostRecord,
                post_id=st.text(min_size=1, max_size=6),
                author=st.builds(lambda u, d: f"{u}@{d}", usernames, domains),
                domain=domains,
                content=texts,
                created_at=st.floats(min_value=0, max_value=1e6),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_post_indexes_consistent(self, posts):
        dataset = Dataset()
        for post in posts:
            dataset.add_post(post)
        # Every stored post is reachable through both indexes.
        for post in dataset.posts:
            assert post in dataset.posts_by(post.author)
            assert post in dataset.posts_from(post.domain)
        # Deduplication key is (origin domain, post id).
        assert len(dataset.posts) == len({(p.domain, p.post_id) for p in posts})
