"""Tests for the materialised corpus score columns."""

from __future__ import annotations

import pytest

from repro.datasets.schema import PostRecord
from repro.datasets.store import Dataset
from repro.core.harmfulness import HarmfulnessLabeller
from repro.perf.baselines import naive_score_many
from repro.perspective.attributes import ATTRIBUTES, Attribute
from repro.perspective.client import PerspectiveClient
from repro.perspective.corpus import CorpusColumns
from repro.perspective.scorer import LexiconScorer

TEXTS = [
    "coffee garden bicycle",
    "idiot moron trash",
    "nsfw lewd adult content",
    "",
    "idiot moron trash",  # duplicate: interned once
    "damn hell crap",
]


class TestCorpusColumns:
    def test_columns_intern_and_match_scorer(self):
        scorer = LexiconScorer()
        columns = CorpusColumns(scorer, TEXTS)
        assert len(columns) == len(set(TEXTS))
        assert columns.scores_for(TEXTS) == scorer.score_many(TEXTS)
        assert columns.scores_for(TEXTS) == naive_score_many(scorer, TEXTS)

    def test_zero_hit_column_skips_token_count(self):
        scorer = LexiconScorer()
        columns = CorpusColumns(scorer, TEXTS)
        count, hits = columns.column("coffee garden bicycle")
        assert (count, hits) == (0, None)
        count, hits = columns.column("idiot moron trash")
        assert count == 3 and hits is not None

    def test_extend_on_miss(self):
        scorer = LexiconScorer()
        columns = CorpusColumns(scorer, TEXTS[:2])
        assert "damn hell crap" not in columns
        scores = columns.scores_for(["damn hell crap"])
        assert "damn hell crap" in columns
        assert scores == scorer.score_many(["damn hell crap"])

    def test_lexicon_mutation_invalidates_columns(self):
        scorer = LexiconScorer()
        columns = CorpusColumns(scorer, TEXTS)
        before = columns.scores_for(["coffee garden bicycle"])[0]
        assert before.max_score == 0.0
        assert columns.current

        scorer.lexicon.add_term(Attribute.TOXICITY, "coffee", 1.0)
        assert not columns.current
        after = columns.scores_for(["coffee garden bicycle"])[0]
        assert after.toxicity > 0.0
        assert columns.current
        assert columns.rebuilds == 1
        # And the refreshed columns still match a fresh scan bit for bit.
        assert columns.scores_for(TEXTS) == naive_score_many(scorer, TEXTS)

    def test_version_stamp_tracks_every_mutation(self):
        scorer = LexiconScorer()
        columns = CorpusColumns(scorer, TEXTS)
        stamp = columns.lexicon_version
        scorer.lexicon.add_term(Attribute.PROFANITY, "zonk", 0.5)
        scorer.lexicon.remove_term(Attribute.PROFANITY, "zonk")
        columns.scores_for(["coffee garden bicycle"])
        assert columns.lexicon_version == stamp + 2


class TestClientCorpusIntegration:
    def test_attached_corpus_only_changes_throughput(self):
        plain = PerspectiveClient()
        scorer = LexiconScorer()
        corpus_client = PerspectiveClient(scorer=scorer, corpus=CorpusColumns(scorer, TEXTS))
        plain_results = plain.analyze_many(TEXTS)
        corpus_results = corpus_client.analyze_many(TEXTS)
        assert [r.scores for r in plain_results] == [r.scores for r in corpus_results]
        assert [r.cached for r in plain_results] == [r.cached for r in corpus_results]
        assert plain.stats == corpus_client.stats

    def test_analyze_single_uses_corpus_and_charges_quota(self):
        scorer = LexiconScorer()
        client = PerspectiveClient(scorer=scorer, quota_per_window=2)
        client.attach_corpus(CorpusColumns(scorer, TEXTS))
        client.analyze(TEXTS[0])
        client.analyze(TEXTS[1])
        with pytest.raises(Exception):
            client.analyze(TEXTS[2])


def _dataset() -> Dataset:
    dataset = Dataset()
    for index, (text, harmful) in enumerate(
        [
            ("coffee garden bicycle weather", False),
            ("idiot moron idiot moron trash", True),
            ("sunset music album recipe", False),
        ]
    ):
        dataset.add_post(
            PostRecord(
                post_id=f"p{index}",
                author=f"user{index}@inst.example",
                domain="inst.example",
                content=text,
                created_at=0.0,
            )
        )
    return dataset


class TestLabellerCorpus:
    def test_labeller_materialises_corpus_once_per_campaign(self):
        dataset = _dataset()
        labeller = HarmfulnessLabeller(dataset)
        assert labeller.corpus is None
        labels = [labeller.label_user(f"user{i}@inst.example") for i in range(3)]
        corpus = labeller.corpus
        assert corpus is not None and len(corpus) == 3
        rebuilds = corpus.rebuilds
        labeller.invalidate_labels()
        relabelled = [labeller.label_user(f"user{i}@inst.example") for i in range(3)]
        assert labeller.corpus is corpus and corpus.rebuilds == rebuilds
        assert [l.mean_scores for l in labels] == [l.mean_scores for l in relabelled]

    def test_labeller_without_corpus_matches_labeller_with(self):
        with_corpus = HarmfulnessLabeller(_dataset())
        without = HarmfulnessLabeller(_dataset(), materialise_corpus=False)
        for handle in [f"user{i}@inst.example" for i in range(3)]:
            a = with_corpus.label_user(handle)
            b = without.label_user(handle)
            assert a.mean_scores == b.mean_scores
            assert a.harmful_post_count == b.harmful_post_count
        assert without.corpus is None

    def test_corpus_tracks_lexicon_mutation_through_labelling(self):
        labeller = HarmfulnessLabeller(_dataset())
        before = labeller.label_user("user0@inst.example")
        assert before.mean_scores.max_score == 0.0
        labeller.client.scorer.lexicon.add_term(Attribute.TOXICITY, "coffee", 1.0)
        labeller.invalidate_labels()
        labeller.client.clear_cache()
        after = labeller.label_user("user0@inst.example")
        assert after.mean_scores.toxicity > 0.0
