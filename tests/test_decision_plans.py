"""Tests for the declarative decision-plan API.

Covers the acceptance criteria of the plan redesign: every shipped policy
exposes a plan (nothing is opaque to the compiled pipeline), content-shaped
triggers (mention counts, keyword literals, hashtag columns) are
conservative, and the stateful twin-pipeline fuzz — compiled vs
``filter_uncompiled`` — holds for Hellthread/Keyword/Hashtag plans,
including pattern mutation mid-stream invalidating the interned column
stores.
"""

from __future__ import annotations

import random

from repro.activitypub.activities import create_activity
from repro.fediverse.clock import SECONDS_PER_DAY
from repro.fediverse.post import MediaAttachment, Post, Visibility
from repro.mrf.base import DecisionPlan
from repro.mrf.keywords import KeywordPolicy, NormalizeMarkup, VocabularyPolicy
from repro.mrf.media import HashtagPolicy, StealEmojiPolicy
from repro.mrf.object_age import ObjectAgePolicy
from repro.mrf.pipeline import MRFPipeline
from repro.mrf.proposed import CuratedBlocklistPolicy
from repro.mrf.registry import (
    all_known_policy_names,
    create_policy,
    proposed_policy_names,
)
from repro.mrf.simple import SimplePolicy
from repro.mrf.threads import HellthreadPolicy

NOW = 30 * SECONDS_PER_DAY


def make_post(domain="origin.example", created_at=NOW - 600.0, **kwargs):
    return Post(
        post_id=f"{domain}-{random.randrange(10**9)}",
        author=kwargs.pop("author", f"user@{domain}"),
        domain=domain,
        content=kwargs.pop("content", "a perfectly ordinary post"),
        created_at=created_at,
        **kwargs,
    )


def make_activity(domain="origin.example", **kwargs):
    return create_activity(make_post(domain=domain, **kwargs))


def decision_view(decision):
    return (
        decision.verdict,
        decision.policy,
        decision.action,
        decision.reason,
        decision.modified,
    )


def event_view(pipeline):
    return [
        (e.origin_domain, e.policy, e.action, e.activity_type, e.accepted, e.reason)
        for e in pipeline.events
    ]


class TestEveryPolicyHasAPlan:
    def test_no_shipped_policy_is_opaque(self):
        """The acceptance criterion: every constructible policy (in-built,
        observed custom, proposed) returns a DecisionPlan."""
        for name in all_known_policy_names() + proposed_policy_names():
            policy = create_policy(name)
            plan = policy.plan()
            assert isinstance(plan, DecisionPlan), f"{name} is opaque"

    def test_configured_policies_still_plan(self):
        configured = [
            SimplePolicy(reject=["bad.example"], accept=[]),
            KeywordPolicy(reject=["casino bonus"], replace={"heck": "h*ck"}),
            HashtagPolicy(sensitive=["nsfw"], reject=["banned_tag"]),
            HellthreadPolicy(delist_threshold=3, reject_threshold=6),
            ObjectAgePolicy(threshold=100.0, actions=("reject",)),
            StealEmojiPolicy(hosts=["*.example"]),
            CuratedBlocklistPolicy(lists={"NoHate": ["hate.example"]}, subscribed=["NoHate"]),
            VocabularyPolicy(reject=["Flag"]),
        ]
        for policy in configured:
            assert isinstance(policy.plan(), DecisionPlan)

    def test_fully_planned_pipeline(self):
        pipeline = MRFPipeline(local_domain="local.example")
        for name in ("ObjectAgePolicy", "KeywordPolicy", "HashtagPolicy", "HellthreadPolicy"):
            pipeline.add_policy(create_policy(name))
        assert pipeline.compiled().fully_planned


class TestContentTriggerSoundness:
    """Conservativeness of the interned content columns."""

    def assert_equivalent(self, pipeline, activity, now=NOW):
        before = len(pipeline.events)
        compiled = pipeline.filter(activity, now=now)
        compiled_events = pipeline.events[before:]
        before = len(pipeline.events)
        uncompiled = pipeline.filter_uncompiled(activity, now=now)
        uncompiled_events = pipeline.events[before:]
        assert decision_view(compiled) == decision_view(uncompiled)
        assert [
            (e.policy, e.action, e.accepted) for e in compiled_events
        ] == [(e.policy, e.action, e.accepted) for e in uncompiled_events]
        return compiled

    def test_keyword_substring_inside_longer_word(self):
        """'casino bonus' must match inside 'megacasino bonus' — the seed's
        re.search has no word boundaries, so the trigger must fire too."""
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(KeywordPolicy(reject=["casino bonus"]))
        hit = self.assert_equivalent(
            pipeline, make_activity(content="unmissable megacasino bonus deal")
        )
        assert hit.rejected

    def test_keyword_subject_only_match(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(KeywordPolicy(reject=["forbidden"]))
        hit = self.assert_equivalent(
            pipeline, make_activity(content="clean body", subject="Forbidden topic")
        )
        assert hit.rejected

    def test_keyword_unicode_casefold_still_matches(self):
        """re.IGNORECASE matches U+017F (long s) against 's', but lower()
        does not — non-ASCII texts must conservatively run the policy."""
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(KeywordPolicy(reject=["sale"]))
        hit = self.assert_equivalent(
            pipeline, make_activity(content="big ſale today")
        )
        assert hit.rejected

    def test_keyword_regex_pattern_falls_back_to_match_all(self):
        policy = KeywordPolicy(reject=[r"cas.no\s+bonus"])
        assert policy.plan().triggers.match_all
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(policy)
        hit = self.assert_equivalent(pipeline, make_activity(content="casino bonus"))
        assert hit.rejected

    def test_hashtag_apostrophe_adjacency(self):
        """'#nsfw's' carries the hashtag 'nsfw' though 'nsfw's' is one
        token — the trigger must still fire."""
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(HashtagPolicy(sensitive=["nsfw"]))
        hit = self.assert_equivalent(
            pipeline, make_activity(content="look at #nsfw's new stuff")
        )
        assert hit.modified and hit.activity.post.sensitive

    def test_hashtag_explicit_tags_field(self):
        """A tag only present in post.tags (not in the content) must trigger."""
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(HashtagPolicy(sensitive=["nsfw"]))
        hit = self.assert_equivalent(
            pipeline, make_activity(content="no tags here", tags=("NSFW",))
        )
        assert hit.modified and hit.activity.post.sensitive

    def test_hashtag_nonascii_neighbour_lowering_into_token(self):
        """U+212A (KELVIN SIGN) lowers to 'k': '#nsfwK' would tokenise
        as 'nsfwk' after lowering, destroying the anchored boundary — the
        trigger must conservatively run the policy on non-ASCII text."""
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(HashtagPolicy(reject=["nsfw"]))
        hit = self.assert_equivalent(
            pipeline, make_activity(content="look #nsfwK stuff")
        )
        assert hit.rejected

    def test_hashtag_prefix_does_not_act(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(HashtagPolicy(sensitive=["nsfw"]))
        miss = self.assert_equivalent(
            pipeline, make_activity(content="totally #nsfwish content")
        )
        assert miss.accepted and not miss.modified

    def test_hashtag_underscore_tag_uses_substring_mode(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(HashtagPolicy(sensitive=["my_tag"]))
        hit = self.assert_equivalent(pipeline, make_activity(content="see #my_tag now"))
        assert hit.modified

    def test_hellthread_mention_trigger(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(HellthreadPolicy(delist_threshold=3, reject_threshold=5))
        assert pipeline.compiled().min_mentions == 3
        few = self.assert_equivalent(
            pipeline, make_activity(content="hi @a@x.example and @b@y.example")
        )
        assert few.accepted and not few.modified
        many = " ".join(f"@user{i}@many.example" for i in range(6))
        rejected = self.assert_equivalent(pipeline, make_activity(content=many))
        assert rejected.rejected

    def test_normalize_markup_trigger(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(NormalizeMarkup())
        plain = self.assert_equivalent(pipeline, make_activity(content="no markup"))
        assert not plain.modified
        marked = self.assert_equivalent(
            pipeline, make_activity(content="hello <b>world</b>")
        )
        assert marked.modified and marked.activity.post.content == "hello world"


class TestPatternMutationMidStream:
    def test_keyword_mutation_invalidates_columns(self):
        """add_pattern/remove_pattern must bump the version stamp so the
        compiled pipeline rebuilds its plan (and column store)."""
        pipeline = MRFPipeline(local_domain="local.example")
        policy = KeywordPolicy(reject=["old phrase"])
        pipeline.add_policy(policy)
        activity = make_activity(content="speak of the new menace")
        assert pipeline.filter(activity, now=NOW).accepted

        policy.add_pattern("reject", "new menace")
        assert pipeline.filter(make_activity(content="speak of the new menace"), now=NOW).rejected
        assert policy.remove_pattern("reject", "new menace")
        assert pipeline.filter(make_activity(content="speak of the new menace"), now=NOW).accepted

    def test_hashtag_mutation_invalidates_columns(self):
        pipeline = MRFPipeline(local_domain="local.example")
        policy = HashtagPolicy(sensitive=())
        pipeline.add_policy(policy)
        activity = make_activity(content="all about #cryptids")
        assert not pipeline.filter(activity, now=NOW).modified

        policy.add_tag("sensitive", "#cryptids")
        assert pipeline.filter(make_activity(content="all about #cryptids"), now=NOW).modified
        assert policy.remove_tag("sensitive", "cryptids")
        assert not pipeline.filter(make_activity(content="all about #cryptids"), now=NOW).modified

    def test_vocabulary_mutation_invalidates_type_gate(self):
        from repro.activitypub.actors import Actor
        from repro.activitypub.activities import follow_activity

        pipeline = MRFPipeline(local_domain="local.example")
        policy = VocabularyPolicy(reject=["Flag"])
        pipeline.add_policy(policy)
        actor = Actor(username="someone", domain="origin.example")
        follow = follow_activity(actor, "alice@local.example", published=5.0)
        assert pipeline.filter(follow, now=NOW).accepted
        policy.add_type("reject", "Follow")
        follow = follow_activity(actor, "alice@local.example", published=5.0)
        assert pipeline.filter(follow, now=NOW).rejected
        assert policy.remove_type("reject", "follow")
        follow = follow_activity(actor, "alice@local.example", published=5.0)
        assert pipeline.filter(follow, now=NOW).accepted

    def test_hellthread_threshold_mutation(self):
        pipeline = MRFPipeline(local_domain="local.example")
        policy = HellthreadPolicy(delist_threshold=10, reject_threshold=0)
        pipeline.add_policy(policy)
        mentions = " ".join(f"@user{i}@many.example" for i in range(4))
        assert not pipeline.filter(make_activity(content=mentions), now=NOW).modified
        policy.delist_threshold = 3
        assert pipeline.filter(make_activity(content=mentions), now=NOW).modified


def build_fuzz_pipeline() -> MRFPipeline:
    pipeline = MRFPipeline(local_domain="local.example")
    pipeline.add_policy(ObjectAgePolicy())
    pipeline.add_policy(HellthreadPolicy(delist_threshold=4, reject_threshold=8))
    pipeline.add_policy(
        KeywordPolicy(
            reject=["forbidden phrase"],
            federated_timeline_removal=["noisy meme"],
            replace={"heck": "h*ck"},
        )
    )
    pipeline.add_policy(HashtagPolicy(sensitive=["nsfw"], reject=["banned_tag"]))
    pipeline.add_policy(SimplePolicy(reject=["bad.example"], media_nsfw=["lewd.example"]))
    pipeline.add_policy(StealEmojiPolicy(hosts=["*.example"]))
    return pipeline


def random_activity(rng: random.Random):
    domain = rng.choice(
        ["bad.example", "lewd.example", "plain.example", "other.example"]
    )
    pieces = []
    if rng.random() < 0.25:
        pieces.append("the forbidden phrase appears")
    if rng.random() < 0.25:
        pieces.append("such a noisy meme")
    if rng.random() < 0.2:
        pieces.append("what the heck")
    if rng.random() < 0.25:
        pieces.append("#nsfw stuff")
    if rng.random() < 0.1:
        pieces.append("#banned_tag")
    if rng.random() < 0.2:
        pieces.append(" ".join(f"@u{i}@m.example" for i in range(rng.randrange(1, 10))))
    if rng.random() < 0.3:
        pieces.append("spicy :emoji: content")
    if not pieces:
        pieces.append("an unremarkable update")
    kwargs = {}
    if rng.random() < 0.2:
        kwargs["attachments"] = (MediaAttachment(url=f"https://{domain}/a.png"),)
    if rng.random() < 0.15:
        kwargs["visibility"] = rng.choice(
            [Visibility.UNLISTED, Visibility.FOLLOWERS_ONLY, Visibility.DIRECT]
        )
    created_at = rng.uniform(0.0, NOW)
    return make_activity(
        domain=domain, content=" ".join(pieces), created_at=created_at, **kwargs
    )


class TestStatefulTwinFuzz:
    def test_compiled_matches_uncompiled_with_midstream_mutations(self):
        """Twin pipelines see the same activity stream; one filters through
        the compiled plans, the other through the seed walk.  Stateful
        policies (StealEmoji) must evolve identically, and mid-stream
        pattern mutations (applied to both twins) must invalidate the
        column version stamps on the compiled side."""
        compiled_pipeline = build_fuzz_pipeline()
        uncompiled_pipeline = build_fuzz_pipeline()
        rng = random.Random(20260728)

        def mutate(step: int) -> None:
            for pipeline in (compiled_pipeline, uncompiled_pipeline):
                keyword = pipeline.get_policy("KeywordPolicy")
                hashtag = pipeline.get_policy("HashtagPolicy")
                hellthread = pipeline.get_policy("HellthreadPolicy")
                if step == 40:
                    keyword.add_pattern("reject", "unremarkable update")
                elif step == 80:
                    keyword.remove_pattern("reject", "unremarkable update")
                    hashtag.add_tag("reject", "nsfw")
                elif step == 120:
                    hashtag.remove_tag("reject", "nsfw")
                    hellthread.delist_threshold = 2

        for step in range(160):
            mutate(step)
            activity = random_activity(rng)
            compiled = compiled_pipeline.filter(activity, now=NOW)
            uncompiled = uncompiled_pipeline.filter_uncompiled(activity, now=NOW)
            assert decision_view(compiled) == decision_view(uncompiled), f"step {step}"
            if compiled.accepted:
                assert (
                    compiled.activity.post.to_dict()
                    == uncompiled.activity.post.to_dict()
                ), f"step {step}"
        assert event_view(compiled_pipeline) == event_view(uncompiled_pipeline)
        # The stateful policy evolved identically on both sides.
        assert (
            compiled_pipeline.get_policy("StealEmojiPolicy").stolen
            == uncompiled_pipeline.get_policy("StealEmojiPolicy").stolen
        )

    def test_batch_programs_match_uncompiled_per_origin(self):
        """apply_batch (shared rejects, stages, residual walks) against the
        per-activity seed walk on single-origin batches."""
        rng = random.Random(99)
        for origin in ("bad.example", "lewd.example", "plain.example"):
            fast = build_fuzz_pipeline()
            slow = build_fuzz_pipeline()
            activities = []
            for _ in range(30):
                activity = random_activity(rng)
                if activity.origin_domain != origin:
                    continue
                activities.append(activity)
            rng_batch = [
                a for a in (random_activity(rng) for _ in range(60))
                if a.origin_domain == origin
            ]
            activities.extend(rng_batch)
            if not activities:
                continue
            shared, decisions, _ = fast.apply_batch(activities, origin, now=NOW)
            slow_decisions = [slow.filter_uncompiled(a, now=NOW) for a in activities]
            if shared is not None:
                policy, action, reason = shared
                for decision in slow_decisions:
                    assert decision.rejected
                    assert (decision.policy, decision.action, decision.reason) == (
                        policy,
                        action,
                        reason,
                    )
            else:
                for fast_decision, slow_decision in zip(decisions, slow_decisions):
                    if fast_decision is None:
                        assert slow_decision.accepted and not slow_decision.modified
                    else:
                        assert decision_view(fast_decision) == decision_view(
                            slow_decision
                        )
            assert event_view(fast) == event_view(slow)


class TestSharedRewriteLedger:
    def test_one_rewritten_copy_serves_many_receivers(self):
        """The same stale post delivered through two pipelines must come out
        as the same rewritten post object (the ledger share)."""
        first = MRFPipeline(local_domain="a.example")
        second = MRFPipeline(local_domain="b.example")
        first.add_policy(ObjectAgePolicy())
        second.add_policy(ObjectAgePolicy())
        activity = make_activity(created_at=0.0)
        one = first.filter(activity, now=NOW)
        two = second.filter(activity, now=NOW)
        assert one.modified and two.modified
        assert one.activity.post is two.activity.post

    def test_lean_batch_shares_decision_objects(self):
        first = MRFPipeline(local_domain="a.example")
        second = MRFPipeline(local_domain="b.example")
        first.add_policy(ObjectAgePolicy())
        second.add_policy(ObjectAgePolicy())
        activity = make_activity(created_at=0.0)
        _, decisions_a, rewrites_a = first.apply_batch(
            [activity], "origin.example", now=NOW, lean=True
        )
        _, decisions_b, rewrites_b = second.apply_batch(
            [activity], "origin.example", now=NOW, lean=True
        )
        assert rewrites_a == rewrites_b == 1
        assert decisions_a[0] is decisions_b[0]
        assert decisions_a[0].post.visibility is Visibility.UNLISTED


class TestSimplePolicyStagedRewrites:
    """SimplePolicy's origin-triggered, content-independent rewrite actions
    (media_removal, media_nsfw, followers_only, federated_timeline_removal)
    run as SharedRewrite stages on the batch fast path — bit-identical to
    the seed's per-activity walk."""

    ORIGIN = "staged.example"
    LOCAL = "local.example"

    STAGEABLE_COMBOS = (
        ("media_removal",),
        ("media_nsfw",),
        ("followers_only",),
        ("federated_timeline_removal",),
        ("media_removal", "media_nsfw", "federated_timeline_removal"),
        ("media_nsfw", "followers_only"),
    )

    def build_pipeline(self, actions, extra_policy=None):
        pipeline = MRFPipeline(local_domain=self.LOCAL)
        pipeline.add_policy(SimplePolicy(**{a: [self.ORIGIN] for a in actions}))
        if extra_policy is not None:
            pipeline.add_policy(extra_policy)
        return pipeline

    def post_variants(self):
        """Every (media, sensitive, visibility) slice, fresh and stale."""
        activities = []
        for created_at in (NOW - 600.0, 0.0):
            for has_media in (False, True):
                for sensitive in (False, True):
                    for visibility in (
                        Visibility.PUBLIC,
                        Visibility.UNLISTED,
                        Visibility.FOLLOWERS_ONLY,
                    ):
                        kwargs = dict(
                            created_at=created_at,
                            sensitive=sensitive,
                            visibility=visibility,
                        )
                        if has_media:
                            kwargs["attachments"] = (
                                MediaAttachment(url=f"https://{self.ORIGIN}/a.png"),
                            )
                        activities.append(
                            make_activity(domain=self.ORIGIN, **kwargs)
                        )
        return activities

    @staticmethod
    def post_view(activity):
        post = activity.post
        if post is None:
            return None
        return (
            len(post.attachments),
            post.sensitive,
            post.visibility,
            tuple(sorted(post.extra.items())),
            tuple(sorted(activity.extra.items())),
        )

    def extra_policies(self):
        from repro.mrf.visibility import RejectNonPublic

        return (
            lambda: None,
            lambda: ObjectAgePolicy(),
            lambda: RejectNonPublic(),
        )

    def test_staged_batches_match_uncompiled(self):
        """The equivalence gate: apply_batch (staged) against the seed walk
        for every stageable combination, alone and stacked with another
        shared-rewrite policy and with a visibility-triggered residual."""
        for actions in self.STAGEABLE_COMBOS:
            for make_extra in self.extra_policies():
                fast = self.build_pipeline(actions, make_extra())
                slow = self.build_pipeline(actions, make_extra())
                activities = self.post_variants()
                shared, decisions, _ = fast.apply_batch(
                    activities, self.ORIGIN, now=NOW
                )
                assert shared is None
                slow_decisions = [
                    slow.filter_uncompiled(a, now=NOW) for a in activities
                ]
                for fast_d, slow_d, activity in zip(
                    decisions, slow_decisions, activities
                ):
                    if fast_d is None:
                        assert slow_d.accepted and not slow_d.modified
                        continue
                    assert decision_view(fast_d) == decision_view(slow_d)
                    assert self.post_view(fast_d.activity) == self.post_view(
                        slow_d.activity
                    )
                assert event_view(fast) == event_view(slow)

    def test_stageable_actions_take_the_staged_path(self):
        compiled = self.build_pipeline(
            ("media_nsfw", "federated_timeline_removal")
        ).compiled()
        program = compiled.program_for(self.ORIGIN, self.LOCAL)
        assert not program.general
        assert [name for name, _ in program.stages] == ["SimplePolicy"]
        # Non-matching origins skip the stage entirely without going general.
        other = compiled.program_for("elsewhere.example", self.LOCAL)
        assert not other.general and not other.stages

    def test_unstageable_actions_fall_back_to_the_walk(self):
        """Actions that touch the actor or depend on the activity type
        cannot be expressed as post-slice outcomes."""
        for action in (
            "avatar_removal",
            "banner_removal",
            "reject_deletes",
            "report_removal",
        ):
            program = (
                self.build_pipeline((action,))
                .compiled()
                .program_for(self.ORIGIN, self.LOCAL)
            )
            assert program.general, action

    def test_produced_visibility_guards_the_stage(self):
        """followers_only produces FOLLOWERS_ONLY posts; stacked with a
        policy triggered by that visibility the program must go general,
        while a visibility-neutral stage stays staged."""
        from repro.mrf.visibility import RejectNonPublic

        guarded = self.build_pipeline(("followers_only",), RejectNonPublic())
        assert guarded.compiled().program_for(self.ORIGIN, self.LOCAL).general
        neutral = self.build_pipeline(("media_nsfw",), RejectNonPublic())
        program = neutral.compiled().program_for(self.ORIGIN, self.LOCAL)
        assert not program.general and program.stages

    def test_rewritten_copies_share_through_the_ledger(self):
        """Two instances applying the same actions to the same post must
        come out holding one rewritten copy between them."""
        first = self.build_pipeline(("media_nsfw",))
        second = self.build_pipeline(("media_nsfw",))
        activity = make_activity(domain=self.ORIGIN)
        _, decisions_a, _ = first.apply_batch([activity], self.ORIGIN, now=NOW)
        _, decisions_b, _ = second.apply_batch([activity], self.ORIGIN, now=NOW)
        assert decisions_a[0].modified and decisions_b[0].modified
        assert decisions_a[0].activity.post is decisions_b[0].activity.post
        assert decisions_a[0].activity.post.sensitive
