"""Tests for the SimplePolicy and its ten actions."""

from __future__ import annotations

import pytest

from repro.activitypub.activities import create_activity, delete_activity, flag_activity
from repro.activitypub.actors import Actor
from repro.fediverse.post import MediaAttachment, Post, Visibility
from repro.mrf.base import MRFContext
from repro.mrf.simple import SimplePolicy, SimplePolicyAction


CTX = MRFContext(local_domain="alpha.example", now=1000.0)
BAD_ACTOR = Actor(username="troll", domain="bad.example")


def bad_post(**overrides) -> Post:
    defaults = dict(
        post_id="bad-1",
        author="troll@bad.example",
        domain="bad.example",
        content="some remote content",
        created_at=500.0,
    )
    defaults.update(overrides)
    return Post(**defaults)


class TestActionParsing:
    def test_from_string_canonical(self):
        assert SimplePolicyAction.from_string("reject") is SimplePolicyAction.REJECT

    def test_from_string_aliases(self):
        assert (
            SimplePolicyAction.from_string("fed_timeline_rem")
            is SimplePolicyAction.FEDERATED_TIMELINE_REMOVAL
        )
        assert SimplePolicyAction.from_string("nsfw") is SimplePolicyAction.MEDIA_NSFW

    def test_from_string_unknown_raises(self):
        with pytest.raises(ValueError):
            SimplePolicyAction.from_string("explode")

    def test_ten_actions_exist(self):
        assert len(list(SimplePolicyAction)) == 10


class TestTargetManagement:
    def test_add_and_remove_target(self):
        policy = SimplePolicy()
        policy.add_target("reject", "Bad.Example")
        assert policy.matches("reject", "bad.example")
        assert policy.remove_target("reject", "bad.example")
        assert not policy.matches("reject", "bad.example")

    def test_wildcard_target(self):
        policy = SimplePolicy(reject=["*.bad.example"])
        assert policy.matches("reject", "sub.bad.example")
        assert policy.matches("reject", "bad.example")
        assert not policy.matches("reject", "good.example")

    def test_config_only_lists_nonempty_actions(self):
        policy = SimplePolicy(reject=["bad.example"], media_removal=["pics.example"])
        config = policy.config()
        assert set(config) == {"reject", "media_removal"}

    def test_all_targets(self):
        policy = SimplePolicy(reject=["a.example"], media_nsfw=["b.example"])
        assert policy.all_targets() == {"a.example", "b.example"}

    def test_matching_actions(self):
        policy = SimplePolicy(reject=["bad.example"], media_removal=["bad.example"])
        actions = policy.matching_actions("bad.example")
        assert SimplePolicyAction.REJECT in actions
        assert SimplePolicyAction.MEDIA_REMOVAL in actions

    def test_describe_matches(self):
        policy = SimplePolicy(reject=["*.bad.example"])
        matches = policy.describe_matches("sub.bad.example")
        assert matches[0].pattern == "*.bad.example"


class TestRejectingActions:
    def test_reject_blocks_everything(self):
        policy = SimplePolicy(reject=["bad.example"])
        decision = policy.filter(create_activity(bad_post()), CTX)
        assert decision.rejected
        assert decision.action == "reject"

    def test_untargeted_origin_passes(self):
        policy = SimplePolicy(reject=["other.example"])
        assert policy.filter(create_activity(bad_post()), CTX).accepted

    def test_accept_list_blocks_unlisted(self):
        policy = SimplePolicy(accept=["friend.example"])
        decision = policy.filter(create_activity(bad_post()), CTX)
        assert decision.rejected
        assert decision.action == "accept"

    def test_accept_list_allows_listed(self):
        policy = SimplePolicy(accept=["bad.example"])
        assert policy.filter(create_activity(bad_post()), CTX).accepted

    def test_reject_deletes(self):
        policy = SimplePolicy(reject_deletes=["bad.example"])
        delete = delete_activity("https://bad.example/objects/1", BAD_ACTOR, published=600.0)
        decision = policy.filter(delete, CTX)
        assert decision.rejected
        assert decision.action == "reject_deletes"

    def test_report_removal_drops_flags(self):
        policy = SimplePolicy(report_removal=["bad.example"])
        flag = flag_activity(BAD_ACTOR, "alice@alpha.example", ("u",), "abuse", 600.0)
        decision = policy.filter(flag, CTX)
        assert decision.rejected
        assert decision.action == "report_removal"

    def test_reject_deletes_does_not_block_creates(self):
        policy = SimplePolicy(reject_deletes=["bad.example"])
        assert policy.filter(create_activity(bad_post()), CTX).accepted


class TestRewritingActions:
    def test_media_removal_strips_attachments(self):
        policy = SimplePolicy(media_removal=["bad.example"])
        post = bad_post(attachments=(MediaAttachment(url="https://bad.example/x.png"),))
        decision = policy.filter(create_activity(post), CTX)
        assert decision.accepted and decision.modified
        assert decision.activity.post.attachments == ()

    def test_media_nsfw_marks_sensitive(self):
        policy = SimplePolicy(media_nsfw=["bad.example"])
        decision = policy.filter(create_activity(bad_post()), CTX)
        assert decision.activity.post.sensitive

    def test_followers_only_downgrades_visibility(self):
        policy = SimplePolicy(followers_only=["bad.example"])
        decision = policy.filter(create_activity(bad_post()), CTX)
        assert decision.activity.post.visibility is Visibility.FOLLOWERS_ONLY

    def test_federated_timeline_removal_sets_flag(self):
        policy = SimplePolicy(federated_timeline_removal=["bad.example"])
        decision = policy.filter(create_activity(bad_post()), CTX)
        assert decision.activity.extra["federated_timeline_removal"] is True

    def test_avatar_and_banner_removal(self):
        policy = SimplePolicy(
            avatar_removal=["bad.example"], banner_removal=["bad.example"]
        )
        actor = Actor(
            username="troll",
            domain="bad.example",
            avatar_url="https://bad.example/a.png",
            banner_url="https://bad.example/b.png",
        )
        activity = create_activity(bad_post(), actor=actor)
        decision = policy.filter(activity, CTX)
        assert decision.activity.actor.avatar_url is None
        assert decision.activity.actor.banner_url is None

    def test_multiple_rewrites_compose(self):
        policy = SimplePolicy(
            media_removal=["bad.example"], media_nsfw=["bad.example"]
        )
        post = bad_post(attachments=(MediaAttachment(url="https://bad.example/x.png"),))
        decision = policy.filter(create_activity(post), CTX)
        assert decision.activity.post.attachments == ()
        assert decision.activity.post.sensitive
        assert "media_removal" in decision.reason and "media_nsfw" in decision.reason

    def test_rewrite_does_not_modify_original_post(self):
        policy = SimplePolicy(media_nsfw=["bad.example"])
        post = bad_post()
        policy.filter(create_activity(post), CTX)
        assert not post.sensitive
