"""Equivalence fuzz for the compiled lexicon matching engine.

The engine's contract is *bitwise* equality with both the seed's
per-attribute token walk and PR 1's per-token single-pass path, across
every scan implementation (per-text regex, batched blob regex, batched
NumPy byte scan) and across lexicon mutations mid-run.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.perf.baselines import naive_score_many, single_pass_score_many
from repro.perspective.attributes import ATTRIBUTES
from repro.perspective.lexicon import Lexicon, default_lexicon, tokenize
from repro.perspective.matcher import CompiledLexiconMatcher, _np
from repro.perspective.scorer import LexiconScorer

BENIGN = (
    "coffee", "garden", "idiots'", "rivers", "morningstar", "hel", "hells",
    "adulting", "xx", "xxxx", "die7", "7die", "o'clock", "don't",
)
HARMFUL_SAMPLE = ("idiot", "moron", "hate", "die", "xxx", "nsfw", "adult", "hell")
SPECIALS = (
    "",
    " ",
    "   ",
    "'",
    "''",
    "idiot",
    "idiot,",
    "(idiot)",
    "idiot's",
    "'idiot'",
    "idiot-moron",
    "IDIOT Moron",
    "İdiot naïve café",
    "élève moron",
    "\U0001f600 kill \U0001f600",
    "x" * 300,
    "idiot\nmoron",
    "123 die 456",
    "die123",
    "no hits here at all",
)


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


def assert_scores_bitwise_equal(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        for attribute in ATTRIBUTES:
            assert bits(a.get(attribute)) == bits(b.get(attribute))


def random_texts(rng: random.Random, count: int) -> list[str]:
    texts = []
    for _ in range(count):
        words = []
        for _ in range(rng.randrange(0, 25)):
            bucket = rng.random()
            if bucket < 0.55:
                words.append(rng.choice(BENIGN))
            elif bucket < 0.85:
                words.append(rng.choice(HARMFUL_SAMPLE))
            else:
                words.append(rng.choice(SPECIALS))
        texts.append(" ".join(words))
    return texts


class TestCompiledEngineEquivalence:
    def test_specials_bitwise_equal_to_both_baselines(self):
        scorer = LexiconScorer()
        texts = list(SPECIALS)
        assert_scores_bitwise_equal(
            scorer.score_many(texts), naive_score_many(scorer, texts)
        )
        assert_scores_bitwise_equal(
            scorer.score_many(texts), single_pass_score_many(scorer, texts)
        )
        for text in texts:
            assert_scores_bitwise_equal(
                [scorer.score(text)], naive_score_many(scorer, [text])
            )

    def test_fuzz_bitwise_equal_across_scan_paths(self):
        rng = random.Random(0xC0FFEE)
        scorer = LexiconScorer()
        matcher = scorer.lexicon.compiled()
        texts = random_texts(rng, 400)
        assert_scores_bitwise_equal(
            scorer.score_many(texts), naive_score_many(scorer, texts)
        )
        # Every scan implementation produces identical columns.
        per_text = [matcher.scan_text(text) for text in texts]
        assert matcher._scan_blob(texts) == per_text
        if _np is not None:
            assert matcher._scan_numpy(texts) == per_text

    def test_score_attribute_bitwise_equal_to_seed_walk(self):
        rng = random.Random(7)
        scorer = LexiconScorer()
        for text in random_texts(rng, 120) + list(SPECIALS):
            tokens = tokenize(text)
            for attribute in ATTRIBUTES:
                if tokens:
                    expected = min(
                        scorer.ceiling,
                        scorer.gain
                        * (scorer.lexicon.weighted_hits(attribute, tokens) / len(tokens)),
                    )
                else:
                    expected = 0.0
                assert bits(scorer.score_attribute(text, attribute)) == bits(expected)

    def test_mutation_mid_run_recompiles_and_stays_equivalent(self):
        rng = random.Random(99)
        scorer = LexiconScorer()
        lexicon = scorer.lexicon
        texts = random_texts(rng, 150)
        for step in range(6):
            assert_scores_bitwise_equal(
                scorer.score_many(texts), naive_score_many(scorer, texts)
            )
            version = lexicon.version
            if step % 2 == 0:
                lexicon.add_term(ATTRIBUTES[step % 3], rng.choice(BENIGN), 0.4 + step / 10)
            else:
                lexicon.remove_term(
                    ATTRIBUTES[step % 3],
                    rng.choice(list(lexicon.terms[ATTRIBUTES[step % 3]])),
                )
            assert lexicon.version == version + 1

    def test_mutation_changes_scores_through_compiled_path(self):
        scorer = LexiconScorer()
        assert scorer.score("coffee coffee").max_score == 0.0
        scorer.lexicon.add_term(ATTRIBUTES[0], "coffee", 1.0)
        assert scorer.score("coffee coffee").max_score > 0.0
        assert scorer.lexicon.remove_term(ATTRIBUTES[0], "coffee")
        assert scorer.score("coffee coffee").max_score == 0.0


class TestCompiledMatcher:
    def test_compiled_is_cached_until_mutation(self):
        lexicon = default_lexicon()
        first = lexicon.compiled()
        assert lexicon.compiled() is first
        lexicon.add_term(ATTRIBUTES[0], "zonk")
        assert lexicon.compiled() is not first

    def test_unmatchable_terms_are_kept_out_of_the_pattern(self):
        lexicon = Lexicon()
        lexicon.add_term(ATTRIBUTES[0], "café")  # never a [a-z0-9']+ token
        lexicon.add_term(ATTRIBUTES[0], "two words")
        matcher = lexicon.compiled()
        assert matcher.pattern is None
        assert matcher.hits("café two words") is None
        scorer = LexiconScorer(lexicon)
        assert_scores_bitwise_equal(
            scorer.score_many(["café two words", "cafe"]),
            naive_score_many(scorer, ["café two words", "cafe"]),
        )

    def test_empty_lexicon_scans_to_nothing(self):
        lexicon = Lexicon()
        matcher = lexicon.compiled()
        assert matcher.pattern is None
        assert matcher.scan(["idiot"] * 40) == [(0, None)] * 40

    def test_boundaries_reject_partial_token_matches(self):
        matcher = default_lexicon().compiled()
        # "idiot" inside larger tokens must not match; whole tokens must.
        assert matcher.hits("idiots'") is None  # token is idiots' (not a term)
        assert matcher.hits("myidiot idiotic") is None
        assert matcher.hits("idiot") is not None
        assert matcher.hits("(idiot)") is not None

    def test_blob_and_numpy_paths_agree_on_unicode_and_empties(self):
        matcher = default_lexicon().compiled()
        texts = list(SPECIALS) * 4  # > 32 texts to engage the batched paths
        per_text = [matcher.scan_text(text) for text in texts]
        assert matcher._scan_blob(texts) == per_text
        if _np is not None:
            assert matcher._scan_numpy(texts) == per_text

    @pytest.mark.skipif(_np is None, reason="numpy not available")
    def test_scan_dispatches_to_batched_path(self):
        matcher = default_lexicon().compiled()
        texts = ["idiot moron", "coffee"] * 20
        assert matcher.scan(texts) == [matcher.scan_text(text) for text in texts]
