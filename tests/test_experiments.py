"""Tests for the experiment layer: result types, registry, every experiment."""

from __future__ import annotations

import pytest

from repro.experiments.base import Comparison, ExperimentResult
from repro.experiments.pipeline import ReproPipeline, clear_pipeline_cache, get_pipeline
from repro.experiments.registry import (
    EXPERIMENT_TITLES,
    EXPERIMENTS,
    get_experiment,
    run_all,
    run_experiment,
)


class TestComparison:
    def test_differences(self):
        comparison = Comparison(metric="x", measured=0.8, paper=1.0)
        assert comparison.absolute_difference == pytest.approx(0.2)
        assert comparison.relative_difference == pytest.approx(0.2)

    def test_differences_with_missing_values(self):
        assert Comparison(metric="x", measured=None, paper=1.0).absolute_difference is None
        assert Comparison(metric="x", measured=0.5, paper=None).relative_difference is None

    def test_format_percentage(self):
        comparison = Comparison(metric="share", measured=0.421, paper=0.4, unit="%")
        text = comparison.format()
        assert "42.1%" in text and "40.0%" in text


class TestExperimentResult:
    def test_add_and_lookup_comparison(self):
        result = ExperimentResult(experiment_id="x", title="X")
        result.add_comparison("metric", 1.0, 2.0)
        assert result.measured("metric") == 1.0
        with pytest.raises(KeyError):
            result.comparison("missing")

    def test_format_rows_and_text(self):
        result = ExperimentResult(experiment_id="x", title="X", rows=[{"a": 1, "b": 0.5}])
        text = result.to_text()
        assert "== x: X ==" in text
        assert "a" in text and "0.500" in text

    def test_format_rows_empty(self):
        assert "(no rows)" in ExperimentResult(experiment_id="x", title="X").format_rows()

    def test_row_limit(self):
        result = ExperimentResult(
            experiment_id="x", title="X", rows=[{"n": i} for i in range(30)]
        )
        assert "more rows" in result.format_rows(limit=5)

    def test_to_dict(self):
        result = ExperimentResult(experiment_id="x", title="X")
        result.add_comparison("m", 1.0, 2.0, unit="%")
        payload = result.to_dict()
        assert payload["experiment_id"] == "x"
        assert payload["comparisons"][0]["paper"] == 2.0


class TestPipelineCache:
    def test_get_pipeline_is_cached(self):
        clear_pipeline_cache()
        first = get_pipeline("tiny", seed=99, campaign_days=0.5)
        second = get_pipeline("tiny", seed=99, campaign_days=0.5)
        assert first is second
        clear_pipeline_cache()
        assert get_pipeline("tiny", seed=99, campaign_days=0.5) is not first
        clear_pipeline_cache()

    def test_pipeline_stages_are_lazy_and_shared(self, tiny_pipeline: ReproPipeline):
        assert tiny_pipeline.dataset is tiny_pipeline.crawl.dataset
        assert tiny_pipeline.labeller.client is tiny_pipeline.perspective


class TestRegistry:
    def test_expected_experiments_present(self):
        expected = {
            "dataset_stats", "figure1", "figure2", "figure3", "figure4", "figure5",
            "figure6", "figure7", "table1", "table2", "table3", "impact", "rejects",
            "collateral", "graph_impact", "solutions",
        }
        assert expected == set(EXPERIMENTS)
        assert expected == set(EXPERIMENT_TITLES)

    def test_unknown_experiment(self, tiny_pipeline):
        with pytest.raises(ValueError):
            get_experiment("figure99")

    def test_run_experiment_by_id(self, tiny_pipeline):
        result = run_experiment("figure1", tiny_pipeline)
        assert result.experiment_id == "figure1"
        assert result.rows


class TestEveryExperimentRuns:
    @pytest.fixture(scope="class")
    def all_results(self, tiny_pipeline):
        return {result.experiment_id: result for result in run_all(tiny_pipeline)}

    def test_all_experiments_produce_results(self, all_results):
        assert set(all_results) == set(EXPERIMENTS)

    def test_all_have_comparisons(self, all_results):
        for result in all_results.values():
            assert result.comparisons, result.experiment_id

    def test_all_render_to_text(self, all_results):
        for result in all_results.values():
            text = result.to_text()
            assert result.experiment_id in text

    def test_figure1_orders_objectage_first(self, all_results):
        assert all_results["figure1"].rows[0]["policy"] == "ObjectAgePolicy"

    def test_figure2_reject_is_top_action(self, all_results):
        assert all_results["figure2"].rows[0]["action"] == "reject"

    def test_table2_rows_cover_thresholds(self, all_results):
        thresholds = [row["threshold"] for row in all_results["table2"].rows]
        assert thresholds == [0.5, 0.6, 0.7, 0.8, 0.9]

    def test_impact_shares_high(self, all_results):
        impact = all_results["impact"]
        assert impact.measured("user_impact_share") > 0.85
        assert impact.measured("post_impact_share") > 0.85

    def test_collateral_dominated_by_innocent_users(self, all_results):
        collateral = all_results["collateral"]
        assert collateral.measured("non_harmful_user_share") > 0.85

    def test_graph_impact_reports_loss(self, all_results):
        assert all_results["graph_impact"].measured("pair_loss_share") >= 0.0

    def test_solutions_reduce_collateral(self, all_results):
        solutions = all_results["solutions"]
        assert solutions.measured("per_user_tagging_collateral_share") <= 0.05
        assert solutions.measured("baseline_collateral_share") > 0.8
