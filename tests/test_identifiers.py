"""Tests for fediverse identifier helpers."""

from __future__ import annotations

import pytest

from repro.fediverse.identifiers import (
    domain_matches,
    handle_domain,
    is_valid_domain,
    make_actor_uri,
    make_handle,
    make_post_uri,
    normalise_domain,
    parse_handle,
)


class TestNormaliseDomain:
    def test_lowercases(self):
        assert normalise_domain("Example.Social") == "example.social"

    def test_strips_scheme_and_slash(self):
        assert normalise_domain("https://example.social/") == "example.social"
        assert normalise_domain("http://example.social") == "example.social"

    def test_strips_whitespace(self):
        assert normalise_domain("  example.social ") == "example.social"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            normalise_domain("   ")

    def test_idempotent(self):
        once = normalise_domain("HTTPS://Foo.Example/")
        assert normalise_domain(once) == once


class TestValidity:
    def test_valid_domain(self):
        assert is_valid_domain("pleroma.example")

    def test_invalid_domain(self):
        assert not is_valid_domain("not a domain")

    def test_single_label_is_invalid(self):
        assert not is_valid_domain("localhost")


class TestHandles:
    def test_make_handle(self):
        assert make_handle("alice", "Alpha.Example") == "alice@alpha.example"

    def test_make_handle_empty_username(self):
        with pytest.raises(ValueError):
            make_handle("", "alpha.example")

    def test_parse_handle(self):
        assert parse_handle("alice@alpha.example") == ("alice", "alpha.example")

    def test_parse_handle_with_at_prefix(self):
        assert parse_handle("@alice@alpha.example") == ("alice", "alpha.example")

    def test_parse_invalid_handle(self):
        with pytest.raises(ValueError):
            parse_handle("not-a-handle")

    def test_handle_domain(self):
        assert handle_domain("bob@beta.example") == "beta.example"

    def test_roundtrip(self):
        handle = make_handle("carol", "gamma.example")
        assert make_handle(*parse_handle(handle)) == handle


class TestUris:
    def test_post_uri(self):
        assert make_post_uri("alpha.example", "42") == "https://alpha.example/objects/42"

    def test_actor_uri(self):
        assert make_actor_uri("alpha.example", "alice") == "https://alpha.example/users/alice"


class TestDomainMatches:
    def test_exact_match(self):
        assert domain_matches("alpha.example", "alpha.example")

    def test_case_insensitive(self):
        assert domain_matches("Alpha.Example", "alpha.example")

    def test_wildcard_matches_subdomain(self):
        assert domain_matches("media.alpha.example", "*.alpha.example")

    def test_wildcard_matches_apex(self):
        assert domain_matches("alpha.example", "*.alpha.example")

    def test_wildcard_does_not_match_other_domain(self):
        assert not domain_matches("beta.example", "*.alpha.example")

    def test_no_partial_suffix_match(self):
        assert not domain_matches("evilalpha.example", "alpha.example")
