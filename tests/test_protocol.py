"""Tests for the protocol-realism subsystem (``repro.protocol``).

Covers the HTTP-signature cost model (deterministic key derivation, the
actor-key cache, the private cost clock, forged-signature rejection at the
delivery engine), hot-post selection, conversation helpers, the
generator's Announce/Like/reply emission (inert by default,
type-homogeneous batches, engagement landing on target instances), the
viral/hellthread scenarios end-to-end under the sharded engine, and the
Epicyon-style user-agent blocking surface down to the recorded
:class:`CrawlFailure` reason.
"""

from __future__ import annotations

import random

import pytest

from repro.activitypub.activities import (
    ActivityType,
    announce_activity,
    create_activity,
    like_activity,
)
from repro.activitypub.actors import Actor
from repro.activitypub.delivery import FederationDelivery
from repro.api.client import APIClient
from repro.api.http import CRAWLER_UA_TOKEN, DEFAULT_USER_AGENT, USER_AGENT_HEADER
from repro.api.server import UA_BLOCKED_REASON, FediverseAPIServer, agent_blocked
from repro.crawler.campaign import CampaignConfig, MeasurementCampaign
from repro.crawler.crawler import INSTANCE_PATH
from repro.fediverse.post import Visibility
from repro.fediverse.registry import FediverseRegistry
from repro.perf import baselines
from repro.protocol.announce import select_hot_posts
from repro.protocol.conversation import (
    CONVERSATION_FIELD,
    conversation_id,
    mention_block,
    reply_content,
)
from repro.protocol.httpsig import (
    SIGNATURE_FIELD,
    ActorKeyCache,
    HttpSignatureVerifier,
    derive_actor_key,
    sign_activity,
)
from repro.shard.engine import federate_sharded
from repro.shard.state import federation_state
from repro.synth.config import SynthConfig
from repro.synth.generator import FediverseGenerator
from repro.synth.scenario import SCENARIOS, scenario_config


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #
def _two_instance_registry() -> tuple[FediverseRegistry, str]:
    """A registry with an origin post ready to engage from a peer."""
    registry = FediverseRegistry()
    origin = registry.create_instance(
        "origin.example", install_default_policies=False
    )
    registry.create_instance("target.example", install_default_policies=False)
    origin.register_user("author")
    post = origin.publish("author", "a very boostable post")
    return registry, post.uri


def _engine_state(config: SynthConfig) -> dict:
    """The batched engine's federation-state snapshot for ``config``."""
    generator = FediverseGenerator(config)
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    delivery = FederationDelivery(prepared.registry, sinks=[])
    stats = prepared.stats
    for batch in work:
        delivered, rejected = delivery.deliver_batch_counted(
            batch.activities, batch.target_domain
        )
        stats.federated_deliveries += delivered
        stats.rejected_deliveries += rejected
    return federation_state(prepared, delivery.stats)


def _naive_state(config: SynthConfig) -> dict:
    """The seed one-activity-at-a-time walk's snapshot for ``config``."""
    generator = FediverseGenerator(config)
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    stats, _ = baselines.naive_federate(prepared.registry, work)
    prepared.stats.federated_deliveries = stats.delivered
    prepared.stats.rejected_deliveries = stats.rejected
    return federation_state(prepared, stats)


MIX = {
    "federation_announce_share": 0.5,
    "federation_announces_per_peer": 2,
    "federation_like_share": 0.4,
    "federation_likes_per_peer": 2,
    "federation_hot_post_count": 6,
    "reply_thread_share": 0.1,
    "reply_thread_max_depth": 8,
}


# --------------------------------------------------------------------- #
# HTTP-signature cost model
# --------------------------------------------------------------------- #
class TestHttpSignatures:
    def test_key_derivation_is_deterministic_per_handle(self):
        assert derive_actor_key("alice@a.example") == derive_actor_key(
            "alice@a.example"
        )
        assert derive_actor_key("alice@a.example") != derive_actor_key(
            "bob@b.example"
        )
        # Fewer rounds produce a different (cheaper) key, so the round
        # count is part of the key identity.
        assert derive_actor_key("alice@a.example", rounds=2) != derive_actor_key(
            "alice@a.example", rounds=3
        )

    def test_sign_verify_roundtrip_and_forgery_rejection(self):
        actor = Actor.from_handle("alice@origin.example")
        activity = announce_activity(
            "https://origin.example/posts/1", actor, published=10.0
        )
        verifier = HttpSignatureVerifier(rounds=4)
        # Unsigned deliveries verify (the generator models cost, not forgery).
        assert verifier.verify(activity) is True
        # A genuine signature verifies.
        activity.extra[SIGNATURE_FIELD] = sign_activity(
            activity, derive_actor_key(actor.handle, rounds=4)
        )
        assert verifier.verify(activity) is True
        # A forged one is rejected and counted.
        activity.extra[SIGNATURE_FIELD] = "00" * 32
        assert verifier.verify(activity) is False
        stats = verifier.stats()
        assert stats.verified == 3
        assert stats.failures == 1

    def test_cost_clock_is_private_and_charges_by_cache_outcome(self):
        actor = Actor.from_handle("alice@origin.example")
        first = like_activity("https://o.example/posts/1", actor, published=1.0)
        second = like_activity("https://o.example/posts/2", actor, published=2.0)

        uncached = HttpSignatureVerifier(rounds=4)
        uncached.verify(first)
        uncached.verify(second)
        # Two derivations plus two verifications.
        assert uncached.stats().simulated_seconds == pytest.approx(
            2 * uncached.derivation_seconds + 2 * uncached.verify_seconds
        )

        cached = HttpSignatureVerifier(ActorKeyCache(rounds=4), rounds=4)
        cached.verify(first)
        cached.verify(second)
        # One derivation amortised over both deliveries.
        assert cached.stats().simulated_seconds == pytest.approx(
            cached.derivation_seconds + 2 * cached.verify_seconds
        )
        assert cached.stats().cache_hits == 1
        assert cached.stats().derivations == 1
        assert cached.stats().hit_rate == pytest.approx(0.5)

    def test_actor_key_cache_fifo_eviction_and_counters(self):
        cache = ActorKeyCache(maxsize=2, rounds=2)
        key_a, was_cached = cache.key_for("a@x.example")
        assert not was_cached and key_a == derive_actor_key("a@x.example", 2)
        assert cache.key_for("a@x.example") == (key_a, True)
        cache.key_for("b@x.example")
        cache.key_for("c@x.example")  # evicts a@x.example (FIFO)
        assert len(cache) == 2
        _, was_cached = cache.key_for("a@x.example")
        assert not was_cached
        assert cache.hits == 1
        assert cache.misses == 4
        assert cache.hit_rate == pytest.approx(0.2)
        with pytest.raises(ValueError):
            ActorKeyCache(maxsize=0)

    def test_delivery_engine_drops_forged_signatures_before_the_mrf(self):
        registry, post_uri = _two_instance_registry()
        actor = Actor.from_handle("booster@origin.example")
        genuine = announce_activity(actor=actor, post_uri=post_uri, published=5.0)
        forged = announce_activity(actor=actor, post_uri=post_uri, published=6.0)
        genuine.extra[SIGNATURE_FIELD] = sign_activity(
            genuine, derive_actor_key(actor.handle, rounds=4)
        )
        forged.extra[SIGNATURE_FIELD] = "ff" * 32

        delivery = FederationDelivery(
            registry, verifier=HttpSignatureVerifier(rounds=4)
        )
        reports = delivery.deliver_batch([genuine, forged], "target.example")
        # The forged delivery never reaches the MRF: one report, not two.
        assert len(reports) == 1
        assert reports[0].accepted
        target = registry.get("target.example")
        assert target.boosts == {post_uri: 1}
        assert delivery.verifier.stats().failures == 1


# --------------------------------------------------------------------- #
# Hot posts and conversations
# --------------------------------------------------------------------- #
class TestAnnounceAndConversation:
    def test_select_hot_posts_is_deterministic_and_public_only(self):
        generator = FediverseGenerator(scenario_config("tiny", seed=17))
        registry = generator.generate().registry
        first = select_hot_posts(registry, random.Random(3), 5)
        second = select_hot_posts(registry, random.Random(3), 5)
        assert first == second
        assert len(first) == 5
        public = {
            post.uri
            for instance in registry.pleroma_instances()
            for post in instance.local_posts()
            if post.visibility is Visibility.PUBLIC
        }
        assert set(first) <= public
        # Count clamps to the candidate pool; zero selects nothing.
        assert len(select_hot_posts(registry, random.Random(3), 10**6)) == len(public)
        assert select_hot_posts(registry, random.Random(3), 0) == []

    def test_conversation_helpers(self):
        registry = FediverseRegistry()
        instance = registry.create_instance(
            "thread.example", install_default_policies=False
        )
        instance.register_user("root")
        root = instance.publish("root", "thread root")
        assert conversation_id(root) == root.uri
        assert mention_block([]) == ""
        block = mention_block(["a@x.example", "b@y.example"])
        assert block == "@a@x.example @b@y.example"
        assert reply_content(["a@x.example"], "hi") == "@a@x.example hi"
        assert reply_content([], "hi") == "hi"
        assert isinstance(CONVERSATION_FIELD, str)


# --------------------------------------------------------------------- #
# Generator emission
# --------------------------------------------------------------------- #
class TestActivityMixGeneration:
    def test_defaults_emit_no_engagement_and_no_hot_pool(self):
        generator = FediverseGenerator(scenario_config("tiny", seed=11))
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        types = {
            activity.activity_type for batch in work for activity in batch.activities
        }
        assert ActivityType.ANNOUNCE not in types
        assert ActivityType.LIKE not in types
        assert prepared.ground_truth.hot_post_uris == []

    def test_mix_batches_are_type_homogeneous_and_sample_the_hot_pool(self):
        generator = FediverseGenerator(scenario_config("tiny", seed=11, **MIX))
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        hot = set(prepared.ground_truth.hot_post_uris)
        assert 0 < len(hot) <= MIX["federation_hot_post_count"]
        engagement_batches = 0
        for batch in work:
            types = {a.activity_type for a in batch.activities}
            if types & {ActivityType.ANNOUNCE, ActivityType.LIKE}:
                # Boost/favourite batches ship type-homogeneous, which is
                # what lets the pipeline pick a per-(origin, type) program.
                assert len(types) == 1
                engagement_batches += 1
                assert all(a.obj in hot for a in batch.activities)
        assert engagement_batches > 0

    def test_engagement_lands_on_target_instances(self):
        config = scenario_config("tiny", seed=11, **MIX)
        state = _engine_state(config)
        generator = FediverseGenerator(config)
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        delivery = FederationDelivery(prepared.registry, sinks=[])
        for batch in work:
            delivery.deliver_batch_counted(batch.activities, batch.target_domain)
        boosts = sum(
            sum(instance.boosts.values())
            for instance in prepared.registry.instances()
        )
        favourites = sum(
            sum(instance.favourites.values())
            for instance in prepared.registry.instances()
        )
        assert boosts > 0
        assert favourites > 0
        assert state  # the snapshot captured something

    def test_config_validation_rejects_bad_mix_knobs(self):
        with pytest.raises(ValueError):
            SynthConfig(federation_announce_share=1.5)
        with pytest.raises(ValueError):
            SynthConfig(federation_announces_per_peer=0)
        with pytest.raises(ValueError):
            SynthConfig(federation_like_share=-0.1)
        with pytest.raises(ValueError):
            SynthConfig(federation_likes_per_peer=0)
        with pytest.raises(ValueError):
            SynthConfig(federation_hot_post_count=0)
        with pytest.raises(ValueError):
            SynthConfig(reply_thread_share=2.0)
        with pytest.raises(ValueError):
            SynthConfig(reply_thread_max_depth=-1)
        with pytest.raises(ValueError):
            SynthConfig(ua_blocking_share=1.01)


# --------------------------------------------------------------------- #
# Engine equivalence on the activity mix
# --------------------------------------------------------------------- #
class TestMixEquivalence:
    def test_create_only_config_matches_the_seed_walk(self):
        config = scenario_config("tiny", seed=23)
        assert _engine_state(config) == _naive_state(config)

    def test_full_mix_matches_seed_walk_and_sharded_merge(self):
        config = scenario_config("tiny", seed=23, **MIX)
        reference = _engine_state(config)
        assert _naive_state(config) == reference
        generator = FediverseGenerator(config)
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        result = federate_sharded(prepared, work, 2)
        assert result.state == reference

    @pytest.mark.parametrize("scenario", ["viral", "hellthread"])
    def test_scenarios_complete_under_the_sharded_engine(self, scenario):
        # Scaled-down twins of the shipped scenarios (the bench runs them
        # at full scale); the mix knobs themselves come from the scenario.
        overrides = {"n_pleroma_instances": 20, "campaign_days": 2.0}
        config = scenario_config(scenario, seed=7, **overrides)
        generator = FediverseGenerator(config)
        reference = _engine_state(config)
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        result = federate_sharded(prepared, work, 2)
        assert result.state == reference
        assert result.delivered > 0

    def test_shipped_scenarios_declare_the_mix(self):
        assert SCENARIOS["viral"]["federation_announce_share"] > 0
        assert SCENARIOS["viral"]["ua_blocking_share"] > 0
        assert SCENARIOS["hellthread"]["reply_thread_share"] > 0
        assert SCENARIOS["hellthread"]["reply_thread_max_depth"] > 1


# --------------------------------------------------------------------- #
# User-agent blocking
# --------------------------------------------------------------------- #
class TestUserAgentBlocking:
    def _registry(self):
        registry = FediverseRegistry()
        instance = registry.create_instance(
            "walled.example",
            install_default_policies=False,
            blocked_user_agents=(CRAWLER_UA_TOKEN,),
        )
        instance.register_user("hermit")
        instance.publish("hermit", "keep out")
        open_instance = registry.create_instance(
            "open.example", install_default_policies=False
        )
        open_instance.register_user("greeter")
        return registry

    def test_agent_blocked_matching_semantics(self):
        registry = self._registry()
        instance = registry.get("walled.example")
        assert agent_blocked(instance, DEFAULT_USER_AGENT)
        assert agent_blocked(instance, CRAWLER_UA_TOKEN.upper() + "/9")
        # Internal callers present no UA and are never blocked.
        assert not agent_blocked(instance, "")
        assert not agent_blocked(instance, "Mozilla/5.0")
        assert not agent_blocked(registry.get("open.example"), DEFAULT_USER_AGENT)

    def test_all_transport_entry_points_refuse_the_crawler_ua(self):
        registry = self._registry()
        server = FediverseAPIServer(registry)

        response = server.get(
            "walled.example", INSTANCE_PATH, user_agent=DEFAULT_USER_AGENT
        )
        assert int(response.status) == 403
        assert response.body["error"] == UA_BLOCKED_REASON

        batched = server.handle_batch(
            "walled.example", [INSTANCE_PATH], user_agent=DEFAULT_USER_AGENT
        )[0]
        assert int(batched.status) == 403

        meta = server.metadata_round(
            ["walled.example", "open.example"], user_agent=DEFAULT_USER_AGENT
        )
        assert int(meta[0].status) == 403
        assert meta[1].ok

        stream = server.stream_timeline(
            "walled.example", user_agent=DEFAULT_USER_AGENT
        )
        assert int(stream.status) == 403
        assert stream.reason == UA_BLOCKED_REASON

        # UA-less access (internal bookkeeping paths) stays open.
        assert server.get("walled.example", INSTANCE_PATH).ok
        assert server.handle_batch("walled.example", [INSTANCE_PATH])[0].ok

    def test_client_presents_the_crawler_ua_by_default(self):
        registry = self._registry()
        client = APIClient(FediverseAPIServer(registry))
        assert client.user_agent == DEFAULT_USER_AGENT
        response = client.get("walled.example", INSTANCE_PATH)
        assert int(response.status) == 403
        # An anonymous client is indistinguishable from internal callers.
        anonymous = APIClient(FediverseAPIServer(registry), user_agent="")
        assert anonymous.get("walled.example", INSTANCE_PATH).ok

    def test_campaign_records_the_distinct_failure_reason(self):
        config = scenario_config("tiny", seed=19, ua_blocking_share=0.5)
        registry = FediverseGenerator(config).generate().registry
        blocked_domains = {
            instance.domain
            for instance in registry.instances()
            if instance.blocked_user_agents
        }
        assert blocked_domains
        campaign = MeasurementCampaign(registry, CampaignConfig(duration_days=1.0))
        result = campaign.run()
        ua_failures = [
            failure
            for failure in result.failures
            if UA_BLOCKED_REASON in failure.reason
        ]
        assert ua_failures
        assert all(failure.status_code == 403 for failure in ua_failures)
        assert {failure.domain for failure in ua_failures} <= blocked_domains

    def test_request_header_path_is_also_blocked(self):
        from repro.api.http import HTTPRequest

        registry = self._registry()
        server = FediverseAPIServer(registry)
        request = HTTPRequest.from_url(
            "walled.example",
            INSTANCE_PATH,
            headers={USER_AGENT_HEADER: DEFAULT_USER_AGENT},
        )
        response = server.handle(request)
        assert int(response.status) == 403
        assert response.body["error"] == UA_BLOCKED_REASON
