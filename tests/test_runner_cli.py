"""Tests for the ``pleroma-repro`` command-line runner."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.scenario == "small"
        assert args.experiment == "all"
        assert args.campaign_days == 2.0

    def test_scenario_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scenario", "galactic"])

    def test_experiment_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--experiment", "figure42"])


class TestMain:
    def test_single_experiment_prints_report(self, capsys):
        exit_code = main(
            [
                "--scenario", "tiny",
                "--seed", "7",
                "--campaign-days", "1",
                "--experiment", "figure1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "figure1" in captured.out
        assert "ObjectAgePolicy" in captured.out
        assert "paper vs measured" in captured.out

    def test_json_output(self, tmp_path, capsys):
        output = tmp_path / "results.json"
        exit_code = main(
            [
                "--scenario", "tiny",
                "--seed", "7",
                "--campaign-days", "1",
                "--experiment", "table2",
                "--json", str(output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload[0]["experiment_id"] == "table2"
        assert len(payload[0]["rows"]) == 5
