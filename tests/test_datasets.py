"""Tests for the dataset schema, store and export."""

from __future__ import annotations

import json

import pytest

from repro.datasets.export import (
    dataset_from_dict,
    dataset_from_json,
    dataset_to_dict,
    dataset_to_json,
    load_dataset,
    save_dataset,
    write_csv_tables,
)
from repro.datasets.schema import (
    InstanceRecord,
    PolicySettingRecord,
    PostRecord,
    RejectEdge,
    UserRecord,
)
from repro.datasets.store import Dataset


@pytest.fixture
def dataset() -> Dataset:
    ds = Dataset()
    ds.add_instance(
        InstanceRecord(
            domain="alpha.example",
            software="pleroma",
            user_count=10,
            status_count=100,
            enabled_policies=("SimplePolicy", "ObjectAgePolicy"),
            peers=("beta.example",),
            timeline_reachable=True,
        )
    )
    ds.add_instance(
        InstanceRecord(domain="bad.example", software="pleroma", user_count=50, status_count=900)
    )
    ds.add_instance(InstanceRecord(domain="down.example", software="pleroma", reachable=False, status_code=502))
    ds.add_instance(InstanceRecord(domain="masto.example", software="mastodon", user_count=5))
    ds.add_policy_setting(
        PolicySettingRecord(
            domain="alpha.example",
            policy="SimplePolicy",
            config={"reject": ["bad.example"], "media_removal": ["pics.example"]},
        )
    )
    ds.add_policy_setting(PolicySettingRecord(domain="alpha.example", policy="ObjectAgePolicy"))
    ds.add_reject_edge(RejectEdge("alpha.example", "bad.example", "reject"))
    ds.add_reject_edge(RejectEdge("alpha.example", "pics.example", "media_removal"))
    ds.add_user(UserRecord(handle="troll@bad.example", domain="bad.example", post_count=2))
    ds.add_post(
        PostRecord(
            post_id="b1",
            author="troll@bad.example",
            domain="bad.example",
            content="you idiot",
            created_at=1.0,
            collected_from="bad.example",
        )
    )
    ds.add_post(
        PostRecord(
            post_id="b2",
            author="troll@bad.example",
            domain="bad.example",
            content="nice day",
            created_at=2.0,
            collected_from="alpha.example",
        )
    )
    return ds


class TestSchema:
    def test_instance_record_normalises_domain(self):
        record = InstanceRecord(domain="Alpha.Example/", software="pleroma")
        assert record.domain == "alpha.example"
        assert record.is_pleroma

    def test_instance_record_roundtrip(self):
        record = InstanceRecord(
            domain="a.example", software="pleroma", enabled_policies=("NoOpPolicy",)
        )
        assert InstanceRecord.from_dict(record.to_dict()) == record

    def test_policy_setting_simple_targets(self):
        record = PolicySettingRecord(
            domain="a.example", policy="SimplePolicy", config={"reject": ["b.example"]}
        )
        assert record.simple_targets("reject") == ("b.example",)
        assert record.simple_targets("media_removal") == ()

    def test_reject_edge_roundtrip(self):
        edge = RejectEdge("a.example", "b.example", "reject")
        assert RejectEdge.from_dict(edge.to_dict()) == edge

    def test_post_record_is_local(self):
        local = PostRecord(
            post_id="1", author="a@a.example", domain="a.example",
            content="x", created_at=0.0, collected_from="a.example",
        )
        remote_copy = PostRecord(
            post_id="1", author="a@a.example", domain="a.example",
            content="x", created_at=0.0, collected_from="b.example",
        )
        assert local.is_local and not remote_copy.is_local

    def test_user_record_roundtrip(self):
        record = UserRecord(handle="a@a.example", domain="a.example", post_count=3)
        assert UserRecord.from_dict(record.to_dict()) == record


class TestStore:
    def test_software_partitions(self, dataset):
        assert len(dataset.pleroma_instances()) == 3
        assert len(dataset.non_pleroma_instances()) == 1
        assert len(dataset.reachable_pleroma_instances()) == 2

    def test_unreachable_breakdown(self, dataset):
        assert dataset.unreachable_status_breakdown() == {502: 1}

    def test_policy_lookups(self, dataset):
        assert dataset.instances_with_policy("SimplePolicy") == ["alpha.example"]
        assert "ObjectAgePolicy" in dataset.policy_names()
        assert len(dataset.simple_policy_settings()) == 1

    def test_edge_lookups(self, dataset):
        assert dataset.rejects_received("bad.example") == 1
        assert dataset.rejects_applied("alpha.example") == 1
        assert dataset.rejected_domains() == ["bad.example"]
        assert set(dataset.moderated_domains()) == {"bad.example", "pics.example"}

    def test_duplicate_edges_ignored(self, dataset):
        before = len(dataset.reject_edges)
        dataset.add_reject_edge(RejectEdge("alpha.example", "bad.example", "reject"))
        assert len(dataset.reject_edges) == before

    def test_duplicate_posts_ignored(self, dataset):
        before = len(dataset.posts)
        dataset.add_post(
            PostRecord(
                post_id="b1", author="troll@bad.example", domain="bad.example",
                content="you idiot", created_at=1.0,
            )
        )
        assert len(dataset.posts) == before

    def test_post_lookups(self, dataset):
        assert len(dataset.posts_by("troll@bad.example")) == 2
        assert len(dataset.posts_from("bad.example")) == 2
        assert len(dataset.local_posts()) == 1
        assert len(dataset.users_with_posts()) == 1

    def test_stats(self, dataset):
        stats = dataset.stats()
        assert stats["instances_total"] == 4
        assert stats["pleroma_instances"] == 3
        assert stats["crawlable_pleroma_instances"] == 2
        assert stats["reject_edges"] == 1
        assert stats["moderation_edges"] == 2


class TestExport:
    def test_json_roundtrip(self, dataset):
        rebuilt = dataset_from_json(dataset_to_json(dataset))
        assert rebuilt.stats() == dataset.stats()
        assert rebuilt.rejected_domains() == dataset.rejected_domains()
        assert {u.handle for u in rebuilt.users.values()} == {
            u.handle for u in dataset.users.values()
        }

    def test_dict_roundtrip_preserves_policies(self, dataset):
        rebuilt = dataset_from_dict(dataset_to_dict(dataset))
        assert rebuilt.policy_settings_for("alpha.example")[0].config["reject"] == [
            "bad.example"
        ]

    def test_unsupported_schema_version(self, dataset):
        payload = dataset_to_dict(dataset)
        payload["schema_version"] = 99
        with pytest.raises(ValueError):
            dataset_from_dict(payload)

    def test_save_and_load(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "crawl.json", indent=2)
        assert path.exists()
        assert load_dataset(path).stats() == dataset.stats()

    def test_csv_export(self, dataset, tmp_path):
        written = write_csv_tables(dataset, tmp_path)
        assert set(written) == {"instances", "policy_settings", "reject_edges", "users", "posts"}
        instances_csv = written["instances"].read_text(encoding="utf-8")
        assert "alpha.example" in instances_csv
        policy_csv = written["policy_settings"].read_text(encoding="utf-8")
        assert "SimplePolicy" in policy_csv
        assert "reject" in policy_csv and "bad.example" in policy_csv
