"""Structural tests for the rows every experiment emits.

EXPERIMENTS.md and the CLI render these rows directly, so their columns are
part of the public contract; these tests pin the structure on a generated
dataset without asserting specific values.
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment
from repro.mrf.simple import SimplePolicyAction


class TestRowStructure:
    @pytest.fixture(scope="class")
    def results(self, tiny_pipeline):
        ids = (
            "dataset_stats", "figure1", "figure2", "figure3", "figure4", "figure5",
            "figure6", "figure7", "table1", "table2", "table3", "impact", "rejects",
            "collateral", "graph_impact", "solutions",
        )
        return {i: run_experiment(i, tiny_pipeline) for i in ids}

    def test_dataset_stats_rows_are_metric_value_pairs(self, results):
        for row in results["dataset_stats"].rows:
            assert set(row) == {"metric", "value"}

    def test_figure1_rows_have_policy_columns(self, results):
        expected = {"policy", "instances", "instance_share", "users", "user_share", "builtin"}
        for row in results["figure1"].rows:
            assert expected <= set(row)
            assert 0.0 <= row["instance_share"] <= 1.0
            assert 0.0 <= row["user_share"] <= 1.0

    def test_figure7_covers_all_observed_policies(self, results, tiny_pipeline):
        observed = set(tiny_pipeline.dataset.policy_names())
        listed = {row["policy"] for row in results["figure7"].rows}
        assert observed == listed

    def test_figure2_and_3_cover_all_ten_actions(self, results):
        for experiment_id in ("figure2", "figure3"):
            actions = {row["action"] for row in results[experiment_id].rows}
            assert actions == {action.value for action in SimplePolicyAction}

    def test_figure3_event_shares_sum_to_one(self, results):
        total = sum(row["event_share"] for row in results["figure3"].rows)
        assert total == pytest.approx(1.0)

    def test_figure4_rows_sorted_by_rejects(self, results):
        rejects = [row["rejects"] for row in results["figure4"].rows]
        assert rejects == sorted(rejects, reverse=True)

    def test_figure5_rows_sorted_by_rejects(self, results):
        rejects = [row["rejects"] for row in results["figure5"].rows]
        assert rejects == sorted(rejects, reverse=True)

    def test_figure6_counts_are_consistent(self, results):
        for row in results["figure6"].rows:
            assert row["harmful"] + row["non_harmful"] >= max(
                row["toxic"], row["profane"], row["sexually_explicit"]
            )

    def test_table1_has_at_most_five_rows(self, results):
        assert 1 <= len(results["table1"].rows) <= 5
        for row in results["table1"].rows:
            assert {"domain", "rejects", "users", "posts"} <= set(row)

    def test_table2_shares_within_unit_interval(self, results):
        for row in results["table2"].rows:
            assert 0.0 <= row["non_harmful_share"] <= 1.0
            assert 0.0 <= row["paper_non_harmful_share"] <= 1.0

    def test_table3_lists_every_paper_policy(self, results):
        policies = {row["policy"] for row in results["table3"].rows}
        assert "ObjectAgePolicy" in policies and "DropPolicy" in policies
        assert len(results["table3"].rows) == 21

    def test_impact_and_rejects_rows_are_metric_value_pairs(self, results):
        for experiment_id in ("impact", "rejects", "collateral", "graph_impact"):
            for row in results[experiment_id].rows:
                assert set(row) == {"metric", "value"}

    def test_solutions_rows_cover_all_strategies(self, results):
        strategies = {row["strategy"] for row in results["solutions"].rows}
        assert strategies == {
            "instance_reject",
            "media_removal",
            "nsfw_tagging",
            "curated_blocklist",
            "per_user_tagging",
            "repeat_offender_escalation",
        }
        for row in results["solutions"].rows:
            assert 0.0 <= row["collateral_share"] <= 1.0
            assert 0.0 <= row["harmful_coverage"] <= 1.0


class TestPolicyDescribeContracts:
    """Every policy's describe()/config() must serialise cleanly."""

    def test_all_constructible_policies_describe(self):
        import json

        from repro.mrf.registry import _FACTORIES, create_policy

        for name in _FACTORIES:
            policy = create_policy(name)
            description = policy.describe()
            assert description["name"] == name
            json.dumps(description)  # must be JSON-serialisable
