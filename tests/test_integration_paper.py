"""Integration tests: the measurement recovers the paper's headline results.

These tests run the full pipeline (synthetic fediverse → crawl → analysis)
at the calibration ("small") scale and check that the measured values land
in generous bands around the paper's reported numbers.  The bands are loose
on purpose: the goal is the *shape* of every result (who wins, by roughly
what factor), not the exact decimals.
"""

from __future__ import annotations

import pytest

from repro.experiments import paper_values
from repro.experiments.pipeline import ReproPipeline
from repro.experiments.registry import run_experiment


class TestSection3DatasetShape:
    def test_pleroma_share_of_discovered_instances(self, small_pipeline):
        result = run_experiment("dataset_stats", small_pipeline)
        assert result.measured("pleroma_share_of_instances") == pytest.approx(
            paper_values.PLEROMA_INSTANCES / paper_values.TOTAL_INSTANCES, abs=0.05
        )

    def test_crawlable_share(self, small_pipeline):
        result = run_experiment("dataset_stats", small_pipeline)
        assert result.measured("crawlable_pleroma_share") == pytest.approx(0.846, abs=0.07)

    def test_policy_exposure(self, small_pipeline):
        result = run_experiment("dataset_stats", small_pipeline)
        assert result.measured("policy_exposure_share") == pytest.approx(0.919, abs=0.06)


class TestSection41PolicyShape:
    def test_objectage_is_most_enabled(self, small_pipeline):
        result = run_experiment("figure1", small_pipeline)
        assert result.rows[0]["policy"] == "ObjectAgePolicy"
        assert result.measured("rank_of_ObjectAgePolicy") == 0

    def test_top_policy_adoption_shares(self, small_pipeline):
        result = run_experiment("figure1", small_pipeline)
        assert result.measured("ObjectAgePolicy_instance_share") == pytest.approx(0.669, abs=0.1)
        assert result.measured("TagPolicy_instance_share") == pytest.approx(0.33, abs=0.1)
        assert result.measured("SimplePolicy_instance_share") == pytest.approx(0.254, abs=0.1)

    def test_users_and_posts_overwhelmingly_impacted(self, small_pipeline):
        result = run_experiment("impact", small_pipeline)
        assert result.measured("user_impact_share") > 0.9
        assert result.measured("post_impact_share") > 0.9

    def test_reject_dominates(self, small_pipeline):
        result = run_experiment("impact", small_pipeline)
        assert result.measured("user_reject_share") == pytest.approx(0.862, abs=0.08)
        assert result.measured("post_reject_share") == pytest.approx(0.885, abs=0.10)
        assert result.measured("reject_event_share") > 0.5
        assert result.measured("rejected_of_moderated_share") > 0.6

    def test_simplepolicy_action_shape(self, small_pipeline):
        result = run_experiment("figure3", small_pipeline)
        assert result.measured("simplepolicy_reject_adoption") == pytest.approx(0.73, abs=0.2)
        assert result.measured("reject_applied_by_most_instances") == 1.0


class TestSection42RejectShape:
    def test_rejected_pleroma_share_and_user_concentration(self, small_pipeline):
        result = run_experiment("figure5", small_pipeline)
        assert result.measured("rejected_pleroma_share") == pytest.approx(0.155, abs=0.06)
        assert result.measured("rejected_user_share") == pytest.approx(0.862, abs=0.08)
        assert result.measured("rejected_post_share") == pytest.approx(0.887, abs=0.10)

    def test_most_rejected_targets_are_non_pleroma(self, small_pipeline):
        result = run_experiment("rejects", small_pipeline)
        assert result.measured("non_pleroma_share_of_rejected") > 0.5

    def test_posts_vs_rejects_correlation_positive(self, small_pipeline):
        result = run_experiment("rejects", small_pipeline)
        assert result.measured("spearman_posts_vs_rejects") > 0.0

    def test_rejected_instances_do_not_retaliate(self, small_pipeline):
        result = run_experiment("rejects", small_pipeline)
        assert result.measured("spearman_retaliation") < 0.2

    def test_annotation_mix(self, small_pipeline):
        result = run_experiment("rejects", small_pipeline)
        assert result.measured("annotated_harmful_category_share") == pytest.approx(
            0.906, abs=0.15
        )

    def test_elite_instances_dominate_table1(self, small_pipeline):
        result = run_experiment("table1", small_pipeline)
        assert result.measured("elite_instances_in_top5") >= 3
        assert result.measured("most_rejected_is_freespeech") == 1.0

    def test_figure4_score_band(self, small_pipeline):
        result = run_experiment("figure4", small_pipeline)
        assert 0.02 < result.measured("mean_toxicity") < 0.5


class TestSection5CollateralShape:
    def test_harmful_user_share(self, small_pipeline):
        result = run_experiment("collateral", small_pipeline)
        assert result.measured("harmful_user_share") == pytest.approx(0.042, abs=0.03)
        assert result.measured("non_harmful_user_share") == pytest.approx(0.958, abs=0.03)

    def test_harmful_post_ratio(self, small_pipeline):
        result = run_experiment("collateral", small_pipeline)
        ratio = result.measured("harmful_post_ratio")
        assert 1 / 20 < ratio < 1 / 5

    def test_attribute_ordering_matches_paper(self, small_pipeline):
        result = run_experiment("collateral", small_pipeline)
        toxicity = result.measured("harmful_toxicity_share")
        profanity = result.measured("harmful_profanity_share")
        sexual = result.measured("harmful_sexually_explicit_share")
        assert toxicity > sexual
        assert toxicity == pytest.approx(0.697, abs=0.2)
        assert profanity == pytest.approx(0.576, abs=0.2)
        # The sexually-explicit share is the noisiest of the three: it is
        # carried almost entirely by the adult-content instances, so a wider
        # band is accepted (the ordering above is the real shape check).
        assert sexual == pytest.approx(0.439, abs=0.3)

    def test_table2_sweep_tracks_paper(self, small_pipeline):
        result = run_experiment("table2", small_pipeline)
        for threshold, paper in paper_values.TABLE2_NON_HARMFUL_BY_THRESHOLD.items():
            assert result.measured(f"non_harmful_at_{threshold}") == pytest.approx(
                paper, abs=0.05
            )
        assert result.measured("sweep_is_monotone") == 1.0

    def test_figure6_bars_dominated_by_innocent_users(self, small_pipeline):
        result = run_experiment("figure6", small_pipeline)
        assert result.measured("instances_dominated_by_non_harmful") > 0.9


class TestSections6And7:
    def test_rejects_sever_reachability(self, small_pipeline):
        result = run_experiment("graph_impact", small_pipeline)
        assert result.measured("pair_loss_share") > 0.0
        assert result.measured("rejects_fragment_graph") == 1.0

    def test_per_user_moderation_removes_collateral(self, small_pipeline):
        result = run_experiment("solutions", small_pipeline)
        assert result.measured("baseline_collateral_share") > 0.9
        assert result.measured("per_user_tagging_collateral_share") <= 0.02
        assert result.measured("per_user_tagging_harmful_coverage") == pytest.approx(1.0, abs=0.05)
        assert result.measured("collateral_reduction_vs_baseline") > 0.9


class TestScaleInvariance:
    """Headline percentages should be stable across generator scales."""

    @pytest.fixture(scope="class")
    def medium_sample(self):
        pipeline = ReproPipeline(
            scenario="tiny", seed=1234, campaign_days=1.0
        )
        return pipeline

    def test_collateral_share_stable_across_seeds(self, small_pipeline, medium_sample):
        small = run_experiment("collateral", small_pipeline).measured("non_harmful_user_share")
        other = run_experiment("collateral", medium_sample).measured("non_harmful_user_share")
        assert abs(small - other) < 0.08

    def test_rejected_user_share_stable_across_seeds(self, small_pipeline, medium_sample):
        small = run_experiment("figure5", small_pipeline).measured("rejected_user_share")
        other = run_experiment("figure5", medium_sample).measured("rejected_user_share")
        assert abs(small - other) < 0.15
