"""Tests for posts, media attachments and users."""

from __future__ import annotations

import pytest

from repro.fediverse.post import MediaAttachment, Post, Visibility
from repro.fediverse.user import User


def make_post(**overrides) -> Post:
    defaults = dict(
        post_id="p1",
        author="alice@alpha.example",
        domain="alpha.example",
        content="hello world",
        created_at=10.0,
    )
    defaults.update(overrides)
    return Post(**defaults)


class TestPost:
    def test_uri_uses_origin_domain(self):
        assert make_post().uri == "https://alpha.example/objects/p1"

    def test_domain_normalised(self):
        post = make_post(domain="Alpha.Example")
        assert post.domain == "alpha.example"

    def test_mentions_extracted(self):
        post = make_post(content="hey @bob@beta.example and @carol@gamma.example")
        assert post.mentions == ("bob@beta.example", "carol@gamma.example")
        assert post.mention_count == 2

    def test_mention_count_deduplicates(self):
        post = make_post(content="@bob@beta.example @bob@beta.example")
        assert post.mention_count == 1

    def test_hashtags_lowercased(self):
        post = make_post(content="great day #Caturday #FOSS")
        assert post.hashtags == ("caturday", "foss")

    def test_links_extracted(self):
        post = make_post(content="see https://example.test/page for details")
        assert post.links == ("https://example.test/page",)

    def test_has_media(self):
        attachment = MediaAttachment(url="https://alpha.example/m/1.png")
        assert make_post(attachments=(attachment,)).has_media
        assert not make_post().has_media

    def test_visibility_public_flag(self):
        assert make_post().is_public
        assert not make_post(visibility=Visibility.DIRECT).is_public
        assert not make_post(visibility=Visibility.FOLLOWERS_ONLY).is_public

    def test_age(self):
        post = make_post(created_at=100.0)
        assert post.age(250.0) == 150.0
        assert post.age(50.0) == 0.0

    def test_with_changes_does_not_mutate_original(self):
        post = make_post()
        changed = post.with_changes(sensitive=True)
        assert changed.sensitive and not post.sensitive
        assert changed.post_id == post.post_id

    def test_to_dict_contains_api_fields(self):
        data = make_post().to_dict()
        assert data["id"] == "p1"
        assert data["account"] == "alice@alpha.example"
        assert data["visibility"] == "public"
        assert "media_attachments" in data


class TestUser:
    def test_handle_and_actor_uri(self):
        user = User(username="alice", domain="Alpha.Example")
        assert user.handle == "alice@alpha.example"
        assert user.actor_uri == "https://alpha.example/users/alice"

    def test_display_name_defaults_to_username(self):
        assert User(username="alice", domain="alpha.example").display_name == "alice"

    def test_follow_bookkeeping(self):
        user = User(username="alice", domain="alpha.example")
        user.add_follower("bob@beta.example")
        user.add_following("carol@gamma.example")
        assert user.follower_count == 1
        assert user.following_count == 1

    def test_cannot_follow_self(self):
        user = User(username="alice", domain="alpha.example")
        with pytest.raises(ValueError):
            user.add_follower("alice@alpha.example")
        with pytest.raises(ValueError):
            user.add_following("alice@alpha.example")

    def test_account_age(self):
        user = User(username="alice", domain="alpha.example", created_at=100.0)
        assert user.account_age(400.0) == 300.0

    def test_to_dict(self):
        user = User(username="alice", domain="alpha.example", bot=True)
        data = user.to_dict()
        assert data["acct"] == "alice@alpha.example"
        assert data["bot"] is True
        assert data["statuses_count"] == 0
