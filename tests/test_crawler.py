"""Tests for the crawler: directory, snapshots, timelines, campaign."""

from __future__ import annotations

import pytest

from repro.api.client import APIClient
from repro.api.server import FediverseAPIServer
from repro.crawler.builder import build_dataset
from repro.crawler.campaign import CampaignConfig, CrawlResult, MeasurementCampaign
from repro.crawler.crawler import InstanceCrawler, TimelineCrawler
from repro.crawler.directory import InstanceDirectory
from repro.crawler.snapshots import CrawlFailure, InstanceSnapshot
from repro.datasets.store import Dataset
from repro.fediverse.instance import InstanceAvailability
from repro.fediverse.registry import FediverseRegistry
from repro.fediverse.software import SoftwareKind
from repro.mrf.simple import SimplePolicy


@pytest.fixture
def crawl_target() -> FediverseRegistry:
    """A small hand-built fediverse with one rejecting and one rejected instance."""
    registry = FediverseRegistry()
    moderator = registry.create_instance("moderator.example", install_default_policies=True)
    moderator.register_user("admin")
    moderator.publish("admin", "welcome to our instance", created_at=1.0)
    moderator.mrf.add_policy(
        SimplePolicy(reject=["rejected.example"], media_removal=["pics.example"])
    )
    rejected = registry.create_instance("rejected.example", install_default_policies=False)
    rejected.register_user("troll")
    for index in range(5):
        rejected.publish("troll", f"post {index}", created_at=float(index))
    registry.create_instance(
        "masto.example", software=SoftwareKind.MASTODON, install_default_policies=False
    )
    registry.create_instance(
        "down.example", install_default_policies=False
    )
    registry.set_availability("down.example", 404, "gone away")
    registry.federate("moderator.example", "rejected.example")
    return registry


@pytest.fixture
def client(crawl_target) -> APIClient:
    return APIClient(FediverseAPIServer(crawl_target))


class TestDirectory:
    def test_full_coverage_lists_all_pleroma(self, crawl_target):
        directory = InstanceDirectory(crawl_target, coverage=1.0)
        assert set(directory.pleroma_instances()) == {
            "moderator.example",
            "rejected.example",
            "down.example",
        }
        assert "masto.example" not in directory

    def test_partial_coverage(self, crawl_target):
        directory = InstanceDirectory(crawl_target, coverage=0.5, seed=1)
        assert 0 <= len(directory) <= 3

    def test_invalid_coverage(self, crawl_target):
        with pytest.raises(ValueError):
            InstanceDirectory(crawl_target, coverage=0.0)

    def test_listing_is_stable(self, crawl_target):
        directory = InstanceDirectory(crawl_target, coverage=0.7, seed=2)
        assert directory.pleroma_instances() == directory.pleroma_instances()


class TestInstanceCrawler:
    def test_snapshot_success(self, client):
        crawler = InstanceCrawler(client)
        snapshot = crawler.snapshot("moderator.example", now=10.0)
        assert snapshot is not None
        assert snapshot.is_pleroma
        assert snapshot.user_count == 1
        assert "SimplePolicy" in snapshot.enabled_policies
        assert snapshot.mrf_simple["reject"] == ["rejected.example"]
        assert "rejected.example" in snapshot.peers

    def test_snapshot_failure_recorded(self, client):
        crawler = InstanceCrawler(client)
        assert crawler.snapshot("down.example", now=10.0) is None
        assert crawler.failures[0].status_code == 404

    def test_snapshot_edges(self, client):
        crawler = InstanceCrawler(client)
        snapshot = crawler.snapshot("moderator.example", now=10.0)
        edges = snapshot.simple_policy_edges()
        assert ("moderator.example", "rejected.example", "reject") in edges
        assert ("moderator.example", "pics.example", "media_removal") in edges

    def test_mastodon_snapshot_has_no_policies(self, client):
        crawler = InstanceCrawler(client)
        snapshot = crawler.snapshot("masto.example", now=10.0)
        assert snapshot.software == "mastodon"
        assert not snapshot.policies_exposed

    def test_pleroma_version_parsing(self, client):
        from repro.crawler.crawler import _parse_pleroma_version

        pleroma = _parse_pleroma_version({"version": "2.7.2 (compatible; Pleroma 2.2.2)"})
        assert pleroma == "2.2.2"
        # Non-Pleroma software has no "Pleroma " marker: the raw compatibility
        # string must not leak through as a bogus Pleroma version.
        assert _parse_pleroma_version({"version": "3.3.0"}) == ""
        assert _parse_pleroma_version({}) == ""

    def test_mastodon_snapshot_has_no_pleroma_version(self, client):
        crawler = InstanceCrawler(client)
        snapshot = crawler.snapshot("masto.example", now=10.0)
        assert snapshot.version == ""


class TestTimelineCrawler:
    def test_collects_all_posts(self, client):
        crawler = TimelineCrawler(client, page_size=2)
        collection = crawler.collect("rejected.example", now=10.0)
        assert collection.reachable
        assert collection.post_count == 5
        assert collection.pages_fetched >= 3

    def test_max_posts_cap(self, client):
        crawler = TimelineCrawler(client, page_size=2)
        collection = crawler.collect("rejected.example", now=10.0, max_posts=3)
        assert collection.post_count == 3

    def test_unreachable_timeline(self, client, crawl_target):
        crawl_target.get("rejected.example").expose_public_timeline = False
        collection = TimelineCrawler(client).collect("rejected.example", now=10.0)
        assert not collection.reachable
        assert collection.status_code == 403

    def test_invalid_page_size(self, client):
        with pytest.raises(ValueError):
            TimelineCrawler(client, page_size=0)


class TestCampaign:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(duration_days=0)
        with pytest.raises(ValueError):
            CampaignConfig(snapshot_interval_hours=0)

    def test_snapshot_rounds(self):
        assert CampaignConfig(duration_days=1.0, snapshot_interval_hours=4.0).snapshot_rounds == 6

    def test_run_produces_dataset(self, crawl_target):
        campaign = MeasurementCampaign(
            crawl_target,
            CampaignConfig(duration_days=0.5, directory_coverage=1.0),
        )
        result = campaign.run()
        dataset = result.dataset
        assert result.crawlable_pleroma == 2
        assert result.failure_status_breakdown == {404: 1}
        assert dataset.instance("moderator.example").timeline_reachable
        assert dataset.rejects_received("rejected.example") == 1
        assert len(dataset.posts_from("rejected.example")) == 5
        assert "troll@rejected.example" in dataset.users
        # 4-hourly snapshots over half a day -> 3 rounds per instance.
        assert result.snapshot_counts["moderator.example"] == 3
        assert result.api_requests > 0

    def test_clock_advances_during_campaign(self, crawl_target):
        start = crawl_target.clock.now()
        MeasurementCampaign(
            crawl_target, CampaignConfig(duration_days=0.5, directory_coverage=1.0)
        ).run()
        assert crawl_target.clock.now() >= start + 0.5 * 86400


class TestNodeinfoFailureRecording:
    """A failed nodeinfo probe must be logged, not silently swallowed."""

    @pytest.fixture
    def secretive_registry(self) -> FediverseRegistry:
        registry = FediverseRegistry()
        # A Mastodon-style instance: its metadata version string ("3.1.0")
        # cannot be classified, and it publishes no nodeinfo document.
        instance = registry.create_instance(
            "secretive.example",
            software=SoftwareKind.MASTODON,
            version="3.1.0",
            install_default_policies=False,
            expose_nodeinfo=False,
        )
        instance.register_user("ghost")
        return registry

    def test_snapshot_records_nodeinfo_failure(self, secretive_registry):
        crawler = InstanceCrawler(APIClient(FediverseAPIServer(secretive_registry)))
        snapshot = crawler.snapshot("secretive.example", now=10.0)
        # The snapshot itself survives (the instance endpoint answered) ...
        assert snapshot is not None
        assert snapshot.software == "unknown"
        # ... but the failed probe is on the record, like a real crawler's log.
        assert len(crawler.failures) == 1
        failure = crawler.failures[0]
        assert failure.domain == "secretive.example"
        assert failure.status_code == 404
        assert failure.reason.startswith("nodeinfo:")

    def test_batched_snapshot_records_identical_failure(self, secretive_registry):
        sequential = InstanceCrawler(APIClient(FediverseAPIServer(secretive_registry)))
        sequential.snapshot("secretive.example", now=10.0)
        batched = InstanceCrawler(APIClient(FediverseAPIServer(secretive_registry)))
        batched.snapshot_many(["secretive.example"], now=10.0)
        assert batched.failures == sequential.failures

    def test_nodeinfo_failure_does_not_pollute_breakdown(self, secretive_registry):
        """The snapshot succeeded, so the domain is crawlable — the logged
        nodeinfo failure must not count it as an uncrawlable instance."""
        campaign = MeasurementCampaign(
            secretive_registry,
            CampaignConfig(duration_days=0.2, directory_coverage=1.0),
        )
        campaign.directory = _FixedListing(["secretive.example"])
        result = campaign.run()
        assert "secretive.example" in result.latest_snapshots
        assert any(f.reason.startswith("nodeinfo:") for f in result.failures)
        assert result.failure_status_breakdown == {}


class _FixedListing:
    def __init__(self, domains):
        self._domains = list(domains)

    def pleroma_instances(self):
        return list(self._domains)


class TestFailureStatusBreakdown:
    """Edge cases of CrawlResult.failure_status_breakdown."""

    @staticmethod
    def _snapshot(domain: str) -> InstanceSnapshot:
        return InstanceSnapshot(domain=domain, timestamp=1.0, software="pleroma")

    def test_fail_then_succeed_is_excluded(self):
        """A domain that failed early but was snapshotted later is crawlable."""
        result = CrawlResult(dataset=Dataset())
        result.failures = [
            CrawlFailure(domain="recovered.example", timestamp=1.0, status_code=503),
            CrawlFailure(domain="gone.example", timestamp=1.0, status_code=404),
        ]
        result.latest_snapshots["recovered.example"] = self._snapshot("recovered.example")
        assert result.failure_status_breakdown == {404: 1}

    def test_repeated_distinct_statuses_keep_the_last(self):
        """Per domain, only the *final* failure status is counted."""
        result = CrawlResult(dataset=Dataset())
        result.failures = [
            CrawlFailure(domain="flappy.example", timestamp=1.0, status_code=502),
            CrawlFailure(domain="flappy.example", timestamp=2.0, status_code=503),
            CrawlFailure(domain="flappy.example", timestamp=3.0, status_code=410),
        ]
        assert result.failure_status_breakdown == {410: 1}

    def test_multiple_domains_aggregate_by_final_status(self):
        result = CrawlResult(dataset=Dataset())
        result.failures = [
            CrawlFailure(domain="a.example", timestamp=1.0, status_code=502),
            CrawlFailure(domain="b.example", timestamp=1.0, status_code=503),
            CrawlFailure(domain="a.example", timestamp=2.0, status_code=503),
            CrawlFailure(domain="c.example", timestamp=1.0, status_code=404),
        ]
        assert result.failure_status_breakdown == {503: 2, 404: 1}

    def test_churned_domain_excluded_when_snapshotted_early(self):
        """A churn casualty (up early, down later) is crawlable: it has both
        snapshots and failures, and must not appear in the breakdown."""
        registry = FediverseRegistry()
        instance = registry.create_instance("churny.example", install_default_policies=False)
        instance.register_user("u")
        instance.publish("u", "still here")
        # Goes down after the second snapshot round (rounds are 4h apart).
        instance.availability = InstanceAvailability(down_after=5 * 3600.0)
        campaign = MeasurementCampaign(
            registry, CampaignConfig(duration_days=1.0, directory_coverage=1.0)
        )
        result = campaign.run()
        assert result.snapshot_counts["churny.example"] == 2
        assert any(f.status_code == 503 for f in result.failures)
        assert result.failure_status_breakdown == {}
        # The timeline phase also found it down by then.
        assert not result.timelines[0].reachable


class TestBuilder:
    def test_discovered_domains_become_shell_records(self, client):
        crawler = InstanceCrawler(client)
        snapshot = crawler.snapshot("moderator.example", now=1.0)
        dataset = build_dataset(
            snapshots={"moderator.example": snapshot},
            discovered_domains=["moderator.example", "unknown-peer.example"],
        )
        assert dataset.instance("unknown-peer.example") is not None
        assert not dataset.instance("unknown-peer.example").is_pleroma

    def test_post_origin_derived_from_uri(self, client, crawl_target):
        timeline = TimelineCrawler(client).collect("rejected.example", now=1.0)
        crawler = InstanceCrawler(client)
        snapshot = crawler.snapshot("rejected.example", now=1.0)
        dataset = build_dataset(
            snapshots={"rejected.example": snapshot}, timelines=[timeline]
        )
        post = dataset.posts[0]
        assert post.domain == "rejected.example"
        assert post.collected_from == "rejected.example"
        assert post.is_local
