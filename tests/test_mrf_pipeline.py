"""Tests for the MRF pipeline, base classes and registry."""

from __future__ import annotations

import pytest

from repro.mrf.base import PASS_ACTION, MRFDecision, PolicyStats, Verdict
from repro.mrf.custom import CustomPolicy
from repro.mrf.noop import DropPolicy, NoOpPolicy
from repro.mrf.pipeline import MRFPipeline
from repro.mrf.registry import (
    BUILTIN_POLICY_DESCRIPTIONS,
    all_known_policy_names,
    builtin_policy_names,
    create_policy,
    default_policies,
    describe_policy,
    is_builtin,
    observed_custom_policy_names,
)
from repro.mrf.simple import SimplePolicy
from repro.mrf.threads import EnsureRePrepended


class TestPipeline:
    def test_empty_pipeline_accepts(self, sample_activity):
        pipeline = MRFPipeline(local_domain="alpha.example")
        decision = pipeline.filter(sample_activity, now=10.0)
        assert decision.accepted
        assert decision.action == PASS_ACTION

    def test_duplicate_policy_rejected(self):
        pipeline = MRFPipeline(local_domain="alpha.example")
        pipeline.add_policy(NoOpPolicy())
        with pytest.raises(ValueError):
            pipeline.add_policy(NoOpPolicy())

    def test_remove_policy(self):
        pipeline = MRFPipeline(local_domain="alpha.example")
        pipeline.add_policy(NoOpPolicy())
        assert pipeline.remove_policy("NoOpPolicy")
        assert not pipeline.remove_policy("NoOpPolicy")
        assert pipeline.policy_names == []

    def test_short_circuits_on_reject(self, sample_activity):
        pipeline = MRFPipeline(local_domain="alpha.example")
        pipeline.add_policy(DropPolicy())
        pipeline.add_policy(NoOpPolicy())
        decision = pipeline.filter(sample_activity, now=10.0)
        assert decision.rejected
        assert decision.policy == "DropPolicy"

    def test_rewrites_compose(self, sample_activity):
        pipeline = MRFPipeline(local_domain="alpha.example")
        pipeline.add_policy(SimplePolicy(media_nsfw=["beta.example"]))
        pipeline.add_policy(EnsureRePrepended())
        decision = pipeline.filter(sample_activity, now=10.0)
        assert decision.accepted
        assert decision.modified
        assert decision.activity.post.sensitive

    def test_events_logged_for_rewrites_and_rejects(self, sample_activity):
        pipeline = MRFPipeline(local_domain="alpha.example")
        pipeline.add_policy(SimplePolicy(media_nsfw=["beta.example"]))
        pipeline.filter(sample_activity, now=10.0)
        assert len(pipeline.events) == 1
        assert pipeline.events[0].accepted

    def test_no_event_for_pure_pass(self, sample_activity):
        pipeline = MRFPipeline(local_domain="alpha.example")
        pipeline.add_policy(NoOpPolicy())
        pipeline.filter(sample_activity, now=10.0)
        assert pipeline.events == []

    def test_simple_policy_config_exposed(self):
        pipeline = MRFPipeline(local_domain="alpha.example")
        pipeline.add_policy(SimplePolicy(reject=["bad.example"]))
        assert pipeline.simple_policy_config() == {"reject": ["bad.example"]}

    def test_describe_lists_policies(self):
        pipeline = MRFPipeline(local_domain="alpha.example")
        pipeline.add_policy(NoOpPolicy())
        assert pipeline.describe()[0]["name"] == "NoOpPolicy"


class TestPolicyStats:
    def test_record_counts(self, sample_activity):
        stats = PolicyStats()
        accept = MRFDecision(verdict=Verdict.ACCEPT, activity=sample_activity)
        reject = MRFDecision(
            verdict=Verdict.REJECT, activity=sample_activity, action="reject"
        )
        rewrite = MRFDecision(
            verdict=Verdict.ACCEPT, activity=sample_activity, action="media_removal"
        )
        for decision in (accept, reject, rewrite):
            stats.record(decision)
        assert stats.seen == 3
        assert stats.rejected == 1
        assert stats.rewritten == 1
        assert stats.by_action == {"reject": 1, "media_removal": 1}


class TestRegistry:
    def test_paper_policy_type_counts(self):
        assert len(builtin_policy_names()) == 26
        assert len(observed_custom_policy_names()) == 20
        assert len(all_known_policy_names()) == 46

    def test_builtin_descriptions_complete(self):
        for name in builtin_policy_names():
            assert BUILTIN_POLICY_DESCRIPTIONS[name]

    def test_is_builtin(self):
        assert is_builtin("SimplePolicy")
        assert not is_builtin("RejectCloudflarePolicy")

    def test_create_policy_builtin(self):
        policy = create_policy("HellthreadPolicy", delist_threshold=5)
        assert policy.name == "HellthreadPolicy"
        assert policy.config()["delist_threshold"] == 5

    def test_create_policy_unknown_is_custom(self):
        policy = create_policy("RacismRemover")
        assert isinstance(policy, CustomPolicy)
        assert policy.name == "RacismRemover"

    def test_every_builtin_constructs_and_has_matching_name(self):
        for name in builtin_policy_names():
            policy = create_policy(name)
            assert policy.name == name

    def test_default_policies(self):
        names = [policy.name for policy in default_policies()]
        assert names == ["ObjectAgePolicy", "NoOpPolicy"]

    def test_describe_policy_fallback(self):
        assert "admin-created" in describe_policy("SomethingNew")


class TestCustomPolicy:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            CustomPolicy(name="")

    def test_default_passthrough(self, sample_activity, mrf_context):
        policy = CustomPolicy(name="Mystery")
        assert policy.filter(sample_activity, mrf_context).accepted

    def test_behaviour_can_reject(self, sample_activity, mrf_context):
        policy = CustomPolicy(name="Blocker", behaviour=lambda activity, ctx: None)
        assert policy.filter(sample_activity, mrf_context).rejected

    def test_behaviour_can_rewrite(self, sample_activity, mrf_context):
        def rewrite(activity, ctx):
            return activity.with_flag("seen", True)

        policy = CustomPolicy(name="Rewriter", behaviour=rewrite)
        decision = policy.filter(sample_activity, mrf_context)
        assert decision.accepted and decision.modified
        assert decision.activity.extra["seen"] is True
