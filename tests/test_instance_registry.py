"""Tests for instances, timelines and the fediverse registry."""

from __future__ import annotations

import pytest

from repro.fediverse.errors import (
    PostNotFoundError,
    UnknownInstanceError,
    UnknownUserError,
)
from repro.fediverse.instance import InstanceAvailability
from repro.fediverse.post import Post, Visibility
from repro.fediverse.registry import FediverseRegistry
from repro.fediverse.software import SoftwareKind
from repro.fediverse.timeline import Timeline


class TestInstanceBasics:
    def test_default_policies_installed_for_recent_pleroma(self, registry):
        instance = registry.create_instance("recent.example", version="2.2.2")
        assert "ObjectAgePolicy" in instance.enabled_policy_names
        assert "NoOpPolicy" in instance.enabled_policy_names

    def test_no_default_policies_for_old_pleroma(self, registry):
        instance = registry.create_instance("old.example", version="2.0.7")
        assert instance.enabled_policy_names == []

    def test_no_default_policies_for_mastodon(self, registry):
        instance = registry.create_instance(
            "masto.example", software=SoftwareKind.MASTODON, version="3.3.0"
        )
        assert instance.enabled_policy_names == []

    def test_register_user_twice_fails(self, two_instances):
        alpha, _ = two_instances
        with pytest.raises(ValueError):
            alpha.register_user("alice")

    def test_get_unknown_user_raises(self, two_instances):
        alpha, _ = two_instances
        with pytest.raises(UnknownUserError):
            alpha.get_user("nobody")

    def test_publish_adds_to_timelines(self, two_instances):
        alpha, _ = two_instances
        post = alpha.publish("alice", "hello fediverse")
        assert post.post_id in alpha.timelines.public
        assert post.post_id in alpha.timelines.whole_known_network
        assert alpha.get_user("alice").post_count == 1

    def test_non_public_post_not_on_public_timeline(self, two_instances):
        alpha, _ = two_instances
        post = alpha.publish("alice", "secret", visibility=Visibility.FOLLOWERS_ONLY)
        assert post.post_id not in alpha.timelines.public

    def test_receive_remote_post(self, two_instances, sample_post):
        alpha, _ = two_instances
        alpha.receive_remote_post(sample_post)
        assert sample_post.post_id in alpha.timelines.whole_known_network
        assert sample_post.post_id not in alpha.timelines.public

    def test_receive_remote_post_rejects_local_origin(self, two_instances):
        alpha, _ = two_instances
        local = Post(
            post_id="x", author="alice@alpha.example", domain="alpha.example",
            content="hi", created_at=0.0,
        )
        with pytest.raises(ValueError):
            alpha.receive_remote_post(local)

    def test_remote_post_hidden_from_federated_timeline_when_flagged(
        self, two_instances, sample_post
    ):
        alpha, _ = two_instances
        flagged = sample_post.with_changes()
        flagged.extra["federated_timeline_removal"] = True
        alpha.receive_remote_post(flagged)
        assert flagged.post_id not in alpha.timelines.whole_known_network

    def test_delete_post(self, two_instances):
        alpha, _ = two_instances
        post = alpha.publish("alice", "to be deleted")
        alpha.delete_post(post.post_id)
        assert post.post_id not in alpha.timelines.public
        with pytest.raises(PostNotFoundError):
            alpha.get_post(post.post_id)

    def test_delete_unknown_post_raises(self, two_instances):
        alpha, _ = two_instances
        with pytest.raises(PostNotFoundError):
            alpha.delete_post("missing")

    def test_statuses_count_includes_remote(self, two_instances, sample_post):
        alpha, _ = two_instances
        alpha.publish("alice", "one")
        alpha.receive_remote_post(sample_post)
        assert alpha.local_post_count == 1
        assert alpha.statuses_count == 2

    def test_add_peer_ignores_self(self, two_instances):
        alpha, _ = two_instances
        alpha.add_peer("alpha.example")
        assert "alpha.example" not in alpha.peers

    def test_api_dict_contains_mrf_for_pleroma(self, two_instances):
        alpha, _ = two_instances
        payload = alpha.to_api_dict()
        assert payload["uri"] == "alpha.example"
        assert "pleroma" in payload
        assert payload["pleroma"]["metadata"]["federation"]["exposable"] is True

    def test_api_dict_hides_mrf_when_not_exposed(self, registry):
        instance = registry.create_instance("hidden.example", expose_policies=False)
        federation = instance.to_api_dict()["pleroma"]["metadata"]["federation"]
        assert federation == {"exposable": False}

    def test_version_string_format(self, two_instances):
        alpha, _ = two_instances
        assert "Pleroma" in alpha.version_string()


class TestInstanceAvailability:
    def test_defaults_ok(self):
        availability = InstanceAvailability()
        assert availability.ok and availability.timeline_reachable

    def test_error_status(self):
        availability = InstanceAvailability(status_code=502)
        assert not availability.ok


class TestTimeline:
    def test_add_and_deduplicate(self):
        timeline = Timeline("public")
        assert timeline.add("a")
        assert not timeline.add("a")
        assert len(timeline) == 1

    def test_remove(self):
        timeline = Timeline("public")
        timeline.add("a")
        assert timeline.remove("a")
        assert not timeline.remove("a")

    def test_latest_newest_first(self):
        timeline = Timeline("public")
        for post_id in ("a", "b", "c"):
            timeline.add(post_id)
        assert timeline.latest(limit=2) == ["c", "b"]

    def test_latest_with_max_id(self):
        timeline = Timeline("public")
        for post_id in ("a", "b", "c", "d"):
            timeline.add(post_id)
        assert timeline.latest(limit=10, max_id="c") == ["b", "a"]

    def test_latest_with_unknown_max_id_returns_all(self):
        timeline = Timeline("public")
        timeline.add("a")
        assert timeline.latest(limit=10, max_id="zzz") == ["a"]

    def test_clear(self):
        timeline = Timeline("public")
        timeline.add("a")
        timeline.clear()
        assert len(timeline) == 0


class TestRegistry:
    def test_duplicate_instance_rejected(self, registry):
        registry.create_instance("dup.example")
        with pytest.raises(ValueError):
            registry.create_instance("dup.example")

    def test_get_unknown_instance_raises(self, registry):
        with pytest.raises(UnknownInstanceError):
            registry.get("nowhere.example")

    def test_contains_and_len(self, two_instances, registry):
        assert "alpha.example" in registry
        assert len(registry) == 2

    def test_software_partition(self, registry):
        registry.create_instance("p.example")
        registry.create_instance("m.example", software=SoftwareKind.MASTODON)
        assert len(registry.pleroma_instances()) == 1
        assert len(registry.non_pleroma_instances()) == 1

    def test_federate_is_symmetric(self, two_instances, registry):
        alpha, beta = two_instances
        assert beta.domain in alpha.peers
        assert alpha.domain in beta.peers

    def test_follow_creates_relationship_and_federates(self, two_instances, registry):
        registry.follow("alice@alpha.example", "bob@beta.example")
        alice = registry.find_user("alice@alpha.example")
        bob = registry.find_user("bob@beta.example")
        assert "bob@beta.example" in alice.following
        assert "alice@alpha.example" in bob.followers

    def test_find_unknown_user_raises(self, two_instances, registry):
        with pytest.raises(UnknownUserError):
            registry.find_user("ghost@alpha.example")

    def test_stats(self, two_instances, registry):
        stats = registry.stats()
        assert stats["instances"] == 2
        assert stats["users"] == 2

    def test_set_availability(self, two_instances, registry):
        registry.set_availability("alpha.example", 503, "overloaded")
        assert registry.get("alpha.example").availability.status_code == 503
