"""Tests for the Section 7 proposed policies (curated lists, auto-tagging,
repeat-offender escalation)."""

from __future__ import annotations

import pytest

from repro.activitypub.activities import create_activity, flag_activity
from repro.activitypub.actors import Actor
from repro.activitypub.delivery import FederationDelivery
from repro.fediverse.post import MediaAttachment, Post, Visibility
from repro.fediverse.registry import FediverseRegistry
from repro.mrf.base import MRFContext
from repro.mrf.proposed import (
    PROPOSED_POLICY_NAMES,
    AutoTagPolicy,
    CuratedBlocklistPolicy,
    RepeatOffenderPolicy,
)
from repro.mrf.registry import create_policy, is_builtin, proposed_policy_names

CTX = MRFContext(local_domain="home.example", now=1000.0)
TOXIC_TEXT = "you idiot moron scum worthless idiot trash vermin subhuman scum"
BENIGN_TEXT = "a calm afternoon of tea and gardening with friends"


def post_from(domain: str, author: str, content: str, **kwargs) -> Post:
    return Post(
        post_id=f"{domain}-{author}-{kwargs.pop('n', 0)}",
        author=f"{author}@{domain}",
        domain=domain,
        content=content,
        created_at=kwargs.pop("created_at", 900.0),
        **kwargs,
    )


class TestRegistryIntegration:
    def test_proposed_names_exposed(self):
        assert set(PROPOSED_POLICY_NAMES) == {
            "CuratedBlocklistPolicy",
            "AutoTagPolicy",
            "RepeatOffenderPolicy",
        }
        assert proposed_policy_names() == PROPOSED_POLICY_NAMES

    def test_constructible_by_name_but_not_builtin(self):
        for name in PROPOSED_POLICY_NAMES:
            policy = create_policy(name)
            assert policy.name == name
            assert not is_builtin(name)


class TestCuratedBlocklistPolicy:
    def test_subscribing_to_unknown_list_fails(self):
        with pytest.raises(ValueError):
            CuratedBlocklistPolicy(lists={"NoHate": []}, subscribed=["NoPorn"])

    def test_rejects_listed_domains_only_when_subscribed(self):
        policy = CuratedBlocklistPolicy(
            lists={"NoHate": ["hate.example"], "NoPorn": ["porn.example"]},
            subscribed=["NoHate"],
        )
        hate = create_activity(post_from("hate.example", "troll", BENIGN_TEXT))
        porn = create_activity(post_from("porn.example", "artist", BENIGN_TEXT))
        assert policy.filter(hate, CTX).rejected
        assert policy.filter(porn, CTX).accepted

    def test_subscribe_and_unsubscribe(self):
        policy = CuratedBlocklistPolicy(lists={"NoPorn": ["porn.example"]})
        porn = create_activity(post_from("porn.example", "artist", BENIGN_TEXT))
        assert policy.filter(porn, CTX).accepted
        policy.subscribe("NoPorn")
        assert policy.filter(porn, CTX).rejected
        assert policy.unsubscribe("NoPorn")
        assert policy.filter(porn, CTX).accepted

    def test_wildcard_entries(self):
        policy = CuratedBlocklistPolicy(
            lists={"NoHate": ["*.hate.example"]}, subscribed=["NoHate"]
        )
        activity = create_activity(post_from("sub.hate.example", "troll", BENIGN_TEXT))
        assert policy.filter(activity, CTX).rejected

    def test_published_lists_can_be_updated(self):
        policy = CuratedBlocklistPolicy(lists={"NoHate": []}, subscribed=["NoHate"])
        target = create_activity(post_from("new-hate.example", "troll", BENIGN_TEXT))
        assert policy.filter(target, CTX).accepted
        policy.publish_list("NoHate", ["new-hate.example"])
        assert policy.filter(target, CTX).rejected

    def test_config_and_blocked_domains(self):
        policy = CuratedBlocklistPolicy(
            lists={"NoHate": ["hate.example"], "NoPorn": ["porn.example"]},
            subscribed=["NoHate", "NoPorn"],
        )
        assert policy.blocked_domains() == {"hate.example", "porn.example"}
        config = policy.config()
        assert config["subscribed"] == ["NoHate", "NoPorn"]
        assert policy.list_names() == ("NoHate", "NoPorn")


class TestAutoTagPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoTagPolicy(threshold=0.0)
        with pytest.raises(ValueError):
            AutoTagPolicy(min_posts=0)

    def test_benign_user_never_tagged(self):
        policy = AutoTagPolicy(min_posts=2)
        for index in range(5):
            activity = create_activity(post_from("other.example", "ann", BENIGN_TEXT, n=index))
            decision = policy.filter(activity, CTX)
            assert decision.accepted and not decision.modified
        assert policy.flagged_users() == ()

    def test_harmful_user_tagged_after_min_posts(self):
        policy = AutoTagPolicy(min_posts=3)
        decisions = []
        for index in range(4):
            post = post_from(
                "other.example",
                "troll",
                TOXIC_TEXT,
                n=index,
                attachments=(MediaAttachment(url=f"https://other.example/{index}.png"),),
            )
            decisions.append(policy.filter(create_activity(post), CTX))
        # The first two posts pass untouched (not enough history yet).
        assert not decisions[0].modified and not decisions[1].modified
        tagged = decisions[3]
        assert tagged.accepted and tagged.modified
        assert tagged.activity.post.sensitive
        assert tagged.activity.post.attachments == ()
        assert tagged.activity.post.visibility is Visibility.UNLISTED
        assert "troll@other.example" in policy.flagged_users()
        assert policy.user_score("troll@other.example") > 0.8

    def test_only_offending_user_is_affected(self):
        policy = AutoTagPolicy(min_posts=1)
        troll_activity = create_activity(post_from("other.example", "troll", TOXIC_TEXT))
        ann_activity = create_activity(post_from("other.example", "ann", BENIGN_TEXT))
        assert policy.filter(troll_activity, CTX).modified
        assert not policy.filter(ann_activity, CTX).modified

    def test_non_post_activity_passes(self):
        policy = AutoTagPolicy()
        flag = flag_activity(
            Actor.from_handle("a@b.example"), "c@home.example", ("u",), "x", 0.0
        )
        assert policy.filter(flag, CTX).accepted


class TestRepeatOffenderPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RepeatOffenderPolicy(tag_after=0)
        with pytest.raises(ValueError):
            RepeatOffenderPolicy(tag_after=5, reject_after=3)

    def test_escalation_ladder(self):
        policy = RepeatOffenderPolicy(tag_after=2, reject_after=4)
        decisions = []
        for index in range(5):
            activity = create_activity(post_from("other.example", "troll", TOXIC_TEXT, n=index))
            decisions.append(policy.filter(activity, CTX))
        # Strike 1: untouched; strikes 2-3: tagged; strike 4+: rejected.
        assert decisions[0].accepted and not decisions[0].modified
        assert decisions[1].modified and decisions[1].action == "tag_offender"
        assert decisions[2].modified
        assert decisions[3].rejected and decisions[3].action == "reject_user"
        assert decisions[4].rejected
        assert policy.strikes("troll@other.example") == 5

    def test_reports_count_as_strikes(self):
        policy = RepeatOffenderPolicy(tag_after=2, reject_after=4)
        reporter = Actor.from_handle("watcher@elsewhere.example")
        report = flag_activity(reporter, "troll@other.example", ("uri",), "abuse", 10.0)
        assert policy.filter(report, CTX).accepted
        assert policy.strikes("troll@other.example") == 1
        # One report plus one harmful post reaches the tagging level.
        decision = policy.filter(
            create_activity(post_from("other.example", "troll", TOXIC_TEXT)), CTX
        )
        assert decision.modified and decision.action == "tag_offender"

    def test_benign_users_accumulate_no_strikes(self):
        policy = RepeatOffenderPolicy()
        for index in range(6):
            activity = create_activity(post_from("other.example", "ann", BENIGN_TEXT, n=index))
            assert policy.filter(activity, CTX).accepted
        assert policy.strikes("ann@other.example") == 0
        assert policy.offenders() == {}

    def test_pardon_resets(self):
        policy = RepeatOffenderPolicy(tag_after=1, reject_after=2)
        policy.add_strike("troll@other.example", 5)
        policy.pardon("troll@other.example")
        assert policy.strikes("troll@other.example") == 0


class TestProposedPoliciesEndToEnd:
    """The proposed policies avoid collateral damage on a live registry."""

    def test_per_user_moderation_spares_innocent_users(self):
        registry = FediverseRegistry()
        home = registry.create_instance("home.example", install_default_policies=False)
        remote = registry.create_instance("mixed.example", install_default_policies=False)
        home.register_user("admin")
        remote.register_user("troll")
        remote.register_user("innocent")

        home.mrf.add_policy(RepeatOffenderPolicy(tag_after=1, reject_after=3))
        delivery = FederationDelivery(registry)

        registry.clock.advance(1000)
        troll_reports = []
        for index in range(4):
            post = remote.publish("troll", TOXIC_TEXT, created_at=float(index))
            troll_reports.append(delivery.federate_post(post, ["home.example"])[0])
        innocent_post = remote.publish("innocent", BENIGN_TEXT, created_at=10.0)
        innocent_report = delivery.federate_post(innocent_post, ["home.example"])[0]

        # The troll escalates to rejection; the innocent user is untouched.
        assert troll_reports[-1].rejected
        assert innocent_report.accepted and not innocent_report.modified
        assert innocent_post.post_id in home.remote_posts
