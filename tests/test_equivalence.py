"""Equivalence tests: indexed/cached fast paths vs naive reference scans.

The indexed ``Dataset`` accessors, the single-pass scorer and the cached
collateral sweep are transparent optimisations: every one of them must
return exactly what the seed's naive scan over the flat record lists
returned — same elements, same order, same float bits.  These tests pin
that contract on a randomised hand-built dataset and on a real generated
crawl.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.schema import (
    InstanceRecord,
    PolicySettingRecord,
    PostRecord,
    RejectEdge,
    UserRecord,
)
from repro.datasets.store import Dataset
from repro.mrf.noop import NoOpPolicy
from repro.mrf.pipeline import MRFPipeline
from repro.perf import baselines
from repro.perspective.attributes import ATTRIBUTES
from repro.perspective.client import PerspectiveClient
from repro.perspective.lexicon import default_lexicon
from repro.perspective.scorer import LexiconScorer


# --------------------------------------------------------------------------- #
# Naive reference implementations (the seed's scans over the flat lists)
# --------------------------------------------------------------------------- #
def naive_policy_settings_for(ds: Dataset, domain: str):
    return [record for record in ds.policy_settings if record.domain == domain]

def naive_instances_with_policy(ds: Dataset, policy: str):
    return sorted({r.domain for r in ds.policy_settings if r.policy == policy})

def naive_policy_names(ds: Dataset):
    return sorted({record.policy for record in ds.policy_settings})

def naive_simple_policy_settings(ds: Dataset):
    return [record for record in ds.policy_settings if record.policy == "SimplePolicy"]

def naive_edges_by_action(ds: Dataset, action: str):
    return [edge for edge in ds.reject_edges if edge.action == action]

def naive_edges_targeting(ds: Dataset, domain: str):
    return [edge for edge in ds.reject_edges if edge.target == domain]

def naive_edges_from(ds: Dataset, domain: str):
    return [edge for edge in ds.reject_edges if edge.source == domain]

def naive_rejects_received(ds: Dataset, domain: str):
    return sum(
        1 for e in ds.reject_edges if e.target == domain and e.action == "reject"
    )

def naive_rejects_applied(ds: Dataset, domain: str):
    return sum(
        1 for e in ds.reject_edges if e.source == domain and e.action == "reject"
    )

def naive_rejected_domains(ds: Dataset):
    return sorted({e.target for e in ds.reject_edges if e.action == "reject"})

def naive_moderated_domains(ds: Dataset):
    return sorted({e.target for e in ds.reject_edges})

def naive_users_on(ds: Dataset, domain: str):
    return [user for user in ds.users.values() if user.domain == domain]


def all_domains(ds: Dataset) -> set[str]:
    domains = set(ds.instances)
    domains.update(r.domain for r in ds.policy_settings)
    domains.update(e.source for e in ds.reject_edges)
    domains.update(e.target for e in ds.reject_edges)
    domains.update(u.domain for u in ds.users.values())
    domains.add("never-seen.example")
    return domains


def assert_dataset_matches_naive(ds: Dataset) -> None:
    """Assert every indexed accessor equals its naive flat-list scan."""
    for domain in sorted(all_domains(ds)):
        assert ds.policy_settings_for(domain) == naive_policy_settings_for(ds, domain)
        assert ds.edges_targeting(domain) == naive_edges_targeting(ds, domain)
        assert ds.edges_from(domain) == naive_edges_from(ds, domain)
        assert ds.rejects_received(domain) == naive_rejects_received(ds, domain)
        assert ds.rejects_applied(domain) == naive_rejects_applied(ds, domain)
        assert ds.users_on(domain) == naive_users_on(ds, domain)
    actions = {e.action for e in ds.reject_edges} | {"reject", "no-such-action"}
    for action in sorted(actions):
        assert ds.edges_by_action(action) == naive_edges_by_action(ds, action)
    policies = {r.policy for r in ds.policy_settings} | {"NoSuchPolicy"}
    for policy in sorted(policies):
        assert ds.instances_with_policy(policy) == naive_instances_with_policy(ds, policy)
    assert ds.policy_names() == naive_policy_names(ds)
    assert ds.simple_policy_settings() == naive_simple_policy_settings(ds)
    assert ds.rejected_domains() == naive_rejected_domains(ds)
    assert ds.moderated_domains() == naive_moderated_domains(ds)
    # stats() cross-checks the maintained counters against full recounts.
    stats = ds.stats()
    assert stats["moderation_edges"] == len(ds.reject_edges)
    assert stats["reject_edges"] == len(naive_edges_by_action(ds, "reject"))
    assert stats["collected_local_posts"] == len(ds.local_posts())
    assert stats["users_with_posts"] == len(ds.users_with_posts())


# --------------------------------------------------------------------------- #
# Randomised hand-built dataset
# --------------------------------------------------------------------------- #
def build_random_dataset(seed: int) -> Dataset:
    rng = random.Random(seed)
    ds = Dataset()
    domains = [f"inst-{i}.example" for i in range(12)]
    softwares = ["pleroma", "pleroma", "mastodon", "misskey"]
    for domain in domains:
        ds.add_instance(
            InstanceRecord(
                domain=domain,
                software=rng.choice(softwares),
                reachable=rng.random() > 0.2,
                user_count=rng.randrange(50),
                status_count=rng.randrange(500),
            )
        )
    policies = ["SimplePolicy", "ObjectAgePolicy", "TagPolicy", "HellthreadPolicy"]
    for _ in range(40):
        ds.add_policy_setting(
            PolicySettingRecord(
                domain=rng.choice(domains),
                policy=rng.choice(policies),
                config={"reject": [rng.choice(domains)]},
            )
        )
    actions = ["reject", "media_removal", "followers_only", "reject"]
    for _ in range(120):
        ds.add_reject_edge(
            RejectEdge(rng.choice(domains), rng.choice(domains), rng.choice(actions))
        )
    for i in range(60):
        handle = f"user{i}@{rng.choice(domains)}"
        ds.add_user(
            UserRecord(handle=handle, domain=handle.split("@")[1], post_count=rng.randrange(9))
        )
    for i in range(150):
        domain = rng.choice(domains)
        ds.add_post(
            PostRecord(
                post_id=f"{domain}-{i}",
                author=f"user{rng.randrange(60)}@{domain}",
                domain=domain,
                content=f"post number {i} about coffee and gardens",
                created_at=float(i),
                collected_from=rng.choice([domain, rng.choice(domains), ""]),
            )
        )
    return ds


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_dataset_accessors_match_naive_scans(seed: int) -> None:
    ds = build_random_dataset(seed)
    assert_dataset_matches_naive(ds)


def test_duplicate_edges_are_deduplicated_like_the_seed() -> None:
    ds = build_random_dataset(99)
    edges = list(ds.reject_edges)
    # Re-adding every edge (single and bulk path) must not change anything.
    for edge in edges[: len(edges) // 2]:
        ds.add_reject_edge(edge)
    ds.add_reject_edges(edges)
    assert ds.reject_edges == edges
    assert ds.reject_edges == baselines.naive_add_reject_edges(edges + edges)
    assert_dataset_matches_naive(ds)


def test_user_replacement_keeps_domain_index_consistent() -> None:
    ds = Dataset()
    ds.add_user(UserRecord(handle="a@one.example", domain="one.example"))
    ds.add_user(UserRecord(handle="b@two.example", domain="two.example"))
    # Same-domain replacement (changed metadata).
    ds.add_user(UserRecord(handle="a@one.example", domain="one.example", post_count=5))
    assert ds.users_on("one.example") == naive_users_on(ds, "one.example")
    assert ds.users_on("one.example")[0].post_count == 5
    # Cross-domain replacement (the user record moved instances).
    ds.add_user(UserRecord(handle="a@one.example", domain="two.example"))
    assert ds.users_on("one.example") == naive_users_on(ds, "one.example") == []
    assert ds.users_on("two.example") == naive_users_on(ds, "two.example")
    assert_dataset_matches_naive(ds)


def test_generated_crawl_accessors_match_naive_scans(tiny_dataset) -> None:
    assert_dataset_matches_naive(tiny_dataset)


# --------------------------------------------------------------------------- #
# Scorer and client equivalence
# --------------------------------------------------------------------------- #
CORPUS = [
    "",
    "what a lovely morning for coffee",
    "you absolute idiot your takes are trash and garbage",
    "damn this crappy bloody keyboard to hell",
    "nsfw lewd explicit content ahead",
    "idiot idiot idiot idiot",
    "mixed: damn idiots posting lewd trash all day",
]


def test_single_pass_scores_match_per_attribute_passes() -> None:
    scorer = LexiconScorer()
    for text in CORPUS:
        single = scorer.score(text)
        for attribute in ATTRIBUTES:
            assert single.get(attribute) == scorer.score_attribute(text, attribute)
    assert scorer.score_many(CORPUS) == baselines.naive_score_many(scorer, CORPUS)


def test_score_many_deduplicates_but_matches_sequential() -> None:
    scorer = LexiconScorer()
    texts = CORPUS * 3
    assert scorer.score_many(texts) == [scorer.score(text) for text in texts]


def test_merged_table_invalidated_by_term_edits() -> None:
    lexicon = default_lexicon()
    scorer = LexiconScorer(lexicon=lexicon)
    before = scorer.score("gardens are wonderful")
    assert before.get(ATTRIBUTES[0]) == 0.0
    lexicon.add_term(ATTRIBUTES[0], "gardens", 1.0)
    assert scorer.score("gardens are wonderful").get(ATTRIBUTES[0]) > 0.0
    lexicon.remove_term(ATTRIBUTES[0], "gardens")
    assert scorer.score("gardens are wonderful") == before


def test_cached_client_results_equal_uncached() -> None:
    texts = CORPUS * 2
    cached_client = PerspectiveClient()
    uncached = LexiconScorer()
    results = cached_client.analyze_many(texts)
    assert [r.scores for r in results] == [uncached.score(t) for t in texts]
    # Second round: everything served from cache, scores unchanged.
    again = cached_client.analyze_many(texts)
    assert [r.scores for r in again] == [r.scores for r in results]
    assert all(r.cached for r in again)


def test_batch_analyze_matches_sequential_stats_and_flags() -> None:
    texts = CORPUS[1:] * 2 + [CORPUS[2]]
    batch_client = PerspectiveClient()
    seq_client = PerspectiveClient()
    batch = batch_client.analyze_many(texts)
    seq = [seq_client.analyze(text) for text in texts]
    assert [(r.text, r.scores, r.cached) for r in batch] == [
        (r.text, r.scores, r.cached) for r in seq
    ]
    assert batch_client.stats == seq_client.stats
    assert batch_client.cache_size == seq_client.cache_size


def test_batch_analyze_with_bounded_lru_matches_sequential() -> None:
    texts = CORPUS[1:] * 2
    batch_client = PerspectiveClient(max_cache_size=2)
    seq_client = PerspectiveClient(max_cache_size=2)
    batch = batch_client.analyze_many(texts)
    seq = [seq_client.analyze(text) for text in texts]
    assert [(r.scores, r.cached) for r in batch] == [(r.scores, r.cached) for r in seq]
    assert batch_client.stats == seq_client.stats
    assert batch_client._cache == seq_client._cache


def test_label_memo_tracks_threshold_changes(tiny_pipeline) -> None:
    from repro.core.harmfulness import HarmfulnessLabeller

    labeller = tiny_pipeline.labeller
    dataset = tiny_pipeline.dataset
    handles = [
        user.handle for user in dataset.users.values() if dataset.posts_by(user.handle)
    ][:50]
    original_threshold = labeller.threshold
    originals = {handle: labeller.label_user(handle) for handle in handles}
    try:
        labeller.threshold = 0.1
        fresh = HarmfulnessLabeller(dataset, client=labeller.client, threshold=0.1)
        relabelled = {handle: labeller.label_user(handle) for handle in handles}
        assert relabelled == {handle: fresh.label_user(handle) for handle in handles}
        # The lower threshold must actually flag more posts somewhere,
        # otherwise this test proves nothing about the memo key.
        assert any(
            relabelled[handle].harmful_post_count > originals[handle].harmful_post_count
            for handle in handles
        )
    finally:
        labeller.threshold = original_threshold
    # Original-threshold memo entries are intact and still served.
    assert {handle: labeller.label_user(handle) for handle in handles} == originals


def test_breakdown_cache_immune_to_caller_mutation(tiny_pipeline) -> None:
    analyzer = tiny_pipeline.collateral_analyzer
    rows = analyzer.per_instance_breakdown()
    assert rows
    pristine = [dict(row.as_row()) for row in rows]
    rows[0].harmful_users += 100
    rows[0].non_harmful_users += 100
    again = analyzer.per_instance_breakdown()
    assert [dict(row.as_row()) for row in again] == pristine


def test_lru_cache_bound_evicts_oldest() -> None:
    client = PerspectiveClient(max_cache_size=2)
    client.analyze("one two three")
    client.analyze("idiot")
    client.analyze("damn")  # evicts "one two three"
    assert client.cache_size == 2
    assert client.analyze("idiot").cached
    assert not client.analyze("one two three").cached  # was evicted, rescored


def test_collateral_sweep_matches_seed_algorithm(tiny_pipeline) -> None:
    analyzer = tiny_pipeline.collateral_analyzer
    thresholds = (0.5, 0.6, 0.7, 0.8, 0.9)
    optimised = analyzer.threshold_sweep(thresholds)
    naive = baselines.naive_threshold_sweep(
        tiny_pipeline.dataset, analyzer._labels_for, thresholds
    )
    assert optimised == naive
    # And the sweep agrees with the full summary at every point.
    for threshold in thresholds:
        assert optimised[threshold] == analyzer.summary(threshold).non_harmful_user_share


def test_mrf_pipeline_policy_lookup_stays_consistent() -> None:
    pipeline = MRFPipeline("local.example")
    first = NoOpPolicy()
    pipeline.add_policy(first)
    assert pipeline.has_policy(first.name)
    assert pipeline.get_policy(first.name) is first
    with pytest.raises(ValueError):
        pipeline.add_policy(NoOpPolicy())
    assert pipeline.remove_policy(first.name)
    assert not pipeline.has_policy(first.name)
    assert pipeline.get_policy(first.name) is None
    assert not pipeline.remove_policy(first.name)
    # Re-adding after removal works and evaluation order follows the list.
    pipeline.add_policy(first)
    assert pipeline.policy_names == [first.name]
