"""Tests for the concurrent serving layer (PR 9).

Covers the thread-safe server front end: atomic :class:`ClientStats`
counters (the ``by_domain`` lost-update race), frozen shared response
caches, availability-flip error caching under churn, the
:class:`RequestExecutor`, the twin-run equivalence of
:class:`ConcurrentMeasurementCampaign` against the sequential engine at
1/2/8 threads, and the load-generation harness's latency reports.

Every test in the module runs under a faulthandler deadlock tripwire
(PR 8's ``--hang-timeout`` pattern): a wedged lock or pool dumps every
thread's stack and kills the run instead of hanging the suite.
"""

from __future__ import annotations

import faulthandler
import random
import threading

import pytest

from repro.api.client import APIClient, ClientStats
from repro.api.http import FrozenList, HTTPStatus, freeze_json
from repro.api.server import FediverseAPIServer, RequestExecutor
from repro.crawler.campaign import (
    CampaignConfig,
    ConcurrentMeasurementCampaign,
    CountingCrawlSink,
    MeasurementCampaign,
    _partition,
)
from repro.crawler.crawler import INSTANCE_PATH
from repro.fediverse.instance import InstanceAvailability
from repro.fediverse.registry import FediverseRegistry
from repro.perf.harness import _crawl_state
from repro.perf.loadgen import LatencyRecordingTransport, percentile, run_load
from repro.synth.generator import FediverseGenerator
from repro.synth.scenario import scenario_config


@pytest.fixture(autouse=True)
def deadlock_tripwire():
    """Fail fast (with every thread's stack) instead of hanging the suite."""
    faulthandler.dump_traceback_later(180.0, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


# --------------------------------------------------------------------- #
# ClientStats atomicity
# --------------------------------------------------------------------- #
class TestClientStatsAtomicity:
    def test_unlocked_read_modify_write_loses_updates(self):
        """The old ``get(domain, 0) + 1`` pattern demonstrably drops updates.

        A barrier forces the worst-case interleaving deterministically:
        both threads read the counter before either writes, so one
        increment is lost — exactly what two crawler threads sharing the
        pre-fix ``ClientStats`` could do to ``by_domain``.
        """
        counters: dict[str, int] = {}
        barrier = threading.Barrier(2)

        def racy_increment() -> None:
            value = counters.get("pleroma.example", 0)
            barrier.wait()  # both threads have read; neither has written
            counters["pleroma.example"] = value + 1

        threads = [threading.Thread(target=racy_increment) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters["pleroma.example"] == 1  # one of two updates lost

    def test_record_hammer_keeps_exact_totals(self):
        """Hammering the fixed ``record`` from 8 threads loses nothing."""
        stats = ClientStats()
        n_threads, per_thread = 8, 500
        start = threading.Barrier(n_threads)

        def hammer(worker: int) -> None:
            domain = f"instance{worker % 4}.example"
            start.wait()
            for index in range(per_thread):
                status = HTTPStatus.OK if index % 2 == 0 else HTTPStatus.NOT_FOUND
                stats.record(status, domain)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = n_threads * per_thread
        assert stats.requests == total
        assert stats.ok == total // 2
        assert stats.failed == total // 2
        assert stats.by_status == {200: total // 2, 404: total // 2}
        assert sum(stats.by_domain.values()) == total
        assert set(stats.by_domain.values()) == {2 * per_thread}

    def test_retry_and_backoff_counters_are_atomic(self):
        stats = ClientStats()
        n_threads, per_thread = 8, 300
        start = threading.Barrier(n_threads)

        def hammer() -> None:
            start.wait()
            for _ in range(per_thread):
                stats.add_retries(1)
                stats.add_backoff(0.5)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.retries == n_threads * per_thread
        assert stats.backoff_seconds == pytest.approx(n_threads * per_thread * 0.5)

    def test_short_circuit_recorded_in_one_atomic_update(self):
        stats = ClientStats()
        stats.record(HTTPStatus.SERVICE_UNAVAILABLE, "down.example", short_circuited=True)
        assert stats.requests == 1
        assert stats.failed == 1
        assert stats.short_circuited == 1
        assert stats.by_domain == {"down.example": 1}


# --------------------------------------------------------------------- #
# Frozen shared caches
# --------------------------------------------------------------------- #
def _tiny_registry(seed: int = 7, **overrides) -> FediverseRegistry:
    config = scenario_config("tiny", seed=seed, **overrides)
    return FediverseGenerator(config).generate().registry


def _find_frozen_list(value):
    """Return some list nested inside a frozen payload (depth-first)."""
    if isinstance(value, list):
        return value
    try:
        items = value.items()
    except AttributeError:
        return None
    for nested in items:
        found = _find_frozen_list(nested[1])
        if found is not None:
            return found
    return None


class TestFrozenCaches:
    def test_freeze_json_equals_original_and_rejects_mutation(self):
        payload = {"a": [1, {"b": [2, 3]}], "c": {"d": "e"}}
        frozen = freeze_json(payload)
        assert frozen == payload
        assert payload == frozen
        with pytest.raises(TypeError):
            frozen["c"]["d"] = "x"
        with pytest.raises(TypeError):
            frozen["a"].append(4)
        with pytest.raises(TypeError):
            frozen["a"][1]["b"][0] = 9
        assert isinstance(frozen["a"], FrozenList)
        assert list(frozen["a"]) == payload["a"]

    def test_cached_metadata_payload_is_frozen_and_shared(self):
        registry = _tiny_registry()
        server = FediverseAPIServer(registry)
        domain = sorted(
            instance.domain
            for instance in registry.instances()
            if instance.availability.ok
        )[0]

        batched = server.handle_batch(domain, [INSTANCE_PATH])[0]
        single = server.get(domain, INSTANCE_PATH)
        # Frozen cached payload stays == to the stateless path's fresh dict.
        assert batched.body == single.body
        # The cache hands the same frozen object to every batch caller.
        again = server.handle_batch(domain, [INSTANCE_PATH])[0]
        assert again.body is batched.body
        # No caller can corrupt what the others see.
        with pytest.raises(TypeError):
            batched.body["title"] = "defaced"
        with pytest.raises(TypeError):
            batched.body["stats"]["user_count"] = 10**9
        # Somewhere in the population a payload nests a list (an exposed MRF
        # policy's reject list); it must be frozen too.
        nested_list = None
        for candidate in sorted(
            instance.domain
            for instance in registry.instances()
            if instance.availability.ok
        ):
            body = server.handle_batch(candidate, [INSTANCE_PATH])[0].body
            nested_list = _find_frozen_list(body)
            if nested_list is not None:
                break
        assert nested_list is not None
        with pytest.raises(TypeError):
            nested_list.append("defaced")

    def test_error_cache_shares_one_frozen_response(self):
        registry = FediverseRegistry()
        for domain in ("down1.example", "down2.example"):
            registry.create_instance(domain, install_default_policies=False)
            registry.set_availability(domain, 502, "bad gateway")
        server = FediverseAPIServer(registry)

        first, second = server.metadata_round(["down1.example", "down2.example"])
        assert first is second  # same (status, reason) -> one shared object
        assert int(first.status) == 502
        with pytest.raises(TypeError):
            first.body["error"] = "defaced"
        # The batch path shares the same cache.
        batched = server.handle_batch("down1.example", [INSTANCE_PATH])[0]
        assert batched is first


class TestErrorCacheChurn:
    def test_availability_flip_serves_the_new_status(self):
        """A churned instance must never be served from a stale error entry.

        The ``(status, reason)`` key is derived from the availability *at
        the serving instant*, so the 200→503 flip selects a different
        cache entry instead of going stale.
        """
        registry = FediverseRegistry()
        instance = registry.create_instance(
            "flappy.example", install_default_policies=False
        )
        instance.register_user("bird")
        instance.publish("bird", "still up")
        flip_at = registry.clock.now() + 100.0
        instance.availability = InstanceAvailability(200, "", down_after=flip_at)
        server = FediverseAPIServer(registry)

        before = server.metadata_round(["flappy.example"])[0]
        assert before.ok

        registry.clock.advance(200.0)
        after = server.metadata_round(["flappy.example"])[0]
        assert int(after.status) == 503
        assert after.body["error"] == "instance went offline mid-campaign"
        # The post-flip error is itself cached and shared, frozen.
        repeat = server.metadata_round(["flappy.example"])[0]
        assert repeat is after
        batched = server.handle_batch("flappy.example", [INSTANCE_PATH])[0]
        assert batched is after

    def test_metadata_cache_survives_the_flip_window(self):
        """Pre-flip 200 payloads come from the cache; post-flip they must not."""
        registry = FediverseRegistry()
        instance = registry.create_instance(
            "flappy.example", install_default_policies=False
        )
        flip_at = registry.clock.now() + 100.0
        instance.availability = InstanceAvailability(200, "", down_after=flip_at)
        server = FediverseAPIServer(registry)

        first = server.metadata_round(["flappy.example"])[0]
        second = server.metadata_round(["flappy.example"])[0]
        assert second is first  # fingerprint unchanged -> cached response
        registry.clock.advance(200.0)
        down = server.metadata_round(["flappy.example"])[0]
        assert not down.ok  # the cached 200 is not served past the flip


# --------------------------------------------------------------------- #
# RequestExecutor
# --------------------------------------------------------------------- #
class TestRequestExecutor:
    def test_results_come_back_in_task_order(self):
        with RequestExecutor(threads=4) as executor:
            tasks = []
            for index in range(16):

                def task(index=index):
                    # Later tasks finish earlier; gather order must not care.
                    threading.Event().wait((15 - index) * 0.002)
                    return index

                tasks.append(task)
            assert executor.run(tasks) == list(range(16))

    def test_single_thread_runs_inline(self):
        executor = RequestExecutor(threads=1)
        main_thread = threading.current_thread()
        ran_on = executor.run([threading.current_thread] * 3)
        assert ran_on == [main_thread] * 3
        assert executor._pool is None

    def test_thread_count_validated(self):
        with pytest.raises(ValueError):
            RequestExecutor(threads=0)
        with pytest.raises(ValueError):
            ConcurrentMeasurementCampaign(FediverseRegistry(), threads=0)

    def test_partition_is_contiguous_and_complete(self):
        items = [f"d{index:03d}" for index in range(11)]
        for parts in (1, 2, 3, 8, 16):
            slices = _partition(items, parts)
            assert len(slices) == parts
            assert [item for part in slices for item in part] == items
            sizes = [len(part) for part in slices]
            assert max(sizes) - min(sizes) <= 1


# --------------------------------------------------------------------- #
# Concurrent campaign equivalence
# --------------------------------------------------------------------- #
class TestConcurrentCampaignEquivalence:
    @pytest.mark.parametrize("trial_seed", [11, 23, 37])
    def test_twin_run_fuzz_matches_sequential_engine(self, trial_seed):
        """Randomised scenarios x 1/2/8 threads: merged result bit-identical.

        Each trial draws a population size (and, on some trials, churn)
        from the trial seed, runs the sequential engine on one generated
        fediverse, then the concurrent engine at every thread count on
        bit-identical twins — every :class:`CrawlResult` field, the
        assembled dataset included, must match exactly.
        """
        rng = random.Random(trial_seed)
        overrides = {"n_pleroma_instances": rng.randint(12, 30)}
        if rng.random() < 0.5:
            overrides["instance_churn_rate"] = 0.25
        # Half the trials crawl an activity-mix population (boosts,
        # favourites, reply threads, UA-blocking instances) — the crawl
        # surface the protocol subsystem adds must merge identically too.
        if rng.random() < 0.5:
            overrides.update(
                federation_announce_share=rng.choice([0.3, 0.5]),
                federation_like_share=rng.choice([0.2, 0.4]),
                reply_thread_share=rng.choice([0.0, 0.1]),
                ua_blocking_share=rng.choice([0.0, 0.1]),
            )
        config = scenario_config("tiny", seed=trial_seed, **overrides)
        campaign_config = CampaignConfig(
            duration_days=1.0, snapshot_interval_hours=6.0
        )

        registry = FediverseGenerator(config).generate().registry
        sequential = MeasurementCampaign(registry, campaign_config).run()
        reference = _crawl_state(sequential)

        for threads in (1, 2, 8):
            twin = FediverseGenerator(config).generate().registry
            with ConcurrentMeasurementCampaign(
                twin, campaign_config, threads=threads
            ) as campaign:
                concurrent = campaign.run()
            assert _crawl_state(concurrent) == reference, (
                f"{threads}-thread crawl diverged (trial seed {trial_seed})"
            )

    def test_sink_event_stream_matches_sequential(self):
        """Counting sinks observe the same campaign either way."""
        config = scenario_config("tiny", seed=5, n_pleroma_instances=16)
        campaign_config = CampaignConfig(
            duration_days=1.0, snapshot_interval_hours=6.0
        )

        registry = FediverseGenerator(config).generate().registry
        sequential_sink = CountingCrawlSink()
        MeasurementCampaign(
            registry, campaign_config, sinks=[sequential_sink]
        ).run()

        twin = FediverseGenerator(config).generate().registry
        concurrent_sink = CountingCrawlSink()
        with ConcurrentMeasurementCampaign(
            twin, campaign_config, threads=4, sinks=[concurrent_sink]
        ) as campaign:
            campaign.run()

        assert concurrent_sink.snapshots == sequential_sink.snapshots
        assert concurrent_sink.failures == sequential_sink.failures
        assert (
            concurrent_sink.failures_by_status
            == sequential_sink.failures_by_status
        )
        assert concurrent_sink.timelines == sequential_sink.timelines
        assert concurrent_sink.posts == sequential_sink.posts
        assert (
            concurrent_sink.unreachable_timelines
            == sequential_sink.unreachable_timelines
        )


# --------------------------------------------------------------------- #
# Load harness
# --------------------------------------------------------------------- #
class TestLoadHarness:
    def test_percentile_nearest_rank(self):
        assert percentile([], 99.0) == 0.0
        assert percentile([5.0], 50.0) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 99.0) == 4.0

    def test_load_report_is_sane_and_accounting_matches(self):
        config = scenario_config("tiny", seed=9, n_pleroma_instances=14)
        campaign_config = CampaignConfig(
            duration_days=1.0, snapshot_interval_hours=6.0
        )
        registry = FediverseGenerator(config).generate().registry
        report, result = run_load(registry, campaign_config, threads=2)

        assert report.threads == 2
        assert report.transport_calls > 0
        assert report.wall_seconds > 0
        assert 0.0 <= report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.p99_ms <= report.max_ms
        assert report.tail_amplification >= 1.0
        assert report.requests_per_second > 0
        # Every accounted API request passed through the recorded transport.
        assert report.api_requests == result.api_requests

    def test_recording_transport_counts_batch_requests(self):
        registry = _tiny_registry(seed=3, n_pleroma_instances=12)
        transport = LatencyRecordingTransport(FediverseAPIServer(registry))
        client = APIClient(transport)
        domain = sorted(
            instance.domain
            for instance in registry.instances()
            if instance.availability.ok
        )[0]
        client.get_many(domain, (INSTANCE_PATH, INSTANCE_PATH))
        assert transport.requests == 2
        assert len(transport.samples) == 1
        client.get(domain, INSTANCE_PATH)
        assert transport.requests == 3
        assert len(transport.samples) == 2
