"""Tests for the fault-injection subsystem and the resilient client.

The contract under test is the package's determinism story plus its
inertness proof: a zero-fault plan wraps nothing and a resilient campaign
under it is bit-identical to the plain engine; a fixed fault seed replays
bit-identically; every retry attempt is accounted exactly once on every
transport path; and the graceful-degradation machinery (round retries,
partial snapshots) only ever acts on fault-attributed failures.
"""

from __future__ import annotations

import random

import pytest

from repro.api.client import APIClient, APIError
from repro.api.http import (
    ATTEMPTS_HEADER,
    FAULT_HEADER,
    RETRY_AFTER_HEADER,
    HTTPResponse,
    HTTPStatus,
)
from repro.api.server import FediverseAPIServer
from repro.crawler.campaign import CampaignConfig, MeasurementCampaign
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
)
from repro.faults.plan import DomainFaultSchedule, compile_for_campaign
from repro.fediverse.registry import FediverseRegistry
from repro.synth.scenario import scenario_config
from repro.synth.generator import FediverseGenerator

from test_crawl_engine import crawl_state


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #
def build_registry(domains: tuple[str, ...] = ("alpha.example", "beta.example")):
    """A small healthy fediverse: every instance crawlable, with posts."""
    registry = FediverseRegistry()
    for index, domain in enumerate(domains):
        instance = registry.create_instance(domain)
        instance.register_user("poster")
        for post in range(3 + index):
            instance.publish("poster", f"post {post} from {domain}")
    return registry


def always_faulted_plan(
    domain: str, kind: FaultKind, retry_after: float | None = None
) -> FaultPlan:
    """A plan whose one schedule faults ``domain`` on every request."""
    spec = FaultSpec(transient_share=1.0)  # non-inert marker; windows below rule
    schedule = DomainFaultSchedule(domain=domain, rng=random.Random(0))
    window = [(0.0, 1e12)]
    if kind is FaultKind.TRANSIENT:
        schedule.transient_windows = window
    elif kind is FaultKind.RATE_LIMIT:
        schedule.rate_limit_windows = window
    elif kind is FaultKind.FLAP:
        schedule.flap = (0.0, 1e12, 1e12)
    else:
        raise ValueError(f"unsupported always-on kind {kind}")
    if retry_after is not None:
        spec = FaultSpec(transient_share=1.0, rate_limit_retry_after=retry_after)
    return FaultPlan(spec, {domain: schedule})


# --------------------------------------------------------------------- #
# FaultSpec / FaultPlan
# --------------------------------------------------------------------- #
class TestFaultSpec:
    def test_default_spec_is_inert(self):
        assert FaultSpec().inert
        assert FaultSpec.none().inert

    def test_profiles_are_not_inert(self):
        for name in ("light", "mixed", "heavy"):
            assert not FaultSpec.profile(name).inert

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultSpec.profile("hurricane")

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(timeout_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(flap_period_seconds=0.0)


class TestFaultPlan:
    def test_inert_plan_wraps_nothing(self):
        registry = build_registry()
        server = FediverseAPIServer(registry)
        plan = FaultPlan.compile(FaultSpec.none(), registry.domains, 0.0, 3600.0)
        assert plan.inert
        assert plan.schedules == {}
        assert plan.wrap(server) is server

    def test_compile_is_deterministic_and_order_independent(self):
        domains = [f"node-{i}.example" for i in range(40)]
        spec = FaultSpec.profile("mixed", seed=11)

        def schedules(ordering):
            plan = FaultPlan.compile(spec, ordering, 100.0, 7 * 86400.0)
            return {
                domain: (
                    schedule.transient_windows,
                    schedule.rate_limit_windows,
                    schedule.flap,
                )
                for domain, schedule in plan.schedules.items()
            }

        forward = schedules(domains)
        shuffled = list(domains)
        random.Random(3).shuffle(shuffled)
        assert forward == schedules(shuffled)

    def test_seed_changes_the_plan(self):
        domains = [f"node-{i}.example" for i in range(40)]
        plan_a = FaultPlan.compile(FaultSpec.profile("mixed", seed=1), domains, 0.0, 86400.0)
        plan_b = FaultPlan.compile(FaultSpec.profile("mixed", seed=2), domains, 0.0, 86400.0)
        windows = lambda plan: {
            d: s.transient_windows for d, s in plan.schedules.items()
        }
        assert windows(plan_a) != windows(plan_b)

    def test_window_membership(self):
        schedule = DomainFaultSchedule(
            domain="x", rng=random.Random(0),
            transient_windows=[(10.0, 20.0), (30.0, 40.0)],
        )
        assert not schedule.transient_at(9.9)
        assert schedule.transient_at(10.0)
        assert schedule.transient_at(19.9)
        assert not schedule.transient_at(20.0)
        assert schedule.transient_at(35.0)
        assert not schedule.transient_at(50.0)


# --------------------------------------------------------------------- #
# Injected fault kinds, end to end through the client
# --------------------------------------------------------------------- #
class TestInjectedFaults:
    def test_transient_window_is_retried_and_attributed(self):
        registry = build_registry()
        server = FediverseAPIServer(registry)
        plan = always_faulted_plan("alpha.example", FaultKind.TRANSIENT)
        client = APIClient(plan.wrap(server), retry=RetryPolicy(max_attempts=3))
        with pytest.raises(APIError) as excinfo:
            client.instance_metadata("alpha.example")
        assert int(excinfo.value.status) == 500
        assert excinfo.value.fault_kind == "transient"
        assert excinfo.value.attempts == 3
        # The untouched sibling is unaffected.
        assert client.instance_metadata("beta.example")["uri"] == "beta.example"

    def test_rate_limit_honours_retry_after(self):
        registry = build_registry()
        server = FediverseAPIServer(registry)
        plan = always_faulted_plan(
            "alpha.example", FaultKind.RATE_LIMIT, retry_after=45.0
        )
        client = APIClient(plan.wrap(server), retry=RetryPolicy(max_attempts=3))
        start = registry.clock.now()
        response = client.get("alpha.example", "/api/v1/instance")
        assert int(response.status) == 429
        assert response.retry_after == 45.0
        # Two waits of exactly Retry-After seconds, on the simulated clock.
        assert registry.clock.now() - start == pytest.approx(90.0)
        assert client.stats.backoff_seconds == pytest.approx(90.0)

    def test_timeout_charges_the_simulated_clock(self):
        registry = build_registry(("alpha.example",))
        server = FediverseAPIServer(registry)
        spec = FaultSpec(timeout_rate=1.0, timeout_seconds=30.0)
        plan = FaultPlan.compile(spec, registry.domains, 0.0, 1e9)
        client = APIClient(plan.wrap(server))  # no retry policy
        start = registry.clock.now()
        response = client.get("alpha.example", "/api/v1/instance")
        assert int(response.status) == 504
        assert response.fault_kind == "timeout"
        assert registry.clock.now() - start == pytest.approx(30.0)

    def test_malformed_body_surfaces_as_502(self):
        registry = build_registry(("alpha.example",))
        server = FediverseAPIServer(registry)
        spec = FaultSpec(malformed_rate=1.0)
        plan = FaultPlan.compile(spec, registry.domains, 0.0, 1e9)
        client = APIClient(plan.wrap(server), retry=RetryPolicy(max_attempts=2))
        with pytest.raises(APIError) as excinfo:
            client.instance_metadata("alpha.example")
        assert int(excinfo.value.status) == 502
        assert excinfo.value.fault_kind == "malformed"
        assert excinfo.value.attempts == 2
        # Wire stats saw the client-visible 502s, one per attempt.
        assert client.stats.by_status == {502: 2}

    def test_flap_is_not_client_retried(self):
        registry = build_registry(("alpha.example",))
        server = FediverseAPIServer(registry)
        plan = always_faulted_plan("alpha.example", FaultKind.FLAP)
        client = APIClient(plan.wrap(server), retry=RetryPolicy(max_attempts=5))
        with pytest.raises(APIError) as excinfo:
            client.instance_metadata("alpha.example")
        # 503 with no Retry-After: indistinguishable from a dead instance,
        # so the client must not burn retries on it.
        assert int(excinfo.value.status) == 503
        assert excinfo.value.attempts == 1
        assert client.stats.retries == 0

    def test_truncated_timeline_is_silent(self):
        registry = build_registry(("alpha.example",))
        instance = registry.get("alpha.example")
        for extra in range(17):
            instance.publish("poster", f"filler {extra}")
        server = FediverseAPIServer(registry)
        full = APIClient(server).stream_timeline("alpha.example", page_size=5)
        spec = FaultSpec(truncate_rate=1.0, truncate_keep_share=0.5)
        plan = FaultPlan.compile(spec, registry.domains, 0.0, 1e9)
        injector = plan.wrap(server)
        truncated = APIClient(injector).stream_timeline("alpha.example", page_size=5)
        assert truncated.ok
        assert 0 < len(truncated.statuses) < len(full.statuses)
        assert truncated.statuses == full.statuses[: len(truncated.statuses)]
        assert injector.stats.truncated_posts == len(full.statuses) - len(
            truncated.statuses
        )

    def test_injector_decisions_are_per_domain_streams(self):
        """A domain's fault sequence ignores other domains' request history."""
        spec = FaultSpec(timeout_rate=0.3)

        def statuses(extra_traffic: bool) -> list[int]:
            registry = build_registry()
            server = FediverseAPIServer(registry)
            plan = FaultPlan.compile(spec, registry.domains, 0.0, 1e9)
            client = APIClient(plan.wrap(server))
            out = []
            for _ in range(20):
                if extra_traffic:
                    client.get("beta.example", "/api/v1/instance")
                out.append(int(client.get("alpha.example", "/api/v1/instance").status))
            return out

        assert statuses(False) == statuses(True)


# --------------------------------------------------------------------- #
# Retry policy, budget, breaker
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(
            base_backoff_seconds=2.0,
            backoff_multiplier=3.0,
            max_backoff_seconds=10.0,
            jitter=0.0,
        )
        rng = random.Random(0)
        assert policy.backoff_seconds(1, rng) == 2.0
        assert policy.backoff_seconds(2, rng) == 6.0
        assert policy.backoff_seconds(3, rng) == 10.0  # capped
        assert policy.backoff_seconds(9, rng) == 10.0

    def test_retry_after_wins_when_honoured(self):
        policy = RetryPolicy(base_backoff_seconds=1.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.backoff_seconds(1, rng, retry_after=120.0) == 120.0
        frugal = RetryPolicy(honour_retry_after=False, jitter=0.0)
        assert frugal.backoff_seconds(1, rng, retry_after=120.0) == 1.0

    def test_jitter_is_deterministic_per_domain(self):
        policy = RetryPolicy(seed=7)
        a1 = [policy.jitter_stream("alpha").random() for _ in range(5)]
        a2 = [policy.jitter_stream("alpha").random() for _ in range(5)]
        b = [policy.jitter_stream("beta").random() for _ in range(5)]
        assert a1 == a2
        assert a1 != b

    def test_budget_bounds_retries_per_domain(self):
        registry = build_registry(("alpha.example",))
        server = FediverseAPIServer(registry)
        plan = always_faulted_plan("alpha.example", FaultKind.TRANSIENT)
        client = APIClient(
            plan.wrap(server),
            retry=RetryPolicy(max_attempts=5, retry_budget_per_domain=3),
        )
        client.get("alpha.example", "/api/v1/instance")  # 1 + 3 retries
        assert client.stats.retries == 3
        client.get("alpha.example", "/api/v1/instance")  # budget exhausted
        assert client.stats.retries == 3
        assert client.stats.requests == 5

    def test_breaker_opens_and_recovers(self):
        registry = build_registry(("alpha.example",))
        server = FediverseAPIServer(registry)
        plan = always_faulted_plan("alpha.example", FaultKind.TRANSIENT)
        policy = RetryPolicy(
            max_attempts=1, breaker_threshold=2, breaker_cooldown_seconds=100.0
        )
        client = APIClient(plan.wrap(server), retry=policy)
        client.get("alpha.example", "/api/v1/instance")
        client.get("alpha.example", "/api/v1/instance")  # threshold reached
        blocked = client.get("alpha.example", "/api/v1/instance")
        assert blocked.fault_kind == FaultKind.CIRCUIT_OPEN.value
        assert client.stats.short_circuited == 1
        registry.clock.advance(100.0)
        trial = client.get("alpha.example", "/api/v1/instance")  # half-open
        assert trial.fault_kind == "transient"  # reached the transport again

    def test_breaker_never_opens_without_faults(self):
        registry = build_registry(("alpha.example",))
        registry.set_availability("alpha.example", 404, "not found")
        server = FediverseAPIServer(registry)
        client = APIClient(server, retry=RetryPolicy(breaker_threshold=1))
        for _ in range(5):
            response = client.get("alpha.example", "/api/v1/instance")
            assert int(response.status) == 404  # permanent, never short-circuited
        assert client.stats.short_circuited == 0
        assert client.stats.retries == 0


# --------------------------------------------------------------------- #
# Satellite: frozen shared error responses
# --------------------------------------------------------------------- #
class TestFrozenErrorResponses:
    def test_error_body_and_headers_are_immutable(self):
        response = HTTPResponse.error(
            HTTPStatus.SERVICE_UNAVAILABLE, "down", {RETRY_AFTER_HEADER: "5"}
        )
        with pytest.raises(TypeError):
            response.body["error"] = "mutated"
        with pytest.raises(TypeError):
            response.headers[FAULT_HEADER] = "mutated"

    def test_shared_batch_error_cannot_corrupt_siblings(self):
        registry = build_registry(("alpha.example",))
        registry.set_availability("alpha.example", 502, "bad gateway")
        server = FediverseAPIServer(registry)
        first, second = server.handle_batch(
            "alpha.example", ("/api/v1/instance", "/nodeinfo/2.0")
        )
        assert first is second  # the cache shares one frozen object
        with pytest.raises(TypeError):
            first.body["error"] = "corrupted"
        assert second.body["error"] == "bad gateway"


# --------------------------------------------------------------------- #
# Satellite: malformed query params stop at the router boundary
# --------------------------------------------------------------------- #
class TestRouterBoundary:
    def test_bad_int_param_returns_400(self):
        registry = build_registry(("alpha.example",))
        server = FediverseAPIServer(registry)
        response = server.get(
            "alpha.example", "/api/v1/timelines/public?limit=abc"
        )
        assert int(response.status) == 400
        assert "limit" in response.body["error"]

    def test_bad_int_param_in_batch_returns_400(self):
        registry = build_registry(("alpha.example",))
        server = FediverseAPIServer(registry)
        good, bad = server.handle_batch(
            "alpha.example",
            (
                "/api/v1/timelines/public?limit=5",
                "/api/v1/timelines/public?limit=oops",
            ),
        )
        assert good.ok
        assert int(bad.status) == 400


# --------------------------------------------------------------------- #
# Satellite: accounting parity under retries, across transport paths
# --------------------------------------------------------------------- #
class TestRetryAccounting:
    def _faulted_client(self) -> APIClient:
        registry = build_registry()
        server = FediverseAPIServer(registry)
        plan = always_faulted_plan("alpha.example", FaultKind.TRANSIENT)
        return APIClient(plan.wrap(server), retry=RetryPolicy(max_attempts=3))

    @staticmethod
    def _stats_tuple(client: APIClient):
        stats = client.stats
        return (stats.requests, stats.ok, stats.failed, stats.by_status,
                stats.by_domain, stats.retries)

    def test_each_attempt_counted_once_get_vs_get_many(self):
        paths = ("/api/v1/instance", "/nodeinfo/2.0")

        sequential = self._faulted_client()
        for path in paths:
            sequential.get("alpha.example", path)
        batched = self._faulted_client()
        batched.get_many("alpha.example", paths)

        # 2 logical requests x 3 attempts each, identically on both paths.
        assert self._stats_tuple(sequential) == self._stats_tuple(batched)
        assert sequential.stats.requests == 6
        assert sequential.stats.by_domain == {"alpha.example": 6}
        assert sequential.stats.by_status == {500: 6}
        assert sequential.stats.retries == 4

    def test_each_attempt_counted_once_stream_vs_get(self):
        sequential = self._faulted_client()
        sequential.get("alpha.example", "/api/v1/timelines/public?local=true&limit=40")
        streamed = self._faulted_client()
        stream = streamed.stream_timeline("alpha.example")
        assert stream.attempts == 3
        assert self._stats_tuple(sequential) == self._stats_tuple(streamed)
        assert streamed.stats.by_domain == {"alpha.example": 3}

    def test_metadata_many_counts_like_get(self):
        sequential = self._faulted_client()
        sequential.get("alpha.example", "/api/v1/instance")
        sequential.get("beta.example", "/api/v1/instance")
        rounded = self._faulted_client()
        rounded.metadata_many(["alpha.example", "beta.example"])
        assert self._stats_tuple(sequential) == self._stats_tuple(rounded)
        # Faulted alpha: 3 attempts; healthy beta: 1.
        assert rounded.stats.by_domain == {"alpha.example": 3, "beta.example": 1}

    def test_annotated_failure_reaches_crawl_records(self):
        registry = build_registry(("alpha.example",))
        server = FediverseAPIServer(registry)
        plan = always_faulted_plan("alpha.example", FaultKind.TRANSIENT)
        client = APIClient(plan.wrap(server), retry=RetryPolicy(max_attempts=3))
        response = client.get("alpha.example", "/api/v1/instance")
        assert response.header(ATTEMPTS_HEADER) == "3"

        from repro.crawler.crawler import InstanceCrawler

        crawler = InstanceCrawler(client)
        assert crawler.snapshot_many(["alpha.example"], now=0.0) == {}
        (failure,) = crawler.failures
        assert failure.attempts == 3
        assert failure.fault_kind == "transient"


# --------------------------------------------------------------------- #
# Campaign-level gates: inertness, determinism, degradation
# --------------------------------------------------------------------- #
def _campaign_config(config) -> CampaignConfig:
    return CampaignConfig(
        duration_days=min(config.campaign_days, 2.0),
        snapshot_interval_hours=config.snapshot_interval_hours,
        keep_all_snapshots=True,
    )


def _run(config, faults=None, resilience=None):
    registry = FediverseGenerator(config).generate().registry
    campaign = MeasurementCampaign(
        registry,
        _campaign_config(config),
        faults=faults,
        resilience=resilience,
    )
    return campaign, campaign.assemble(campaign.crawl())


class TestZeroFaultInertness:
    def test_resilient_zero_fault_campaign_matches_plain_engine(self):
        config = scenario_config("tiny", seed=5)
        _, plain = _run(config)
        campaign, resilient = _run(
            config,
            faults=FaultSpec.none(),
            resilience=ResilienceConfig.default(),
        )
        assert campaign.transport is campaign.server
        assert crawl_state(resilient) == crawl_state(plain)

    def test_resilient_zero_fault_campaign_matches_under_churn(self):
        config = scenario_config(
            "churn", seed=9, n_pleroma_instances=60, campaign_days=2.0
        )
        _, plain = _run(config)
        _, resilient = _run(
            config,
            faults=FaultSpec.none(),
            resilience=ResilienceConfig.default(),
        )
        assert crawl_state(resilient) == crawl_state(plain)


class TestChurnFaultFuzz:
    """Satellite: churn + faults twin campaigns replay bit-identically."""

    def test_twin_campaigns_replay_bit_identically(self):
        fuzz = random.Random(1234)
        for trial in range(3):
            seed = fuzz.randrange(10_000)
            fault_seed = fuzz.randrange(10_000)
            profile = fuzz.choice(["light", "mixed", "heavy"])
            config = scenario_config(
                "churn",
                seed=seed,
                n_pleroma_instances=fuzz.choice([40, 60]),
                campaign_days=2.0,
                instance_churn_rate=fuzz.choice([0.2, 0.4]),
            )
            states = []
            for _ in range(2):
                campaign, result = _run(
                    config,
                    faults=FaultSpec.profile(profile, seed=fault_seed),
                    resilience=ResilienceConfig.default(),
                )
                assert isinstance(campaign.transport, FaultInjector)
                states.append(crawl_state(result))
            assert states[0] == states[1], (
                f"trial {trial}: twin faulted campaigns diverged "
                f"(seed={seed}, fault_seed={fault_seed}, profile={profile})"
            )

    def test_fault_seed_changes_the_crawl(self):
        config = scenario_config(
            "churn", seed=21, n_pleroma_instances=60, campaign_days=2.0
        )
        _, a = _run(
            config,
            faults=FaultSpec.profile("mixed", seed=1),
            resilience=ResilienceConfig.default(),
        )
        _, b = _run(
            config,
            faults=FaultSpec.profile("mixed", seed=2),
            resilience=ResilienceConfig.default(),
        )
        assert crawl_state(a) != crawl_state(b)


class TestGracefulDegradation:
    def test_round_retry_only_fires_on_fault_attributed_failures(self):
        config = scenario_config("tiny", seed=5)
        campaign, _ = _run(
            config,
            faults=FaultSpec.none(),
            resilience=ResilienceConfig.default(),
        )
        assert campaign.round_retried == 0

        faulted, _ = _run(
            config,
            faults=FaultSpec.profile("heavy", seed=3),
            resilience=ResilienceConfig.default(),
        )
        assert faulted.round_retried > 0

    def test_degraded_domains_keep_their_snapshots(self):
        config = scenario_config("tiny", seed=5)
        _, result = _run(
            config,
            faults=FaultSpec.profile("mixed", seed=3),
            resilience=ResilienceConfig.default(),
        )
        for domain in result.degraded_domains:
            assert domain in result.latest_snapshots

    def test_experiment_pipeline_wires_the_scenario_fault_profile(self):
        from repro.experiments.pipeline import ReproPipeline

        faulted = ReproPipeline(scenario="chaos", campaign_days=0.5)
        result = faulted.crawl
        # The chaos scenario's mixed profile actually fired through the
        # runner path: some failures carry fault attribution.
        assert any(f.fault_kind for f in result.failures)

        plain = ReproPipeline(scenario="tiny", campaign_days=0.5)
        assert not any(f.fault_kind for f in plain.crawl.failures)

    def test_compile_for_campaign_covers_the_registry(self):
        config = scenario_config("tiny", seed=5)
        registry = FediverseGenerator(config).generate().registry
        plan = compile_for_campaign(
            FaultSpec.profile("mixed"), registry, duration_days=2.0
        )
        assert set(plan.schedules) <= set(registry.domains)
        assert plan.schedules  # mixed profile afflicts every domain per-request
