"""Tests for the simulation clock and software-kind helpers."""

from __future__ import annotations

import pytest

from repro.fediverse.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimulationClock
from repro.fediverse.software import (
    SoftwareKind,
    parse_version,
    version_has_default_policies,
)


class TestSimulationClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now() == 0.0

    def test_custom_start(self):
        assert SimulationClock(start=50.0).now() == 50.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(start=-1.0)

    def test_advance(self):
        clock = SimulationClock()
        assert clock.advance(10.0) == 10.0
        assert clock.now() == 10.0

    def test_advance_backwards_rejected(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            clock.advance(-5.0)

    def test_advance_to(self):
        clock = SimulationClock()
        clock.advance_to(100.0)
        assert clock.now() == 100.0
        with pytest.raises(ValueError):
            clock.advance_to(50.0)

    def test_elapsed_days(self):
        clock = SimulationClock()
        clock.advance(2 * SECONDS_PER_DAY)
        assert clock.elapsed_days() == pytest.approx(2.0)

    def test_constants(self):
        assert SECONDS_PER_DAY == 24 * SECONDS_PER_HOUR


class TestSoftwareKind:
    def test_pleroma_flags(self):
        assert SoftwareKind.PLEROMA.is_pleroma
        assert SoftwareKind.PLEROMA.exposes_mrf

    def test_mastodon_does_not_expose_mrf(self):
        assert not SoftwareKind.MASTODON.exposes_mrf

    def test_from_string_known(self):
        assert SoftwareKind.from_string("Mastodon") is SoftwareKind.MASTODON

    def test_from_string_unknown_defaults_to_other(self):
        assert SoftwareKind.from_string("gnu-social") is SoftwareKind.OTHER


class TestVersionParsing:
    def test_parse_plain_version(self):
        assert parse_version("2.2.2") == (2, 2, 2)

    def test_parse_version_with_suffix(self):
        assert parse_version("2.2.1-develop") == (2, 2, 1)

    def test_parse_garbage(self):
        assert parse_version("weird") == (0,)

    def test_default_policy_cutoff(self):
        assert version_has_default_policies("2.1.0")
        assert version_has_default_policies("2.3.0")
        assert not version_has_default_policies("2.0.7")
