"""Tests for the delivery batch-reject fast path and the visibility precheck."""

from __future__ import annotations

import random

from repro.activitypub.activities import create_activity, delete_activity
from repro.activitypub.delivery import FederationDelivery
from repro.fediverse.instance import Instance
from repro.fediverse.post import Post, Visibility
from repro.fediverse.registry import FediverseRegistry
from repro.mrf.noop import NoOpPolicy
from repro.mrf.object_age import ObjectAgePolicy
from repro.mrf.pipeline import MRFPipeline
from repro.mrf.simple import SimplePolicy
from repro.mrf.visibility import RejectNonPublic


def make_post(domain="origin.example", created_at=0.0, **kwargs):
    return Post(
        post_id=f"{domain}-{random.randrange(10**9)}",
        author=f"user@{domain}",
        domain=domain,
        content=kwargs.pop("content", "a perfectly ordinary post"),
        created_at=created_at,
        **kwargs,
    )


def make_activity(domain="origin.example", created_at=0.0, **kwargs):
    return create_activity(make_post(domain=domain, created_at=created_at, **kwargs))


def event_view(pipeline):
    return [
        (e.timestamp, e.origin_domain, e.policy, e.action, e.activity_type, e.accepted, e.reason)
        for e in pipeline.events
    ]


class TestUnconditionalReject:
    def test_reject_set_is_unconditional(self):
        policy = SimplePolicy(reject=["bad.example"])
        assert policy.unconditional_reject("bad.example", "local.example") == (
            "reject",
            "all activities from bad.example are rejected",
        )
        assert policy.unconditional_reject("fine.example", "local.example") is None

    def test_accept_list_miss_is_unconditional(self):
        policy = SimplePolicy(accept=["friend.example"])
        hit = policy.unconditional_reject("stranger.example", "local.example")
        assert hit == ("accept", "stranger.example is not on the accept list")
        assert policy.unconditional_reject("friend.example", "local.example") is None
        # The local origin bypasses the accept list, as in filter().
        assert policy.unconditional_reject("local.example", "local.example") is None

    def test_type_gated_actions_are_not_unconditional(self):
        policy = SimplePolicy(reject_deletes=["bad.example"], report_removal=["bad.example"])
        assert policy.unconditional_reject("bad.example", "local.example") is None

    def test_wildcard_reject_is_unconditional(self):
        policy = SimplePolicy(reject=["*.bad.example"])
        assert policy.unconditional_reject("sub.bad.example", "local.example") is not None


class TestPipelineApplyBatch:
    def test_shared_reject_matches_per_activity_filtering(self):
        shared_kwargs = dict(local_domain="local.example")
        fast = MRFPipeline(**shared_kwargs)
        slow = MRFPipeline(**shared_kwargs)
        for pipeline in (fast, slow):
            pipeline.add_policy(SimplePolicy(reject=["bad.example"]))
            pipeline.add_policy(ObjectAgePolicy(threshold=100.0, actions=("delist",)))
        activities = [make_activity("bad.example") for _ in range(5)]

        shared, decisions, rewrites = fast.apply_batch(
            activities, "bad.example", now=50.0
        )
        assert shared == (
            "SimplePolicy",
            "reject",
            "all activities from bad.example are rejected",
        )
        assert decisions is None and rewrites == 0
        slow_decisions = [slow.filter(a, now=50.0) for a in activities]
        assert all(d.rejected for d in slow_decisions)
        assert event_view(fast) == event_view(slow)

    def test_stale_batch_shares_rewrites_before_the_terminal_reject(self):
        """ObjectAge first, SimplePolicy-reject second: the stale posts'
        rewrite events must precede each terminal reject event, exactly as
        the uncompiled walk logs them."""
        now = 500.0

        def build():
            pipeline = MRFPipeline(local_domain="local.example")
            pipeline.add_policy(ObjectAgePolicy(threshold=100.0))
            pipeline.add_policy(SimplePolicy(reject=["bad.example"]))
            return pipeline

        fast, slow = build(), build()
        activities = [
            make_activity("bad.example", created_at=0.0),  # stale -> rewrite+reject
            make_activity("bad.example", created_at=450.0),  # fresh -> reject only
        ]
        shared, decisions, rewrites = fast.apply_batch(activities, "bad.example", now=now)
        assert shared == (
            "SimplePolicy",
            "reject",
            "all activities from bad.example are rejected",
        )
        assert rewrites == 1
        for activity in activities:
            assert slow.filter_uncompiled(activity, now=now).rejected
        assert event_view(fast) == event_view(slow)

    def test_age_reject_stage_turns_the_batch_per_activity(self):
        """A reject-capable stage (ObjectAge 'reject') before a terminal
        shared reject cannot share one report shape: stale posts are
        rejected by ObjectAge, fresh ones by SimplePolicy."""
        now = 500.0

        def build():
            pipeline = MRFPipeline(local_domain="local.example")
            pipeline.add_policy(ObjectAgePolicy(threshold=100.0, actions=("reject",)))
            pipeline.add_policy(SimplePolicy(reject=["bad.example"]))
            return pipeline

        fast, slow = build(), build()
        activities = [
            make_activity("bad.example", created_at=0.0),
            make_activity("bad.example", created_at=450.0),
        ]
        shared, decisions, rewrites = fast.apply_batch(activities, "bad.example", now=now)
        assert shared is None
        slow_decisions = [slow.filter_uncompiled(a, now=now) for a in activities]
        assert [
            (d.verdict, d.policy, d.action, d.reason) for d in decisions
        ] == [
            (d.verdict, d.policy, d.action, d.reason) for d in slow_decisions
        ]
        assert event_view(fast) == event_view(slow)

    def test_inert_policies_before_simple_policy_do_not_block(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(NoOpPolicy())
        pipeline.add_policy(SimplePolicy(reject=["bad.example"]))
        shared, _, _ = pipeline.apply_batch(
            [make_activity("bad.example")], "bad.example", now=0.0
        )
        assert shared is not None

    def test_untouchable_origin_skips_everything(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(SimplePolicy(reject=["bad.example"]))
        batch = [make_activity("fine.example") for _ in range(3)]
        shared, decisions, rewrites = pipeline.apply_batch(batch, "fine.example", now=0.0)
        assert shared is None and rewrites == 0
        assert decisions == [None, None, None]
        assert pipeline.events == []


def build_registry():
    registry = FediverseRegistry()
    target = Instance(domain="target.example", install_default_policies=False)
    target.mrf.add_policy(SimplePolicy(reject=["bad.example"]))
    registry.add_instance(target)
    registry.add_instance(Instance(domain="bad.example", install_default_policies=False))
    registry.add_instance(Instance(domain="fine.example", install_default_policies=False))
    return registry


class TestDeliveryBatchReject:
    def test_origin_pure_reject_short_circuits_with_identical_reports(self):
        from repro.activitypub.delivery import FederationStats
        from repro.perf.baselines import naive_deliver

        fast_registry = build_registry()
        slow_registry = build_registry()
        activities = [make_activity("bad.example") for _ in range(4)]

        fast = FederationDelivery(fast_registry)
        fast_reports = fast.deliver_batch(list(activities), "target.example")
        assert fast.batch_rejects == 1

        # The seed's one-deliver-at-a-time loop is the equivalence baseline.
        slow_stats = FederationStats()
        slow_reports: list = []
        for activity in activities:
            naive_deliver(slow_registry, activity, "target.example", slow_stats, slow_reports)

        assert [
            (r.origin_domain, r.target_domain, r.accepted, r.policy, r.action, r.reason)
            for r in fast_reports
        ] == [
            (r.origin_domain, r.target_domain, r.accepted, r.policy, r.action, r.reason)
            for r in slow_reports
        ]
        assert fast.stats == slow_stats
        assert event_view(fast_registry.get("target.example").mrf) == event_view(
            slow_registry.get("target.example").mrf
        )

    def test_counted_path_shares_the_decision(self):
        registry = build_registry()
        delivery = FederationDelivery(registry, sinks=[])
        activities = [make_activity("bad.example") for _ in range(6)]
        delivered, rejected = delivery.deliver_batch_counted(activities, "target.example")
        assert (delivered, rejected) == (6, 6)
        assert delivery.batch_rejects == 1
        assert delivery.stats.by_policy == {"SimplePolicy": 6}
        assert len(registry.get("target.example").mrf.events) == 6

    def test_mixed_origin_batch_takes_the_normal_path(self):
        registry = build_registry()
        delivery = FederationDelivery(registry, sinks=[])
        activities = [make_activity("bad.example"), make_activity("fine.example")]
        delivered, rejected = delivery.deliver_batch_counted(activities, "target.example")
        assert (delivered, rejected) == (2, 1)
        assert delivery.batch_rejects == 0

    def test_delete_activities_share_the_origin_pure_reject(self):
        registry = build_registry()
        delivery = FederationDelivery(registry, sinks=[])
        post = make_post("bad.example")
        create = create_activity(post)
        activities = [create, delete_activity(post.uri, create.actor, published=5.0)]
        delivered, rejected = delivery.deliver_batch_counted(activities, "target.example")
        assert (delivered, rejected) == (2, 2)
        assert delivery.batch_rejects == 1
        types = [e.activity_type for e in registry.get("target.example").mrf.events]
        assert types == ["Create", "Delete"]


class TestRejectNonPublicPrecheck:
    def assert_equivalent(self, pipeline, activity, now=10.0):
        compiled = pipeline.filter(activity, now=now)
        uncompiled = pipeline.filter_uncompiled(activity, now=now)
        assert compiled.verdict == uncompiled.verdict
        assert compiled.policy == uncompiled.policy
        assert compiled.action == uncompiled.action
        assert compiled.reason == uncompiled.reason
        return compiled

    def test_public_posts_skip_the_policy_loop(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(RejectNonPublic())
        compiled = pipeline.compiled()
        assert compiled.fully_planned
        assert compiled.visibilities == frozenset(
            {Visibility.FOLLOWERS_ONLY, Visibility.DIRECT}
        )
        decision = self.assert_equivalent(pipeline, make_activity())
        assert decision.accepted

    def test_non_public_posts_still_reject(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(RejectNonPublic())
        for visibility in (Visibility.FOLLOWERS_ONLY, Visibility.DIRECT):
            decision = self.assert_equivalent(
                pipeline, make_activity(visibility=visibility)
            )
            assert decision.rejected

    def test_allow_flags_narrow_the_plan(self):
        policy = RejectNonPublic(allow_followers_only=True)
        assert policy.plan().triggers.post_visibilities == frozenset(
            {Visibility.DIRECT}
        )
        both = RejectNonPublic(allow_followers_only=True, allow_direct=True)
        assert both.plan().triggers.post_visibilities == frozenset()
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(both)
        assert pipeline.compiled().never_acts

    def test_flag_mutation_invalidates_compiled_pipeline(self):
        pipeline = MRFPipeline(local_domain="local.example")
        policy = RejectNonPublic()
        pipeline.add_policy(policy)
        direct = make_activity(visibility=Visibility.DIRECT)
        assert self.assert_equivalent(pipeline, direct).rejected
        policy.allow_direct = True
        assert self.assert_equivalent(pipeline, direct).accepted
        policy.allow_direct = False
        assert self.assert_equivalent(pipeline, direct).rejected

    def test_batch_residual_checks_visibility(self):
        pipeline = MRFPipeline(local_domain="local.example")
        pipeline.add_policy(RejectNonPublic())
        batch = [
            make_activity(),
            make_activity(visibility=Visibility.DIRECT),
            make_activity(visibility=Visibility.UNLISTED),
        ]
        lazy = pipeline.filter_batch_lazy(batch, now=10.0)
        assert lazy[0] is None
        assert lazy[1] is not None and lazy[1].rejected
        assert lazy[2] is None
