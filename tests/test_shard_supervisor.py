"""Tests for the supervised sharded engine (``repro.shard.supervisor``).

The claim under test is the supervisor's exactness guarantee: whatever
the injected worker deaths — crash before the slice recv, crash after
delivering, hang past the inactivity deadline, corrupt result bytes, a
clean error report, or a real SIGKILL mid-run — the recovered merged
federation state is bit-identical to a fault-free run, and the failure
is classified as the kind predicts.  The plan tests pin the deterministic
compilation of :class:`~repro.faults.workers.WorkerFaultSpec` mixes; the
teardown tests pin the terminate→kill escalation that keeps SIGTERM-
immune workers from leaking past a run.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import signal
import time

import pytest

from repro.activitypub.delivery import FederationDelivery
from repro.faults.workers import (
    WORKER_FAULT_PROFILES,
    WorkerFaultKind,
    WorkerFaultPlan,
    WorkerFaultSpec,
)
from repro.shard.engine import (
    ShardedRunResult,
    federate_sharded,
    fork_available,
    reap_process,
    run_sharded,
)
from repro.shard.partition import partition_batches
from repro.shard.state import delivered_pairs, federation_state, merge_shard_results
from repro.shard.supervisor import (
    FAILURE_KINDS,
    RecoveryStats,
    ShardSupervisor,
    SupervisorConfig,
)
from repro.synth.generator import FediverseGenerator
from repro.synth.scenario import scenario_config

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

#: How the supervisor must classify each injected death kind.
EXPECTED_CLASSIFICATION = {
    WorkerFaultKind.CRASH_EARLY: "eof",
    WorkerFaultKind.CRASH_LATE: "eof",
    WorkerFaultKind.HANG: "deadline",
    WorkerFaultKind.CORRUPT: "corrupt",
    WorkerFaultKind.ERROR: "error",
}

#: Tight supervision knobs for tiny-scenario test runs: the deadline only
#: has to beat the heartbeat interval, and short polls keep hangs cheap.
FAST = SupervisorConfig(
    deadline_seconds=1.0,
    deadline_multiplier=1.5,
    max_worker_attempts=2,
    poll_seconds=0.01,
    heartbeat_seconds=0.05,
    join_grace_seconds=10.0,
)


def tiny_generator(seed: int = 29, **overrides) -> FediverseGenerator:
    return FediverseGenerator(scenario_config("tiny", seed=seed, **overrides))


def single_process_state(generator: FediverseGenerator) -> dict:
    """The reference run: the single-process batched engine's snapshot."""
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    delivery = FederationDelivery(prepared.registry, sinks=[])
    stats = prepared.stats
    for batch in work:
        delivered, rejected = delivery.deliver_batch_counted(
            batch.activities, batch.target_domain
        )
        stats.federated_deliveries += delivered
        stats.rejected_deliveries += rejected
    return federation_state(prepared, delivery.stats)


def supervised_run(
    generator: FediverseGenerator,
    n_workers: int,
    plan: WorkerFaultPlan | None = None,
    config: SupervisorConfig = FAST,
) -> ShardedRunResult:
    """One supervised forked run on a freshly prepared fediverse."""
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    return federate_sharded(
        prepared,
        work,
        n_workers,
        processes=True,
        supervised=True,
        worker_faults=plan,
        supervisor=config,
    )


# --------------------------------------------------------------------------- #
# Fault plans and specs (no processes involved)
# --------------------------------------------------------------------------- #
class TestWorkerFaultPlan:
    def test_zero_spec_is_inert(self):
        spec = WorkerFaultSpec.none()
        assert spec.inert
        plan = WorkerFaultPlan.compile(spec, 8)
        assert plan.inert
        for shard in range(8):
            for attempt in range(3):
                assert plan.fault_for(shard, attempt) is None

    def test_compile_is_deterministic(self):
        spec = WorkerFaultSpec.profile("mixed", seed=7)
        first = WorkerFaultPlan.compile(spec, 64)
        second = WorkerFaultPlan.compile(spec, 64)
        assert first.schedules == second.schedules
        # The mixed profile at 64 shards afflicts some shards but not all.
        assert first.schedules
        assert len(first.schedules) < 64

    def test_compile_seed_changes_schedules(self):
        base = WorkerFaultPlan.compile(WorkerFaultSpec.profile("heavy"), 64)
        other = WorkerFaultPlan.compile(
            WorkerFaultSpec.profile("heavy", seed=1), 64
        )
        assert base.schedules != other.schedules

    def test_compile_honours_faulty_attempts(self):
        spec = WorkerFaultSpec.profile("heavy")
        assert spec.faulty_attempts == 2
        plan = WorkerFaultPlan.compile(spec, 64)
        assert plan.schedules
        for schedule in plan.schedules.values():
            # One death kind per shard, repeated for every faulty attempt.
            assert len(schedule) == 2
            assert len(set(schedule)) == 1

    def test_scripted_normalises_bare_kinds(self):
        plan = WorkerFaultPlan.scripted(
            4,
            {
                0: WorkerFaultKind.HANG,
                2: (WorkerFaultKind.ERROR, WorkerFaultKind.CRASH_EARLY),
            },
        )
        assert plan.fault_for(0, 0) is WorkerFaultKind.HANG
        assert plan.fault_for(0, 1) is None
        assert plan.fault_for(2, 0) is WorkerFaultKind.ERROR
        assert plan.fault_for(2, 1) is WorkerFaultKind.CRASH_EARLY
        assert plan.fault_for(2, 2) is None
        assert plan.fault_for(1, 0) is None
        assert not plan.inert

    def test_plan_rejects_out_of_range_shards(self):
        with pytest.raises(ValueError):
            WorkerFaultPlan(2, {5: (WorkerFaultKind.HANG,)})
        with pytest.raises(ValueError):
            WorkerFaultPlan(0, {})

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkerFaultSpec(crash_early_share=1.5)
        with pytest.raises(ValueError):
            WorkerFaultSpec(error_share=-0.1)
        with pytest.raises(ValueError):
            WorkerFaultSpec(faulty_attempts=0)
        with pytest.raises(ValueError):
            WorkerFaultSpec.profile("no-such-profile")

    def test_profiles_cover_every_kind_somewhere(self):
        assert set(WORKER_FAULT_PROFILES) == {"none", "light", "mixed", "heavy"}
        mixed = WorkerFaultSpec.profile("mixed")
        assert not mixed.inert
        for name in (
            "crash_early_share",
            "crash_late_share",
            "hang_share",
            "corrupt_share",
            "error_share",
        ):
            assert getattr(mixed, name) > 0.0

    def test_for_config_reads_scenario_knobs(self):
        config = scenario_config(
            "tiny", worker_fault_profile="mixed", worker_fault_seed=7
        )
        assert WorkerFaultSpec.for_config(config) == WorkerFaultSpec.profile(
            "mixed", seed=7
        )
        # The default scenario weather is fault-free.
        assert WorkerFaultSpec.for_config(scenario_config("tiny")).inert
        # xlarge/xxlarge name the mixed worker-fault mix.
        assert scenario_config("xlarge").worker_fault_profile == "mixed"
        assert scenario_config("xxlarge").worker_fault_profile == "mixed"

    def test_config_rejects_unknown_profile(self):
        with pytest.raises(ValueError):
            scenario_config("tiny", worker_fault_profile="catastrophic")


# --------------------------------------------------------------------------- #
# Supervisor config and recovery accounting
# --------------------------------------------------------------------------- #
class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(deadline_seconds=0)
        with pytest.raises(ValueError):
            SupervisorConfig(deadline_multiplier=0.5)
        with pytest.raises(ValueError):
            SupervisorConfig(max_worker_attempts=0)
        with pytest.raises(ValueError):
            SupervisorConfig(poll_seconds=0)
        with pytest.raises(ValueError):
            SupervisorConfig(heartbeat_seconds=0)

    def test_deadline_escalates_per_attempt(self):
        config = SupervisorConfig(deadline_seconds=2.0, deadline_multiplier=3.0)
        assert config.deadline_for(0) == 2.0
        assert config.deadline_for(1) == 6.0
        assert config.deadline_for(2) == 18.0


class TestRecoveryStats:
    def build(self) -> RecoveryStats:
        stats = RecoveryStats(n_shards=3)
        stats.record(0, 0, "fork", "ok", 0.1)
        stats.record(1, 0, "fork", "eof", 0.2, detail="died")
        stats.record(1, 1, "fork", "deadline", 0.3)
        stats.record(1, 2, "inline", "ok", 0.4)
        stats.record(2, 0, "fork", "corrupt", 0.5)
        stats.record(2, 1, "fork", "ok", 0.6)
        return stats

    def test_accounting(self):
        stats = self.build()
        assert stats.retries == 3
        assert stats.failures == {"eof": 1, "deadline": 1, "corrupt": 1}
        assert set(stats.failures) <= set(FAILURE_KINDS)
        assert stats.failed_shards == (1, 2)
        assert stats.recovered_shards == (1, 2)
        assert stats.inline_fallbacks == 1
        assert stats.retry_seconds == pytest.approx(0.3 + 0.4 + 0.6)
        assert [a.attempt for a in stats.shard_attempts(1)] == [0, 1, 2]

    def test_pickles_inside_run_results(self):
        stats = self.build()
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats


# --------------------------------------------------------------------------- #
# Worker teardown escalation
# --------------------------------------------------------------------------- #
def _stubborn_child(ready) -> None:  # pragma: no cover - child process body
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    ready.send(b"x")
    ready.close()
    while True:
        time.sleep(3600.0)


def _sleepy_child() -> None:  # pragma: no cover - child process body
    while True:
        time.sleep(3600.0)


@needs_fork
class TestReapProcess:
    def test_exited_worker_is_collected_within_grace(self):
        ctx = multiprocessing.get_context("fork")
        process = ctx.Process(target=lambda: None, daemon=True)
        process.start()
        reap_process(process, grace_seconds=10.0)
        assert not process.is_alive()
        assert process.exitcode == 0

    def test_sigterm_stops_a_cooperative_worker(self):
        ctx = multiprocessing.get_context("fork")
        process = ctx.Process(target=_sleepy_child, daemon=True)
        process.start()
        reap_process(process, grace_seconds=0.05, escalation_seconds=5.0)
        assert not process.is_alive()
        assert process.exitcode == -signal.SIGTERM

    def test_escalates_to_sigkill_when_sigterm_is_ignored(self):
        """A worker that ignores SIGTERM must still never leak past the
        run: terminate() is followed by kill(), which cannot be ignored."""
        ctx = multiprocessing.get_context("fork")
        ready_recv, ready_send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_stubborn_child, args=(ready_send,), daemon=True
        )
        process.start()
        ready_send.close()
        # Wait until the child has installed its SIG_IGN handler, so the
        # escalation is exercised deterministically.
        assert ready_recv.poll(10.0)
        ready_recv.recv_bytes()
        ready_recv.close()
        reap_process(process, grace_seconds=0.05, escalation_seconds=0.2)
        assert not process.is_alive()
        assert process.exitcode == -signal.SIGKILL


# --------------------------------------------------------------------------- #
# Legacy (unsupervised) engine: failures name their shard
# --------------------------------------------------------------------------- #
def _exiting_worker(shard, n_shards, registry, in_conn, out_conn):
    """A worker that dies before (or instead of) talking the protocol."""
    os._exit(1)  # pragma: no cover - child process body


def _garbage_worker(shard, n_shards, registry, in_conn, out_conn):
    """A worker that answers with bytes that cannot unpickle."""
    in_conn.recv()  # pragma: no cover - child process body
    out_conn.send_bytes(b"not a pickle \xff\x00")
    os._exit(0)


@needs_fork
class TestUnsupervisedFailureReporting:
    def run_forked(self) -> ShardedRunResult:
        generator = tiny_generator()
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        return federate_sharded(prepared, work, 2, processes=True)

    def test_dead_worker_error_names_its_shard(self, monkeypatch):
        """Whether the death surfaces on the ship (broken input pipe) or
        on the drain (result EOF), the error must say which shard died
        instead of leaking a raw BrokenPipeError/EOFError."""
        monkeypatch.setattr("repro.shard.engine._shard_worker", _exiting_worker)
        with pytest.raises(RuntimeError, match="shard worker 0"):
            self.run_forked()

    def test_unreadable_result_names_its_shard(self, monkeypatch):
        monkeypatch.setattr("repro.shard.engine._shard_worker", _garbage_worker)
        with pytest.raises(
            RuntimeError, match="shard worker 0 sent an unreadable result"
        ):
            self.run_forked()


# --------------------------------------------------------------------------- #
# Supervised recovery: every death kind, bit-identical state
# --------------------------------------------------------------------------- #
@needs_fork
class TestSupervisedRecovery:
    @pytest.fixture(scope="class")
    def reference(self):
        return single_process_state(tiny_generator())

    def test_zero_fault_run_matches_unsupervised_engine(self, reference):
        """Supervision must be inert without faults: same bits as the
        plain forked engine, zero retries, all first attempts ok."""
        generator = tiny_generator()
        supervised = supervised_run(generator, 2)
        assert supervised.mode == "fork"
        assert supervised.state == reference
        recovery = supervised.recovery
        assert recovery is not None
        assert recovery.retries == 0
        assert recovery.failed_shards == ()
        assert all(
            attempt.outcome == "ok" and attempt.mode == "fork"
            for attempt in recovery.attempts
        )
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        unsupervised = federate_sharded(prepared, work, 2, processes=True)
        assert unsupervised.state == reference
        assert unsupervised.recovery is None

    @pytest.mark.parametrize("kind", list(WorkerFaultKind))
    def test_each_death_kind_recovers_bit_identically(self, kind, reference):
        """One shard's first worker dies by ``kind``; the retry recovers
        it and the merged state is exactly the fault-free state."""
        plan = WorkerFaultPlan.scripted(2, {0: kind})
        result = supervised_run(tiny_generator(), 2, plan=plan)
        assert result.state == reference
        recovery = result.recovery
        attempts = recovery.shard_attempts(0)
        assert attempts[0].outcome == EXPECTED_CLASSIFICATION[kind]
        assert attempts[0].mode == "fork"
        assert attempts[-1].outcome == "ok"
        assert recovery.failed_shards == (0,)
        assert recovery.recovered_shards == (0,)
        assert recovery.retries == 1
        # The untouched shard succeeded on its first worker.
        assert [a.outcome for a in recovery.shard_attempts(1)] == ["ok"]

    def test_retry_exhaustion_falls_back_inline(self, reference):
        """Every forked attempt dies; the coordinator re-executes the
        shard inline and the merge still lands on the exact bits."""
        plan = WorkerFaultPlan.scripted(
            2, {0: (WorkerFaultKind.CRASH_EARLY,) * FAST.max_worker_attempts}
        )
        result = supervised_run(tiny_generator(), 2, plan=plan)
        assert result.state == reference
        recovery = result.recovery
        attempts = recovery.shard_attempts(0)
        assert [a.mode for a in attempts] == ["fork", "fork", "inline"]
        assert [a.outcome for a in attempts] == ["eof", "eof", "ok"]
        assert recovery.inline_fallbacks == 1
        assert recovery.recovered_shards == (0,)

    def test_inline_supervised_run_records_recovery(self, reference):
        result_prepared = tiny_generator()
        prepared = result_prepared.prepare()
        work = list(result_prepared.federation_batches(prepared))
        result = federate_sharded(
            prepared, work, 2, processes=False, supervised=True
        )
        assert result.mode == "inline"
        assert result.state == reference
        assert result.recovery is not None
        assert result.recovery.retries == 0
        assert all(a.mode == "inline" for a in result.recovery.attempts)

    def test_inline_run_rejects_live_fault_plans(self):
        generator = tiny_generator()
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        plan = WorkerFaultPlan.scripted(2, {0: WorkerFaultKind.HANG})
        with pytest.raises(RuntimeError, match="forked workers"):
            federate_sharded(
                prepared, work, 2, processes=False, worker_faults=plan
            )
        # An inert plan is fine inline (nothing to kill).
        result = federate_sharded(
            prepared,
            work,
            2,
            processes=False,
            worker_faults=WorkerFaultPlan(2, {}),
        )
        assert result.recovery is not None

    def test_run_sharded_threads_supervision_through(self, reference):
        config = scenario_config("tiny", seed=29)
        _, result = run_sharded(
            config, 2, processes=True, supervised=True, supervisor=FAST
        )
        assert result.state == reference
        assert result.recovery is not None
        assert result.recovery.n_shards == 2


# --------------------------------------------------------------------------- #
# Real signals: SIGKILL mid-run
# --------------------------------------------------------------------------- #
class _KillFirstShipped(ShardSupervisor):
    """A supervisor that SIGKILLs the first worker right after shipping
    its slice — a real, uninjected mid-run worker death."""

    def __init__(self, config=None):
        super().__init__(config=config)
        self.killed_pid = None

    def _ship(self, worker, batches):
        super()._ship(worker, batches)
        if self.killed_pid is None:
            self.killed_pid = worker.process.pid
            os.kill(self.killed_pid, signal.SIGKILL)


@needs_fork
class TestRealSignals:
    def test_sigkill_mid_run_recovers_bit_identically(self):
        generator = tiny_generator(seed=31)
        reference = single_process_state(generator)
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        shards = partition_batches(work, 2)
        supervisor = _KillFirstShipped(config=FAST)
        results, stats = supervisor.run(prepared.registry, shards)
        assert supervisor.killed_pid is not None
        state = merge_shard_results(prepared, results, delivered_pairs(work))
        assert state == reference
        assert stats.failed_shards == (0,)
        assert stats.recovered_shards == (0,)
        assert stats.shard_attempts(0)[0].outcome == "eof"


# --------------------------------------------------------------------------- #
# Twin-run fuzz: random worker-fault schedules
# --------------------------------------------------------------------------- #
def fault_fuzz_cases():
    """Random-but-reproducible schedules across worker counts 1, 2 and 4."""
    rng = random.Random(20260807)
    kinds = list(WorkerFaultKind)
    cases = []
    for n_workers in (1, 2, 4):
        schedules = {}
        for shard in range(n_workers):
            if rng.random() < 0.75:
                length = rng.choice((1, 1, 2))
                schedules[shard] = tuple(
                    rng.choice(kinds) for _ in range(length)
                )
        if not schedules:  # pragma: no cover - seed-dependent guard
            schedules[0] = (rng.choice(kinds),)
        cases.append((n_workers, schedules))
    return cases


@needs_fork
class TestWorkerFaultFuzz:
    @pytest.mark.parametrize(("n_workers", "schedules"), fault_fuzz_cases())
    def test_random_schedules_merge_bit_identically(self, n_workers, schedules):
        """Twin-run fuzz under random per-shard death schedules: every
        afflicted shard is recovered and the merged state equals the
        fault-free single-process engine's, bit for bit."""
        generator = tiny_generator(seed=37 + n_workers)
        reference = single_process_state(generator)
        plan = WorkerFaultPlan.scripted(n_workers, schedules)
        result = supervised_run(tiny_generator(seed=37 + n_workers), n_workers, plan=plan)
        assert result.state == reference
        recovery = result.recovery
        assert recovery.failed_shards == tuple(sorted(schedules))
        assert recovery.recovered_shards == recovery.failed_shards
        assert recovery.retries >= len(schedules)
        # Schedules long enough to exhaust the fork budget must have
        # gone through the inline fallback.
        expected_fallbacks = sum(
            1
            for kinds in schedules.values()
            if len(kinds) >= FAST.max_worker_attempts
        )
        assert recovery.inline_fallbacks == expected_fallbacks
