"""Seed-faithful naive implementations of the analysis hot paths.

Each function reproduces, line for line where possible, the algorithm the
seed implementation used before the indexed-dataset/single-pass-scoring
rework.  The perf harness times them against the optimised paths and — just
as importantly — asserts that both produce identical results, which turns
every benchmark run into an equivalence check at scale.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.collateral import InstanceCollateral
from repro.core.harmfulness import UserLabel
from repro.datasets.schema import RejectEdge
from repro.datasets.store import Dataset
from repro.perspective.attributes import ATTRIBUTES, Attribute, AttributeScores
from repro.perspective.scorer import LexiconScorer, score_for_density
from repro.perspective.lexicon import tokenize


def naive_add_reject_edges(edges: Iterable[RejectEdge]) -> list[RejectEdge]:
    """The seed's ``Dataset.add_reject_edge`` loop: O(edges) per insert.

    Every insert scans the flat list for a duplicate, so ingesting N edges
    costs O(N^2) comparisons — the quadratic behaviour the dedup set kills.
    """
    stored: list[RejectEdge] = []
    for edge in edges:
        if edge not in stored:
            stored.append(edge)
    return stored


def naive_score_many(scorer: LexiconScorer, texts: list[str]) -> list[AttributeScores]:
    """The seed's scoring loop: one full token pass per attribute per text."""
    results = []
    for text in texts:
        tokens = tokenize(text)
        if not tokens:
            results.append(AttributeScores())
            continue
        values = {}
        for attribute in ATTRIBUTES:
            table = scorer.lexicon.terms[attribute]
            hits = sum(table.get(token, 0.0) for token in tokens)
            values[attribute.value] = score_for_density(
                hits / len(tokens), scorer.gain, scorer.ceiling
            )
        results.append(AttributeScores(**values))
    return results


def naive_threshold_sweep(
    dataset: Dataset,
    label_lookup: Callable[[str], list[UserLabel]],
    thresholds: tuple[float, ...],
) -> dict[float, float]:
    """The seed's ``CollateralAnalyzer.threshold_sweep``: full summary per point.

    For every threshold the seed recomputed the analysis scope from the flat
    record lists (rejected domains from an O(edges) set-comprehension plus
    sort, posts-with checks, the single-user filter) and rebuilt the whole
    Figure 6 per-instance breakdown, even though only the final scalar is
    needed.  ``label_lookup`` must be warm so both sweeps compare pure
    aggregation cost, not Perspective scoring cost (the seed cached labels
    across sweep points too).
    """
    pleroma_domains = {record.domain for record in dataset.pleroma_instances()}
    sweep: dict[float, float] = {}
    for threshold in thresholds:
        rejected = [
            domain
            for domain in sorted(
                {edge.target for edge in dataset.reject_edges if edge.action == "reject"}
            )
            if domain in pleroma_domains
        ]
        with_posts = [domain for domain in rejected if dataset.posts_from(domain)]
        analysed = [domain for domain in with_posts if len(label_lookup(domain)) > 1]

        # Figure 6 breakdown, rebuilt per threshold exactly as summary() did.
        rows = []
        for domain in analysed:
            row = InstanceCollateral(domain=domain)
            for label in label_lookup(domain):
                attributes = label.harmful_attributes(threshold)
                if attributes:
                    row.harmful_users += 1
                    if Attribute.TOXICITY in attributes:
                        row.toxic_users += 1
                    if Attribute.PROFANITY in attributes:
                        row.profane_users += 1
                    if Attribute.SEXUALLY_EXPLICIT in attributes:
                        row.sexually_explicit_users += 1
                else:
                    row.non_harmful_users += 1
            rows.append(row)
        rows.sort(key=lambda row: (-row.labelled_users, row.domain))

        labelled_users = 0
        harmful_users = 0
        attribute_counts = {attribute.value: 0 for attribute in Attribute}
        for domain in analysed:
            for label in label_lookup(domain):
                labelled_users += 1
                attributes = label.harmful_attributes(threshold)
                if attributes:
                    harmful_users += 1
                    for attribute in attributes:
                        attribute_counts[attribute.value] += 1

        if labelled_users:
            sweep[threshold] = 1.0 - harmful_users / labelled_users
        else:
            sweep[threshold] = 0.0
    return sweep
