"""Seed-faithful naive implementations of the analysis hot paths.

Each function reproduces, line for line where possible, the algorithm the
seed implementation used before the indexed-dataset/single-pass-scoring
rework.  The perf harness times them against the optimised paths and — just
as importantly — asserts that both produce identical results, which turns
every benchmark run into an equivalence check at scale.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.activitypub.activities import Activity
from repro.activitypub.delivery import FederationStats, apply_accepted
from repro.api.client import APIClient, APIError
from repro.api.server import FediverseAPIServer
from repro.core.collateral import InstanceCollateral
from repro.core.harmfulness import UserLabel
from repro.crawler.campaign import CampaignConfig, CrawlResult, assemble_result
from repro.crawler.crawler import InstanceCrawler, TimelineCrawler
from repro.crawler.directory import InstanceDirectory
from repro.datasets.schema import RejectEdge
from repro.datasets.store import Dataset
from repro.fediverse.errors import FederationError
from repro.fediverse.identifiers import normalise_domain
from repro.fediverse.post import Visibility
from repro.fediverse.registry import FediverseRegistry
from repro.mrf.base import PASS_ACTION, MRFContext, MRFDecision, Verdict
from repro.mrf.object_age import ObjectAgePolicy
from repro.mrf.pipeline import MRFPipeline
from repro.mrf.simple import SimplePolicy
from repro.perspective.attributes import ATTRIBUTES, Attribute, AttributeScores
from repro.perspective.scorer import LexiconScorer, score_for_density
from repro.perspective.lexicon import tokenize


def naive_add_reject_edges(edges: Iterable[RejectEdge]) -> list[RejectEdge]:
    """The seed's ``Dataset.add_reject_edge`` loop: O(edges) per insert.

    Every insert scans the flat list for a duplicate, so ingesting N edges
    costs O(N^2) comparisons — the quadratic behaviour the dedup set kills.
    """
    stored: list[RejectEdge] = []
    for edge in edges:
        if edge not in stored:
            stored.append(edge)
    return stored


def naive_score_many(scorer: LexiconScorer, texts: list[str]) -> list[AttributeScores]:
    """The seed's scoring loop: one full token pass per attribute per text."""
    results = []
    for text in texts:
        tokens = tokenize(text)
        if not tokens:
            results.append(AttributeScores())
            continue
        values = {}
        for attribute in ATTRIBUTES:
            table = scorer.lexicon.terms[attribute]
            hits = sum(table.get(token, 0.0) for token in tokens)
            values[attribute.value] = score_for_density(
                hits / len(tokens), scorer.gain, scorer.ceiling
            )
        results.append(AttributeScores(**values))
    return results


def single_pass_score_many(scorer: LexiconScorer, texts: list[str]) -> list[AttributeScores]:
    """PR 1's per-token single-pass scoring, kept as the engine's bridge baseline.

    One materialised token list per text and one merged-table dict probe per
    token (:meth:`Lexicon.weighted_hits_all`) — the path the compiled
    matching engine replaced.  Its token-order accumulation is the bitwise
    contract both the seed loop and the compiled engine must match, which
    makes it the natural middle term of the three-way equivalence gate.
    """
    lexicon = scorer.lexicon
    results = []
    for text in texts:
        tokens = tokenize(text)
        if not tokens:
            results.append(AttributeScores())
            continue
        all_hits = lexicon.weighted_hits_all(tokens)
        count = len(tokens)
        values = {
            attribute.value: score_for_density(hits / count, scorer.gain, scorer.ceiling)
            for attribute, hits in zip(ATTRIBUTES, all_hits)
        }
        results.append(AttributeScores(**values))
    return results


# ---------------------------------------------------------------------- #
# Seed-faithful federation delivery
# ---------------------------------------------------------------------- #
def naive_domain_matches(domain: str, pattern: str) -> bool:
    """The seed's ``domain_matches``: re-normalises the domain per pattern."""
    domain = normalise_domain(domain)
    pattern = pattern.strip().lower()
    if pattern.startswith("*."):
        suffix = pattern[2:]
        return domain == suffix or domain.endswith("." + suffix)
    return domain == normalise_domain(pattern)


def _seed_simple_matcher(policy: SimplePolicy):
    """The seed's SimplePolicy matcher: an any()-walk over every pattern.

    Each ``matches`` call re-normalises the origin once per pattern — the
    per-delivery cost the compiled match tables eliminate.
    """

    targets = policy._targets

    def matches(action, domain) -> bool:
        return any(naive_domain_matches(domain, pattern) for pattern in targets[action])

    return matches


def naive_object_age_filter(
    policy: ObjectAgePolicy, activity: Activity, ctx: MRFContext
) -> MRFDecision:
    """The seed's ``ObjectAgePolicy.filter``: chained copy-on-write rewrites.

    Each applied action reconstructs the post and/or activity through
    ``with_changes``/``with_post``/``with_flag`` — the dataclass-``replace``
    chains the fused rewrite in the optimised policy collapses into a single
    copy each.
    """
    post = activity.post
    if post is None:
        return policy.accept(activity)
    if post.age(ctx.now) <= policy.threshold:
        return policy.accept(activity)

    if "reject" in policy.actions:
        return policy.reject(
            activity,
            action="reject",
            reason=f"post older than {policy.threshold:.0f}s",
        )

    current = activity
    applied = []
    if "delist" in policy.actions and post.is_public:
        post = post.with_changes(visibility=Visibility.UNLISTED)
        current = current.with_post(post)
        applied.append("delist")
    if "strip_followers" in policy.actions:
        current = current.with_flag("followers_stripped", True)
        applied.append("strip_followers")

    if not applied:
        return policy.accept(current)
    return policy.accept(
        current,
        action=applied[-1],
        reason="+".join(applied),
        modified=True,
    )


def naive_policy_filter(policy, activity: Activity, ctx: MRFContext) -> MRFDecision:
    """Filter through one policy the way the seed did.

    SimplePolicy runs with the seed's per-pattern matching walk and
    ObjectAgePolicy with the seed's chained rewrites; other policies were
    not rewritten by the engine PR, so their ``filter`` is already
    seed-faithful.
    """
    if isinstance(policy, SimplePolicy):
        return policy._filter_with(activity, ctx, _seed_simple_matcher(policy))
    if isinstance(policy, ObjectAgePolicy):
        return naive_object_age_filter(policy, activity, ctx)
    return policy.filter(activity, ctx)


def naive_pipeline_filter(
    pipeline: MRFPipeline, activity: Activity, now: float
) -> MRFDecision:
    """The seed's ``MRFPipeline.filter``: fresh context, full policy walk."""
    ctx = MRFContext(
        local_domain=pipeline.local_domain,
        now=now,
        local_instance=pipeline.local_instance,
    )
    current = activity
    modified = False
    last_policy = ""
    last_action = PASS_ACTION
    last_reason = ""

    for policy in pipeline._policies:
        decision = naive_policy_filter(policy, current, ctx)
        if decision.rejected:
            pipeline._log(decision, ctx, activity)
            return decision
        if decision.action != PASS_ACTION or decision.modified:
            modified = True
            last_policy = decision.policy
            last_action = decision.action
            last_reason = decision.reason
            pipeline._log(decision, ctx, activity)
        current = decision.activity

    return MRFDecision(
        verdict=Verdict.ACCEPT,
        activity=current,
        policy=last_policy,
        action=last_action,
        reason=last_reason,
        modified=modified,
    )


from dataclasses import dataclass as _dataclass


@_dataclass
class SeedDeliveryReport:
    """The seed's ``DeliveryReport``: a plain (un-slotted) dataclass."""

    activity_id: str
    origin_domain: str
    target_domain: str
    accepted: bool
    policy: str = ""
    action: str = ""
    reason: str = ""
    modified: bool = False

    @property
    def rejected(self) -> bool:
        """Return ``True`` when the activity was dropped by the target."""
        return not self.accepted


def naive_deliver(
    registry: FediverseRegistry,
    activity: Activity,
    target_domain: str,
    stats: FederationStats,
    reports: list,
) -> SeedDeliveryReport:
    """The seed's ``FederationDelivery.deliver``: one activity at a time.

    Every call re-normalises the target domain, re-resolves the instance,
    re-records the peer relation and builds a fresh MRF context.
    """
    target_domain = normalise_domain(target_domain)
    if target_domain == activity.origin_domain:
        raise FederationError("cannot deliver an activity to its origin instance")
    target = registry.get(target_domain)
    registry.federate(activity.origin_domain, target_domain)

    decision = naive_pipeline_filter(target.mrf, activity, now=registry.clock.now())
    report = SeedDeliveryReport(
        activity_id=activity.activity_id,
        origin_domain=activity.origin_domain,
        target_domain=target_domain,
        accepted=decision.accepted,
        policy=decision.policy,
        action=decision.action,
        reason=decision.reason,
        modified=decision.modified,
    )
    reports.append(report)
    stats.record(report)
    if decision.accepted:
        # The seed's ``_apply`` re-resolved the target from the registry.
        apply_accepted(registry, decision.activity, registry.get(target_domain))
    return report


def naive_federate(
    registry: FediverseRegistry, batches: Iterable
) -> tuple[FederationStats, list[SeedDeliveryReport]]:
    """Consume a federation-batch stream the way the seed generator did:
    one ``deliver`` call per activity, materialising every report."""
    stats = FederationStats()
    reports: list[SeedDeliveryReport] = []
    for batch in batches:
        for activity in batch.activities:
            naive_deliver(registry, activity, batch.target_domain, stats, reports)
    return stats, reports


# ---------------------------------------------------------------------- #
# Seed-faithful measurement campaign
# ---------------------------------------------------------------------- #
def naive_crawl_phases(
    registry: FediverseRegistry,
    config: CampaignConfig,
    directory: InstanceDirectory | None = None,
    client: APIClient | None = None,
) -> CrawlResult:
    """The seed's ``MeasurementCampaign`` crawl loop, kept verbatim.

    One ``APIClient.get`` per endpoint per instance per round, through the
    server's stateless per-request ``handle`` path: per-pattern route
    regexes, a fresh ``/api/v1/instance`` payload built and re-parsed every
    round, and one ``ids.index(max_id)`` scan per timeline page.  The batch
    engine must be indistinguishable from this loop in every
    :class:`CrawlResult` field (the dataset is built separately by
    :func:`naive_crawl`, mirroring ``MeasurementCampaign.crawl``/``assemble``).

    ``client``/``directory`` can be passed pre-built so timed comparisons
    construct both paths' transport outside the stopwatch, exactly as
    ``MeasurementCampaign.__init__`` does for the engine.
    """
    if client is None:
        client = APIClient(FediverseAPIServer(registry))
    if directory is None:
        directory = InstanceDirectory(registry, coverage=config.directory_coverage)
    instance_crawler = InstanceCrawler(client)
    timeline_crawler = TimelineCrawler(client, page_size=config.timeline_page_size)
    clock = registry.clock
    result = CrawlResult(dataset=Dataset())

    # Phase 1: discovery (directory + one peers request per listed domain).
    pleroma_domains = set(directory.pleroma_instances())
    all_domains: set[str] = set(pleroma_domains)
    for domain in sorted(pleroma_domains):
        try:
            peers = client.instance_peers(domain)
        except APIError:
            continue
        all_domains.update(peers)
    result.pleroma_domains = pleroma_domains
    result.discovered_domains = all_domains

    # Phase 2: snapshot rounds, one ``snapshot`` call per domain per round.
    interval = config.snapshot_interval_hours * 3600.0
    for round_index in range(config.snapshot_rounds):
        now = clock.now()
        fetch_peers = round_index == 0
        snapshots: dict[str, object] = {}
        for domain in sorted(pleroma_domains):
            snapshot = instance_crawler.snapshot(domain, now, fetch_peers=fetch_peers)
            if snapshot is not None:
                snapshots[domain] = snapshot
        for domain, snapshot in snapshots.items():
            result.first_seen.setdefault(domain, now)
            previous = result.latest_snapshots.get(domain)
            if previous is not None and not snapshot.peers:
                snapshot.peers = previous.peers
            result.latest_snapshots[domain] = snapshot
            result.snapshot_counts[domain] = result.snapshot_counts.get(domain, 0) + 1
            if config.keep_all_snapshots:
                result.all_snapshots.append(snapshot)
        clock.advance(interval)

    # Phase 3: timeline collection, one page request at a time.
    now = clock.now()
    for domain in sorted(set(result.latest_snapshots)):
        result.timelines.append(
            timeline_crawler.collect(
                domain,
                now,
                local_only=True,
                max_posts=config.max_posts_per_instance,
            )
        )
    result.failures = list(instance_crawler.failures)
    result.api_requests = client.stats.requests
    return result


def naive_crawl(
    registry: FediverseRegistry,
    config: CampaignConfig,
    directory: InstanceDirectory | None = None,
) -> CrawlResult:
    """Run the seed crawl loop and assemble the dataset (the full seed run)."""
    return assemble_result(naive_crawl_phases(registry, config, directory=directory))


def naive_threshold_sweep(
    dataset: Dataset,
    label_lookup: Callable[[str], list[UserLabel]],
    thresholds: tuple[float, ...],
) -> dict[float, float]:
    """The seed's ``CollateralAnalyzer.threshold_sweep``: full summary per point.

    For every threshold the seed recomputed the analysis scope from the flat
    record lists (rejected domains from an O(edges) set-comprehension plus
    sort, posts-with checks, the single-user filter) and rebuilt the whole
    Figure 6 per-instance breakdown, even though only the final scalar is
    needed.  ``label_lookup`` must be warm so both sweeps compare pure
    aggregation cost, not Perspective scoring cost (the seed cached labels
    across sweep points too).
    """
    pleroma_domains = {record.domain for record in dataset.pleroma_instances()}
    sweep: dict[float, float] = {}
    for threshold in thresholds:
        rejected = [
            domain
            for domain in sorted(
                {edge.target for edge in dataset.reject_edges if edge.action == "reject"}
            )
            if domain in pleroma_domains
        ]
        with_posts = [domain for domain in rejected if dataset.posts_from(domain)]
        analysed = [domain for domain in with_posts if len(label_lookup(domain)) > 1]

        # Figure 6 breakdown, rebuilt per threshold exactly as summary() did.
        rows = []
        for domain in analysed:
            row = InstanceCollateral(domain=domain)
            for label in label_lookup(domain):
                attributes = label.harmful_attributes(threshold)
                if attributes:
                    row.harmful_users += 1
                    if Attribute.TOXICITY in attributes:
                        row.toxic_users += 1
                    if Attribute.PROFANITY in attributes:
                        row.profane_users += 1
                    if Attribute.SEXUALLY_EXPLICIT in attributes:
                        row.sexually_explicit_users += 1
                else:
                    row.non_harmful_users += 1
            rows.append(row)
        rows.sort(key=lambda row: (-row.labelled_users, row.domain))

        labelled_users = 0
        harmful_users = 0
        attribute_counts = {attribute.value: 0 for attribute in Attribute}
        for domain in analysed:
            for label in label_lookup(domain):
                labelled_users += 1
                attributes = label.harmful_attributes(threshold)
                if attributes:
                    harmful_users += 1
                    for attribute in attributes:
                        attribute_counts[attribute.value] += 1

        if labelled_users:
            sweep[threshold] = 1.0 - harmful_users / labelled_users
        else:
            sweep[threshold] = 0.0
    return sweep
