"""Performance harness for the analysis hot path.

The package has two halves:

* :mod:`repro.perf.baselines` — seed-faithful naive implementations of the
  hot paths (quadratic edge dedup, per-attribute scoring passes, the
  summary-per-threshold sweep).  They are kept as executable documentation
  of what the indexed/single-pass code replaced, and as the denominator of
  every reported speedup.
* :mod:`repro.perf.harness` — micro-benchmarks timing ingestion, scoring
  throughput and the Table 2 threshold sweep on named scenarios, emitting a
  machine-readable ``BENCH_<scenario>.json`` so the speedup trajectory can
  be tracked across PRs.

Run it via ``python benchmarks/run_benchmarks.py`` (see PERFORMANCE.md).
"""

from repro.perf.harness import (
    BenchReport,
    bench_ingestion,
    bench_scoring,
    bench_sweep,
    run_harness,
    run_scenario,
    write_bench_json,
)

__all__ = [
    "BenchReport",
    "bench_ingestion",
    "bench_scoring",
    "bench_sweep",
    "run_harness",
    "run_scenario",
    "write_bench_json",
]
