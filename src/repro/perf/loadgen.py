"""Multi-client load generation against the concurrent serving layer.

:func:`run_load` drives N concurrent crawler clients — a full
:class:`~repro.crawler.campaign.ConcurrentMeasurementCampaign` — against a
shared :class:`~repro.api.server.FediverseAPIServer`, recording the
wall-clock latency of every transport call through a
:class:`LatencyRecordingTransport` proxy, and reports latency percentiles
(p50/p95/p99), tail amplification and throughput next to the merged
:class:`~repro.crawler.campaign.CrawlResult`.

Clocks: the *simulation* clock never advances during a request (a batch
models one instant), so request latency is meaningless in simulated time —
every latency sample here is **wall-clock** ``time.perf_counter`` seconds
around one transport call, while campaign semantics (snapshot rounds,
availability flips) keep running on the simulated clock.  One sample per
*transport call*, not per accounted API request: a batch of 40 metadata
requests served in one call is one latency sample covering 40 requests,
which is exactly the latency a batched crawler client observes.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.api.http import HTTPRequest, HTTPResponse
from repro.api.server import FediverseAPIServer, TimelineStream
from repro.crawler.campaign import (
    CampaignConfig,
    ConcurrentMeasurementCampaign,
    CrawlResult,
)
from repro.fediverse.registry import FediverseRegistry


class LatencyRecordingTransport:
    """A transparent server proxy timing every transport call.

    Mirrors the transport surface the crawler clients use (``get``,
    ``handle_batch``, ``metadata_round``, ``stream_timeline`` and the
    ``registry`` attribute — the same interface the fault injector wraps),
    delegating to the real server and recording one wall-clock sample per
    call under a lock, with the number of accounted API requests the call
    served.
    """

    def __init__(self, server: FediverseAPIServer) -> None:
        self.server = server
        self.registry = server.registry
        self._lock = threading.Lock()
        #: Wall-clock seconds of every transport call, in completion order.
        self.samples: list[float] = []
        #: Accounted API requests served across all recorded calls.
        self.requests = 0

    def _record(self, elapsed: float, requests: int) -> None:
        with self._lock:
            self.samples.append(elapsed)
            self.requests += requests

    def get(self, domain: str, url: str, *, user_agent: str = "") -> HTTPResponse:
        start = time.perf_counter()
        response = self.server.get(domain, url, user_agent=user_agent)
        self._record(time.perf_counter() - start, 1)
        return response

    def handle_batch(
        self,
        domain: str,
        requests: Sequence[HTTPRequest | str],
        *,
        user_agent: str = "",
    ) -> list[HTTPResponse]:
        start = time.perf_counter()
        responses = self.server.handle_batch(domain, requests, user_agent=user_agent)
        self._record(time.perf_counter() - start, len(requests))
        return responses

    def metadata_round(
        self, domains: Sequence[str], *, user_agent: str = ""
    ) -> list[HTTPResponse]:
        start = time.perf_counter()
        responses = self.server.metadata_round(domains, user_agent=user_agent)
        self._record(time.perf_counter() - start, len(domains))
        return responses

    def stream_timeline(self, domain: str, **kwargs: Any) -> TimelineStream:
        start = time.perf_counter()
        stream = self.server.stream_timeline(domain, **kwargs)
        self._record(time.perf_counter() - start, stream.pages)
        return stream


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(0, math.ceil(q / 100.0 * len(sorted_samples)) - 1)
    return sorted_samples[min(rank, len(sorted_samples) - 1)]


@dataclass
class LoadReport:
    """Latency and throughput of one multi-client campaign run."""

    threads: int
    wall_seconds: float
    transport_calls: int
    api_requests: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    #: p99 / p50 — how much worse the tail is than the typical call.
    tail_amplification: float
    requests_per_second: float


def load_report(
    transport: LatencyRecordingTransport, threads: int, wall_seconds: float
) -> LoadReport:
    """Summarise one recorded run into a :class:`LoadReport`."""
    samples = sorted(transport.samples)
    p50 = percentile(samples, 50.0)
    p99 = percentile(samples, 99.0)
    return LoadReport(
        threads=threads,
        wall_seconds=wall_seconds,
        transport_calls=len(samples),
        api_requests=transport.requests,
        p50_ms=p50 * 1000.0,
        p95_ms=percentile(samples, 95.0) * 1000.0,
        p99_ms=p99 * 1000.0,
        mean_ms=(sum(samples) / len(samples) * 1000.0) if samples else 0.0,
        max_ms=(samples[-1] * 1000.0) if samples else 0.0,
        tail_amplification=(p99 / p50) if p50 > 0 else 1.0,
        requests_per_second=(
            transport.requests / wall_seconds if wall_seconds > 0 else float("inf")
        ),
    )


def run_load(
    registry: FediverseRegistry,
    config: CampaignConfig | None = None,
    threads: int = 2,
    server: FediverseAPIServer | None = None,
) -> tuple[LoadReport, CrawlResult]:
    """Drive a full campaign with ``threads`` concurrent crawler clients.

    Returns the latency/throughput report and the merged crawl result
    (dataset unassembled, mirroring ``MeasurementCampaign.crawl`` so
    callers can time the crawl and assemble separately).  The registry's
    simulation clock is consumed by the crawl — one registry, one run.
    """
    server = server or FediverseAPIServer(registry)
    transport = LatencyRecordingTransport(server)
    campaign = ConcurrentMeasurementCampaign(
        registry,
        config,
        threads=threads,
        server=server,
        transport=transport,  # type: ignore[arg-type]
    )
    try:
        start = time.perf_counter()
        result = campaign.crawl()
        wall_seconds = time.perf_counter() - start
    finally:
        campaign.close()
    return load_report(transport, threads, wall_seconds), result
