"""Micro-benchmarks for ingestion, scoring throughput and sweep latency.

Every benchmark times the optimised hot path against its seed-faithful
baseline from :mod:`repro.perf.baselines` on the same workload, asserts the
two produce identical results, and reports wall-clock numbers plus the
speedup.  :func:`run_harness` writes one machine-readable
``BENCH_<scenario>.json`` per scenario so future PRs can track the
trajectory (see PERFORMANCE.md).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.datasets.schema import RejectEdge
from repro.datasets.store import Dataset
from repro.experiments.pipeline import ReproPipeline
from repro.perf import baselines
from repro.perspective.scorer import LexiconScorer

#: Thresholds of the Table 2 sweep (kept in sync with experiments.table2).
SWEEP_THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass
class BenchReport:
    """The result of one scenario's harness run."""

    scenario: str
    seed: int
    generated_at: float
    dataset: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the report."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "generated_at": self.generated_at,
            "dataset": self.dataset,
            "metrics": self.metrics,
        }


def best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Return the best wall-clock seconds of ``repeats`` calls to ``fn``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------- #
# Individual benchmarks
# ---------------------------------------------------------------------- #
def bench_ingestion(edges: list[RejectEdge], repeats: int = 3) -> dict[str, float]:
    """Time moderation-edge ingestion: indexed dedup set vs quadratic scan.

    The workload ingests the edge list twice over, which is what a crawl
    does: every snapshot re-observes the same SimplePolicy configuration,
    so most inserts are duplicates the dedup must reject.
    """
    workload = list(edges) + list(edges)

    def indexed() -> Dataset:
        dataset = Dataset()
        dataset.add_reject_edges(workload)
        return dataset

    # Equivalence: the indexed path stores exactly what the seed's scan did.
    assert indexed().reject_edges == baselines.naive_add_reject_edges(workload)

    indexed_s = best_of(indexed, repeats)
    naive_s = best_of(lambda: baselines.naive_add_reject_edges(workload), repeats)
    return {
        "edges": float(len(edges)),
        "workload_inserts": float(len(workload)),
        "indexed_seconds": indexed_s,
        "naive_seconds": naive_s,
        "speedup": naive_s / indexed_s if indexed_s else float("inf"),
        "edges_per_second": len(workload) / indexed_s if indexed_s else float("inf"),
    }


def bench_scoring(
    scorer: LexiconScorer, texts: list[str], repeats: int = 3
) -> dict[str, float]:
    """Time Perspective-substitute scoring: single merged pass vs 3 passes."""

    # Equivalence: identical score bits out of both paths (summation order
    # is preserved by design — see Lexicon.weighted_hits_all).
    assert scorer.score_many(texts) == baselines.naive_score_many(scorer, texts)

    single_s = best_of(lambda: scorer.score_many(texts), repeats)
    naive_s = best_of(lambda: baselines.naive_score_many(scorer, texts), repeats)
    return {
        "texts": float(len(texts)),
        "distinct_texts": float(len(set(texts))),
        "single_pass_seconds": single_s,
        "naive_seconds": naive_s,
        "speedup": naive_s / single_s if single_s else float("inf"),
        "posts_per_second": len(texts) / single_s if single_s else float("inf"),
        "naive_posts_per_second": len(texts) / naive_s if naive_s else float("inf"),
    }


def bench_sweep(pipeline: ReproPipeline, repeats: int = 5) -> dict[str, float]:
    """Time the Table 2 threshold sweep: cached label vectors vs per-point summary.

    Both paths run against warm user labels (the seed cached those across
    sweep points too), so the comparison isolates aggregation cost — scope
    recomputation and per-instance rebuilds — not Perspective scoring.
    """
    analyzer = pipeline.collateral_analyzer
    optimised = analyzer.threshold_sweep(SWEEP_THRESHOLDS)  # warms every cache
    naive = baselines.naive_threshold_sweep(
        pipeline.dataset, analyzer._labels_for, SWEEP_THRESHOLDS
    )
    assert optimised == naive

    optimised_s = best_of(lambda: analyzer.threshold_sweep(SWEEP_THRESHOLDS), repeats)
    naive_s = best_of(
        lambda: baselines.naive_threshold_sweep(
            pipeline.dataset, analyzer._labels_for, SWEEP_THRESHOLDS
        ),
        repeats,
    )
    return {
        "thresholds": float(len(SWEEP_THRESHOLDS)),
        "labelled_users": float(len(analyzer._analysed_labels())),
        "optimised_seconds": optimised_s,
        "naive_seconds": naive_s,
        "speedup": naive_s / optimised_s if optimised_s else float("inf"),
    }


# ---------------------------------------------------------------------- #
# Scenario runs
# ---------------------------------------------------------------------- #
def run_scenario(
    scenario: str,
    seed: int = 42,
    campaign_days: float = 2.0,
    repeats: int = 3,
) -> BenchReport:
    """Run every benchmark on one scenario and return the report."""
    pipeline = ReproPipeline(scenario=scenario, seed=seed, campaign_days=campaign_days)
    dataset = pipeline.dataset
    report = BenchReport(scenario=scenario, seed=seed, generated_at=time.time())
    report.dataset = {
        "instances": len(dataset.instances),
        "users": len(dataset.users),
        "posts": len(dataset.posts),
        "edges": len(dataset.reject_edges),
        "policy_settings": len(dataset.policy_settings),
    }
    report.metrics["ingestion"] = bench_ingestion(dataset.reject_edges, repeats=repeats)
    report.metrics["scoring"] = bench_scoring(
        pipeline.perspective.scorer,
        [post.content for post in dataset.posts],
        repeats=repeats,
    )
    report.metrics["threshold_sweep"] = bench_sweep(pipeline, repeats=max(repeats, 5))
    return report


def write_bench_json(report: BenchReport, out_dir: str | Path = ".") -> Path:
    """Write ``BENCH_<scenario>.json`` and return the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{report.scenario}.json"
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8")
    return path


def run_harness(
    scenarios: tuple[str, ...] = ("small", "large"),
    seed: int = 42,
    campaign_days: float = 2.0,
    repeats: int = 3,
    out_dir: str | Path | None = None,
) -> list[BenchReport]:
    """Run the harness on every scenario, optionally writing JSON reports."""
    reports = []
    for scenario in scenarios:
        report = run_scenario(
            scenario, seed=seed, campaign_days=campaign_days, repeats=repeats
        )
        if out_dir is not None:
            write_bench_json(report, out_dir)
        reports.append(report)
    return reports
