"""Micro-benchmarks for ingestion, scoring throughput and sweep latency.

Every benchmark times the optimised hot path against its seed-faithful
baseline from :mod:`repro.perf.baselines` on the same workload, asserts the
two produce identical results, and reports wall-clock numbers plus the
speedup.  :func:`run_harness` writes one machine-readable
``BENCH_<scenario>.json`` per scenario so future PRs can track the
trajectory (see PERFORMANCE.md).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.activitypub.delivery import FederationDelivery, FederationStats
from repro.api.client import APIClient
from repro.api.server import FediverseAPIServer
from repro.crawler.campaign import (
    CampaignConfig,
    CrawlResult,
    MeasurementCampaign,
    assemble_result,
)
from repro.crawler.directory import InstanceDirectory
from repro.datasets.schema import RejectEdge
from repro.datasets.store import Dataset
from repro.experiments.pipeline import ReproPipeline
from repro.faults.plan import FaultSpec
from repro.faults.retry import ResilienceConfig
from repro.perf import baselines
from repro.perspective.scorer import LexiconScorer
from repro.synth.generator import FediverseGenerator, PreparedFediverse
from repro.synth.scenario import scenario_config

#: Thresholds of the Table 2 sweep (kept in sync with experiments.table2).
SWEEP_THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass
class BenchReport:
    """The result of one scenario's harness run."""

    scenario: str
    seed: int
    generated_at: float
    dataset: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Worker counts the ``sharding`` stage was measured at (empty when the
    #: stage did not run), stamped into the BENCH json.
    workers: list[int] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the report."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "generated_at": self.generated_at,
            "workers": self.workers,
            "dataset": self.dataset,
            "metrics": self.metrics,
        }


def _require_equal(left: Any, right: Any, message: str) -> None:
    """Equivalence gate that survives ``python -O`` (unlike ``assert``)."""
    if left != right:
        raise RuntimeError(f"equivalence check failed: {message}")


def best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Return the best wall-clock seconds of ``repeats`` calls to ``fn``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------- #
# Individual benchmarks
# ---------------------------------------------------------------------- #
def bench_ingestion(edges: list[RejectEdge], repeats: int = 3) -> dict[str, float]:
    """Time moderation-edge ingestion: indexed dedup set vs quadratic scan.

    The workload ingests the edge list twice over, which is what a crawl
    does: every snapshot re-observes the same SimplePolicy configuration,
    so most inserts are duplicates the dedup must reject.
    """
    workload = list(edges) + list(edges)

    def indexed() -> Dataset:
        dataset = Dataset()
        dataset.add_reject_edges(workload)
        return dataset

    # Equivalence: the indexed path stores exactly what the seed's scan did.
    _require_equal(
        indexed().reject_edges,
        baselines.naive_add_reject_edges(workload),
        "indexed edge ingestion diverged from the seed scan",
    )

    indexed_s = best_of(indexed, repeats)
    naive_s = best_of(lambda: baselines.naive_add_reject_edges(workload), repeats)
    return {
        "edges": float(len(edges)),
        "workload_inserts": float(len(workload)),
        "indexed_seconds": indexed_s,
        "naive_seconds": naive_s,
        "speedup": naive_s / indexed_s if indexed_s else float("inf"),
        "edges_per_second": len(workload) / indexed_s if indexed_s else float("inf"),
    }


def bench_scoring(
    scorer: LexiconScorer, texts: list[str], repeats: int = 3
) -> dict[str, float]:
    """Time Perspective-substitute scoring: compiled engine vs seed 3-pass.

    Three-way equivalence gate (raising, not asserting): the compiled
    matching engine, PR 1's per-token single-pass path and the seed's
    per-attribute loop must produce bit-identical scores on the whole
    corpus.  Both baselines are timed so the BENCH trajectory keeps the
    engine's win over each visible.
    """
    compiled = scorer.score_many(texts)
    _require_equal(
        compiled,
        baselines.single_pass_score_many(scorer, texts),
        "compiled scoring diverged from the per-token single-pass baseline",
    )
    _require_equal(
        compiled,
        baselines.naive_score_many(scorer, texts),
        "compiled scoring diverged from the seed per-attribute baseline",
    )

    compiled_s = best_of(lambda: scorer.score_many(texts), repeats)
    single_s = best_of(lambda: baselines.single_pass_score_many(scorer, texts), repeats)
    naive_s = best_of(lambda: baselines.naive_score_many(scorer, texts), repeats)
    return {
        "texts": float(len(texts)),
        "distinct_texts": float(len(set(texts))),
        "compiled_seconds": compiled_s,
        "single_pass_seconds": single_s,
        "naive_seconds": naive_s,
        "speedup": naive_s / compiled_s if compiled_s else float("inf"),
        "single_pass_speedup": single_s / compiled_s if compiled_s else float("inf"),
        "posts_per_second": len(texts) / compiled_s if compiled_s else float("inf"),
        "naive_posts_per_second": len(texts) / naive_s if naive_s else float("inf"),
    }


def bench_corpus(
    scorer: LexiconScorer, texts: list[str], repeats: int = 3
) -> dict[str, float]:
    """Time re-labelling from materialised corpus columns vs re-scoring.

    The columns are materialised once (that build is reported separately as
    ``build_seconds``); the timed region is what every re-label after that
    pays — deriving the whole corpus's scores from the cached
    ``(token_count, hit_vector)`` columns versus re-scanning every text
    through the compiled engine (``rescore``) or the seed loop (``naive``).
    Derived scores must be bit-identical to both.
    """
    from repro.perspective.corpus import CorpusColumns

    start = time.perf_counter()
    columns = CorpusColumns(scorer, texts)
    build_s = time.perf_counter() - start
    derived = columns.scores_for(texts)
    _require_equal(
        derived,
        scorer.score_many(texts),
        "corpus-column scores diverged from the compiled engine",
    )
    _require_equal(
        derived,
        baselines.naive_score_many(scorer, texts),
        "corpus-column scores diverged from the seed per-attribute baseline",
    )

    columns_s = best_of(lambda: columns.scores_for(texts), repeats)
    rescore_s = best_of(lambda: scorer.score_many(texts), repeats)
    naive_s = best_of(lambda: baselines.naive_score_many(scorer, texts), repeats)
    return {
        "texts": float(len(texts)),
        "interned_texts": float(len(columns)),
        "build_seconds": build_s,
        "columns_seconds": columns_s,
        "rescore_seconds": rescore_s,
        "naive_seconds": naive_s,
        "speedup": rescore_s / columns_s if columns_s else float("inf"),
        "naive_speedup": naive_s / columns_s if columns_s else float("inf"),
        "relabels_per_second": len(texts) / columns_s if columns_s else float("inf"),
    }


def bench_sweep(pipeline: ReproPipeline, repeats: int = 5) -> dict[str, float]:
    """Time the Table 2 threshold sweep: cached label vectors vs per-point summary.

    Both paths run against warm user labels (the seed cached those across
    sweep points too), so the comparison isolates aggregation cost — scope
    recomputation and per-instance rebuilds — not Perspective scoring.
    """
    analyzer = pipeline.collateral_analyzer
    optimised = analyzer.threshold_sweep(SWEEP_THRESHOLDS)  # warms every cache
    naive = baselines.naive_threshold_sweep(
        pipeline.dataset, analyzer._labels_for, SWEEP_THRESHOLDS
    )
    _require_equal(
        optimised, naive, "cached threshold sweep diverged from the seed recompute"
    )

    optimised_s = best_of(lambda: analyzer.threshold_sweep(SWEEP_THRESHOLDS), repeats)
    naive_s = best_of(
        lambda: baselines.naive_threshold_sweep(
            pipeline.dataset, analyzer._labels_for, SWEEP_THRESHOLDS
        ),
        repeats,
    )
    return {
        "thresholds": float(len(SWEEP_THRESHOLDS)),
        "labelled_users": float(len(analyzer._analysed_labels())),
        "optimised_seconds": optimised_s,
        "naive_seconds": naive_s,
        "speedup": naive_s / optimised_s if optimised_s else float("inf"),
    }


def _federation_state(
    prepared: PreparedFediverse,
    stats: FederationStats,
) -> dict[str, Any]:
    """Snapshot everything federation can influence, for equivalence checks.

    Activity ids are global-counter-based and differ between two runs in the
    same process, so they are excluded; everything else (per-instance
    moderation-event streams, full remote-post state, peer sets, ground
    truth, generation counters and the aggregate delivery stats) must be
    identical between the engine and the seed-faithful baseline.  The
    snapshot shape is owned by :mod:`repro.shard.state` so the sharded
    engine's merged state is directly comparable.
    """
    from repro.shard.state import federation_state

    return federation_state(prepared, stats)


def _level_heap() -> None:
    """Level the playing field before a timed federation run.

    The engine's shared decision caches (the rewrite ledger, content
    trigger columns, mention counts) keep posts from earlier runs alive and
    a grown heap slows whichever path happens to run later (GC scans scale
    with live objects), so both are reset before every timed region.
    """
    import gc

    from repro.mrf.shared import clear_shared_state

    clear_shared_state()
    gc.collect()


def bench_delivery(scenario: str, seed: int = 42, repeats: int = 2) -> dict[str, float]:
    """Time federation generation/delivery: batched engine vs seed loop.

    Both paths consume the *same* lazy federation-batch stream (identical
    RNG draws and activity-creation order).  The engine groups work per
    target — one domain normalisation, one instance resolution, one MRF
    context per batch — and filters through precompiled pipelines; the
    baseline replays the seed's one-``deliver``-per-activity loop with fresh
    contexts and per-pattern SimplePolicy matching.  The first run of each
    path is snapshotted and asserted identical: same report stream, same
    per-instance moderation events, same ground truth and counters.
    """
    config = scenario_config(scenario, seed=seed)
    generator = FediverseGenerator(config)
    repeats = max(1, repeats)

    engine_s = float("inf")
    engine_state = None
    deliveries = 0
    batches = 0
    batch_rejects = 0
    batch_rewrites = 0
    for _ in range(repeats):
        # Materialising the batch stream (RNG draws + activity creation) is
        # shared work both paths pay identically, so it stays outside the
        # timed region; only delivery itself is measured.
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        delivery = FederationDelivery(prepared.registry, sinks=[])
        stats = prepared.stats
        _level_heap()
        start = time.perf_counter()
        for batch in work:
            delivered, rejected = delivery.deliver_batch_counted(
                batch.activities, batch.target_domain
            )
            stats.federated_deliveries += delivered
            stats.rejected_deliveries += rejected
        engine_s = min(engine_s, time.perf_counter() - start)
        if engine_state is None:
            deliveries = delivery.stats.delivered
            batches = len(work)
            batch_rejects = delivery.batch_rejects
            batch_rewrites = delivery.batch_rewrites
            engine_state = _federation_state(prepared, delivery.stats)

    naive_s = float("inf")
    naive_state = None
    for _ in range(repeats):
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        _level_heap()
        start = time.perf_counter()
        stats, reports = baselines.naive_federate(prepared.registry, work)
        naive_s = min(naive_s, time.perf_counter() - start)
        if naive_state is None:
            # The seed updated the generation counters inside its loop.
            prepared.stats.federated_deliveries = stats.delivered
            prepared.stats.rejected_deliveries = stats.rejected
            naive_state = _federation_state(prepared, stats)

    # Equivalence: the batched engine and the seed loop must be
    # indistinguishable in every observable outcome.
    _require_equal(
        engine_state,
        naive_state,
        "batched delivery engine diverged from the seed delivery loop",
    )

    return {
        "deliveries": float(deliveries),
        "batches": float(batches),
        "batch_rejects": float(batch_rejects),
        "batch_rewrites": float(batch_rewrites),
        "engine_seconds": engine_s,
        "naive_seconds": naive_s,
        "speedup": naive_s / engine_s if engine_s else float("inf"),
        "deliveries_per_second": deliveries / engine_s if engine_s else float("inf"),
    }


#: Activity-mix overrides the ``protocol`` stage applies to Create-only
#: scenarios, so its full-mix gates exercise Announce/Like/reply traffic
#: even where the scenario itself ships none (`viral`/`hellthread` carry
#: their own mix and are used as configured).
_PROTOCOL_MIX: dict[str, Any] = {
    "federation_announce_share": 0.5,
    "federation_announces_per_peer": 3,
    "federation_like_share": 0.4,
    "federation_likes_per_peer": 2,
    "federation_hot_post_count": 8,
    "reply_thread_share": 0.1,
    "reply_thread_max_depth": 10,
}

#: Overrides forcing a scenario back to pure-Create federation (the
#: pre-protocol workload), whatever mix it ships with.
_PROTOCOL_ZERO: dict[str, Any] = {
    "federation_announce_share": 0.0,
    "federation_like_share": 0.0,
    "reply_thread_share": 0.0,
    "ua_blocking_share": 0.0,
}


def bench_protocol(scenario: str, seed: int = 42, repeats: int = 2) -> dict[str, float]:
    """Gate the protocol-realism subsystem and time signature amortisation.

    Three gates (each raising on divergence), then one timed comparison:

    1. *Create-only bit-identity*: with every protocol knob zeroed the
       batched engine must still match the seed delivery loop exactly —
       the type-aware batch programs and the verifier hook must be
       invisible when the workload is pure Create traffic.
    2. *Full-mix engine equivalence*: on the full Announce/Like/reply mix
       the batched engine (type-homogeneous fast paths engaged), the
       seed's general one-at-a-time walk and the sharded engine's merged
       state must be bit-identical — boosts/favourite counters included.
    3. *Full-mix serving equivalence*: a measurement campaign over the
       mixed population must produce a bit-identical :class:`CrawlResult`
       through the sequential and the concurrent (2-thread) crawl engine.

    The timed comparison is signature-cache amortisation: every delivery
    is HTTP-signature verified, once with a per-delivery key derivation
    (``naive_seconds`` — the server that re-fetches the actor key each
    time) and once with a shared :class:`~repro.protocol.httpsig.ActorKeyCache`
    (``engine_seconds``).  Both runs must land the exact engine state of
    gate 2, and the headline ``speedup`` is the amortisation factor the
    CI ``--min-speedup`` floor checks.
    """
    from repro.crawler.campaign import ConcurrentMeasurementCampaign
    from repro.protocol.httpsig import ActorKeyCache, HttpSignatureVerifier
    from repro.shard.engine import federate_sharded

    repeats = max(1, repeats)

    def federate(config, verifier=None):
        """Prepare, stream and deliver one fediverse; time delivery only."""
        generator = FediverseGenerator(config)
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        delivery = FederationDelivery(
            prepared.registry, sinks=[], verifier=verifier
        )
        stats = prepared.stats
        _level_heap()
        start = time.perf_counter()
        for batch in work:
            delivered, rejected = delivery.deliver_batch_counted(
                batch.activities, batch.target_domain
            )
            stats.federated_deliveries += delivered
            stats.rejected_deliveries += rejected
        elapsed = time.perf_counter() - start
        return prepared, work, delivery, elapsed

    # Gate 1: Create-only configurations stay bit-identical to the seed.
    create_config = scenario_config(scenario, seed=seed, **_PROTOCOL_ZERO)
    prepared, _, delivery, _ = federate(create_config)
    create_state = _federation_state(prepared, delivery.stats)
    generator = FediverseGenerator(create_config)
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    _level_heap()
    stats, _ = baselines.naive_federate(prepared.registry, work)
    prepared.stats.federated_deliveries = stats.delivered
    prepared.stats.rejected_deliveries = stats.rejected
    _require_equal(
        _federation_state(prepared, stats),
        create_state,
        "Create-only engine state diverged from the seed delivery loop",
    )

    # The full activity mix: the scenario's own, or the standard overlay.
    config = scenario_config(scenario, seed=seed)
    if not (
        config.federation_announce_share
        or config.federation_like_share
        or config.reply_thread_share
    ):
        config = scenario_config(scenario, seed=seed, **_PROTOCOL_MIX)

    # Gate 2: batched engine vs general walk vs sharded merge, full mix.
    prepared, work, delivery, _ = federate(config)
    mix_state = _federation_state(prepared, delivery.stats)
    deliveries = delivery.stats.delivered
    batches = len(work)
    activities = sum(len(batch.activities) for batch in work)
    boosts = sum(
        sum(instance.boosts.values())
        for instance in prepared.registry.instances()
    )
    favourites = sum(
        sum(instance.favourites.values())
        for instance in prepared.registry.instances()
    )
    registry_stats = prepared.registry.stats()
    population = {
        "instances": registry_stats["instances"],
        "users": registry_stats["users"],
        "posts": registry_stats["local_posts"],
    }
    if not boosts and not favourites:
        raise RuntimeError(
            "protocol stage generated no engagement traffic; the activity "
            "mix is not reaching the delivery engine"
        )
    generator = FediverseGenerator(config)
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    _level_heap()
    stats, _ = baselines.naive_federate(prepared.registry, work)
    prepared.stats.federated_deliveries = stats.delivered
    prepared.stats.rejected_deliveries = stats.rejected
    _require_equal(
        _federation_state(prepared, stats),
        mix_state,
        "full-mix engine state diverged from the seed's general walk",
    )
    generator = FediverseGenerator(config)
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    _level_heap()
    result = federate_sharded(prepared, work, 2)
    _require_equal(
        result.state,
        mix_state,
        "full-mix sharded merge diverged from the single-process engine",
    )

    # Gate 3: sequential vs concurrent crawl over the mixed population.
    campaign_config = CampaignConfig(duration_days=2.0)
    prepared, _, _, _ = federate(config)
    sequential = MeasurementCampaign(prepared.registry, campaign_config)
    sequential_result = sequential.crawl()
    sequential.assemble(sequential_result)
    prepared, _, _, _ = federate(config)
    concurrent = ConcurrentMeasurementCampaign(
        prepared.registry, campaign_config, threads=2
    )
    concurrent_result = concurrent.crawl()
    concurrent.assemble(concurrent_result)
    _require_equal(
        _crawl_state(concurrent_result),
        _crawl_state(sequential_result),
        "full-mix concurrent crawl diverged from the sequential engine",
    )

    # Timed: per-delivery key derivation vs the shared actor-key cache.
    uncached_s = float("inf")
    uncached_stats = None
    for _ in range(repeats):
        prepared, _, delivery, elapsed = federate(
            config, verifier=HttpSignatureVerifier()
        )
        uncached_s = min(uncached_s, elapsed)
        if uncached_stats is None:
            uncached_stats = delivery.verifier.stats()
            _require_equal(
                _federation_state(prepared, delivery.stats),
                mix_state,
                "uncached signature verification changed delivery outcomes",
            )

    cached_s = float("inf")
    cached_stats = None
    for _ in range(repeats):
        verifier = HttpSignatureVerifier(ActorKeyCache())
        prepared, _, delivery, elapsed = federate(config, verifier=verifier)
        cached_s = min(cached_s, elapsed)
        if cached_stats is None:
            cached_stats = verifier.stats()
            _require_equal(
                _federation_state(prepared, delivery.stats),
                mix_state,
                "cached signature verification changed delivery outcomes",
            )
    _require_equal(
        cached_stats.verified,
        uncached_stats.verified,
        "cached and uncached verifiers saw different delivery counts",
    )

    return {
        "instances": float(population["instances"]),
        "users": float(population["users"]),
        "posts": float(population["posts"]),
        "activities": float(activities),
        "batches": float(batches),
        "deliveries": float(deliveries),
        "boosts_received": float(boosts),
        "favourites_received": float(favourites),
        "verifications": float(cached_stats.verified),
        "uncached_derivations": float(uncached_stats.derivations),
        "cached_derivations": float(cached_stats.derivations),
        "cache_hit_rate": cached_stats.hit_rate,
        "simulated_seconds_uncached": uncached_stats.simulated_seconds,
        "simulated_seconds_cached": cached_stats.simulated_seconds,
        "engine_seconds": cached_s,
        "naive_seconds": uncached_s,
        "speedup": uncached_s / cached_s if cached_s else float("inf"),
    }


def bench_sharding(
    scenario: str,
    seed: int = 42,
    repeats: int = 2,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    processes: bool | None = None,
    fork_gate: bool = True,
) -> dict[str, float]:
    """Time the sharded multi-process federation engine vs worker count.

    Three-way comparison on identical batch streams: the seed's
    one-``deliver``-per-activity loop (``naive_seconds``), the PR 5
    single-process batched engine (``engine_seconds``) and the sharded
    engine at every requested worker count
    (``sharded_seconds_workers_N``).  The determinism gate runs the house
    rule at its hardest setting: the sharded engine's *merged* state —
    ground truth, generation counters, per-activity moderation-event
    streams, remote posts, peers, aggregate delivery stats — must be
    bit-identical to the single-process engine's at **every** worker
    count, including N=1.

    Timed regions include everything sharding adds (partitioning, worker
    forks, batch serialisation over the pipes, result pickling and the
    deterministic merge) but exclude prepare() and stream materialisation,
    which every path pays identically.  Reported per worker count: speedup
    over the seed loop (``speedup_workers_N``), the ratio to the
    single-process engine (``engine_ratio_workers_N``) and scaling
    efficiency ``T(base)/(N*T(N))`` (``scaling_efficiency_workers_N``,
    base = 1 worker when measured, else the single-process engine).  The
    headline ``speedup`` is the seed loop against the best sharded
    configuration.  The engine's auto mode forks only on multi-CPU hosts
    (on one CPU the workers would serialise and only pay fork/IPC
    overhead), so the per-worker-count timings reflect how the engine
    actually runs on the measuring host — the recorded
    ``forked_workers_N`` flags say which mode each number measured.  The
    forked path stays gated everywhere regardless: unless ``fork_gate``
    is disabled (the ``xxlarge`` stream is too large to pickle twice for
    a redundant check), one forced 2-worker forked run must merge to the
    same bits as the single-process engine — see PERFORMANCE.md.
    """
    from repro.shard.engine import federate_sharded, fork_available

    config = scenario_config(scenario, seed=seed)
    generator = FediverseGenerator(config)
    repeats = max(1, repeats)
    worker_counts = tuple(worker_counts)
    if not worker_counts:
        raise ValueError("worker_counts must not be empty")

    # Single-process reference: the batched engine, the equivalence anchor.
    engine_s = float("inf")
    reference_state = None
    deliveries = 0
    batches = 0
    population: dict[str, int] = {}
    for _ in range(repeats):
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        delivery = FederationDelivery(prepared.registry, sinks=[])
        stats = prepared.stats
        _level_heap()
        start = time.perf_counter()
        for batch in work:
            delivered, rejected = delivery.deliver_batch_counted(
                batch.activities, batch.target_domain
            )
            stats.federated_deliveries += delivered
            stats.rejected_deliveries += rejected
        engine_s = min(engine_s, time.perf_counter() - start)
        if reference_state is None:
            deliveries = delivery.stats.delivered
            batches = len(work)
            reference_state = _federation_state(prepared, delivery.stats)
            registry_stats = prepared.registry.stats()
            population = {
                "instances": registry_stats["instances"],
                "users": registry_stats["users"],
                "posts": registry_stats["local_posts"],
            }

    # Seed-faithful baseline (house rule): the one-at-a-time loop.
    naive_s = float("inf")
    for index in range(repeats):
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        _level_heap()
        start = time.perf_counter()
        stats, _ = baselines.naive_federate(prepared.registry, work)
        naive_s = min(naive_s, time.perf_counter() - start)
        if index == 0:
            prepared.stats.federated_deliveries = stats.delivered
            prepared.stats.rejected_deliveries = stats.rejected
            _require_equal(
                _federation_state(prepared, stats),
                reference_state,
                "single-process engine diverged from the seed delivery loop",
            )

    # Sharded runs: every worker count is gated, then timed.
    sharded_seconds: dict[int, float] = {}
    forked: dict[int, bool] = {}
    for n_workers in worker_counts:
        best = float("inf")
        for index in range(repeats):
            prepared = generator.prepare()
            work = list(generator.federation_batches(prepared))
            _level_heap()
            start = time.perf_counter()
            result = federate_sharded(
                prepared, work, n_workers, processes=processes
            )
            best = min(best, time.perf_counter() - start)
            if index == 0:
                forked[n_workers] = result.mode == "fork"
                _require_equal(
                    result.state,
                    reference_state,
                    f"sharded engine ({n_workers} workers, {result.mode} mode) "
                    "merged state diverged from the single-process engine",
                )
        sharded_seconds[n_workers] = best

    # Fork-mode determinism gate: auto mode only forks on multi-CPU
    # hosts, but the bit-identity contract covers both execution modes on
    # every host — force one forked run and hold it to the same bar.
    fork_gate_s = 0.0
    if fork_gate and fork_available():
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))
        _level_heap()
        start = time.perf_counter()
        result = federate_sharded(prepared, work, 2, processes=True)
        fork_gate_s = time.perf_counter() - start
        _require_equal(
            result.state,
            reference_state,
            "sharded engine (2 workers, forced fork mode) merged state "
            "diverged from the single-process engine",
        )

    best_sharded = min(sharded_seconds.values())
    base_n = 1 if 1 in sharded_seconds else None
    base_s = sharded_seconds[1] if base_n else engine_s
    metrics = {
        "deliveries": float(deliveries),
        "batches": float(batches),
        "instances": float(population["instances"]),
        "users": float(population["users"]),
        "posts": float(population["posts"]),
        "fork_available": 1.0 if fork_available() else 0.0,
        "fork_gate_seconds": fork_gate_s,
        "engine_seconds": engine_s,
        "naive_seconds": naive_s,
        "sharded_seconds": best_sharded,
        "speedup": naive_s / best_sharded if best_sharded else float("inf"),
        "deliveries_per_second": (
            deliveries / best_sharded if best_sharded else float("inf")
        ),
    }
    for n_workers, seconds in sorted(sharded_seconds.items()):
        metrics[f"sharded_seconds_workers_{n_workers}"] = seconds
        metrics[f"forked_workers_{n_workers}"] = 1.0 if forked[n_workers] else 0.0
        metrics[f"speedup_workers_{n_workers}"] = (
            naive_s / seconds if seconds else float("inf")
        )
        metrics[f"engine_ratio_workers_{n_workers}"] = (
            engine_s / seconds if seconds else float("inf")
        )
        metrics[f"scaling_efficiency_workers_{n_workers}"] = (
            base_s / (n_workers * seconds) if seconds else float("inf")
        )
    return metrics


#: Which supervisor classification each injected worker-death kind must
#: surface as (the shard_chaos stage's classification gate).
_EXPECTED_CLASSIFICATION = {
    "crash_early": "eof",
    "crash_late": "eof",
    "hang": "deadline",
    "corrupt": "corrupt",
    "error": "error",
}


def bench_shard_chaos(
    scenario: str,
    seed: int = 42,
    repeats: int = 2,
    worker_counts: tuple[int, ...] = (2, 4),
    fault_seed: int = 4242,
    deadline_seconds: float = 3.0,
    max_zero_fault_overhead: float = 2.0,
) -> dict[str, float]:
    """Measure the supervised sharded engine under dying workers.

    The process-level twin of the ``chaos`` stage, and the house rule at
    its hardest setting.  Gates (all raising on divergence):

    - *recovery bit-identity*: for **every** injected worker-death kind
      (crash-before-recv, crash-after-delivery, hang past the deadline,
      corrupt result pickle, clean error report) at every requested worker
      count, the supervised engine's merged federation state must be
      bit-identical to the fault-free single-process engine — and the
      supervisor must have classified the failure as the kind predicts;
    - *retry exhaustion*: a shard whose worker dies on every forked
      attempt must be recovered by the inline fallback, still bit-identical;
    - *zero-fault inertness*: a supervised run with no fault plan must be
      bit-identical to the unsupervised forked engine, report zero
      retries, and stay within ``max_zero_fault_overhead`` of its
      wall-clock (supervision adds only polling and heartbeats);
    - *profile run*: the scenario's ``worker_fault_profile`` knob
      (``mixed`` when the scenario names none) compiled into a
      :class:`~repro.faults.workers.WorkerFaultPlan` must also merge
      bit-identically.

    Reported alongside: recovery overhead (retry wall-clock), failures by
    kind, inline fallbacks, and ``recovery_rate`` (recovered / failed
    shards — wired into the CI smoke's ``--min-recovery`` floor).  Every
    fault run injects real deaths: workers ``os._exit`` mid-protocol,
    sleep past the deadline, or write garbage down the result pipe.
    """
    from repro.faults.workers import WorkerFaultKind, WorkerFaultPlan, WorkerFaultSpec
    from repro.shard.engine import federate_sharded, fork_available
    from repro.shard.supervisor import SupervisorConfig

    worker_counts = tuple(worker_counts)
    if not worker_counts:
        raise ValueError("worker_counts must not be empty")
    if not fork_available():  # pragma: no cover - non-fork platforms
        return {"fork_available": 0.0, "recovery_rate": 1.0}

    config = scenario_config(scenario, seed=seed)
    generator = FediverseGenerator(config)
    repeats = max(1, repeats)
    supervisor = SupervisorConfig(
        deadline_seconds=deadline_seconds,
        poll_seconds=0.02,
        heartbeat_seconds=0.2,
        max_worker_attempts=2,
    )

    # Fault-free reference: the single-process batched engine.
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))
    delivery = FederationDelivery(prepared.registry, sinks=[])
    stats = prepared.stats
    for batch in work:
        delivered, rejected = delivery.deliver_batch_counted(
            batch.activities, batch.target_domain
        )
        stats.federated_deliveries += delivered
        stats.rejected_deliveries += rejected
    reference_state = _federation_state(prepared, delivery.stats)
    deliveries = delivery.stats.delivered
    batches = len(work)

    # One prepared twin shared by every fork-mode run: forked workers
    # mutate copy-on-write copies, so the coordinator's registry stays
    # pristine between runs.  The supervisor's inline fallback is the one
    # exception — it delivers in the coordinator — so any run that used
    # it poisons the twin and forces a re-prepare.
    prepared = generator.prepare()
    work = list(generator.federation_batches(prepared))

    def reprepare() -> None:
        nonlocal prepared, work
        prepared = generator.prepare()
        work = list(generator.federation_batches(prepared))

    base_workers = worker_counts[0]

    # Unsupervised forked baseline (the PR 7 engine), then the zero-fault
    # supervised run: bit-identical, zero retries, bounded overhead.
    unsupervised_s = float("inf")
    for _ in range(repeats):
        _level_heap()
        start = time.perf_counter()
        result = federate_sharded(prepared, work, base_workers, processes=True)
        unsupervised_s = min(unsupervised_s, time.perf_counter() - start)
    _require_equal(
        result.state,
        reference_state,
        "unsupervised forked engine diverged from the single-process engine",
    )

    supervised_s = float("inf")
    for _ in range(repeats):
        _level_heap()
        start = time.perf_counter()
        result = federate_sharded(
            prepared,
            work,
            base_workers,
            processes=True,
            supervised=True,
            supervisor=supervisor,
        )
        supervised_s = min(supervised_s, time.perf_counter() - start)
    _require_equal(
        result.state,
        reference_state,
        "zero-fault supervised engine diverged from the single-process engine",
    )
    _require_equal(
        result.recovery.retries,
        0,
        "zero-fault supervised run reported retries",
    )
    overhead = supervised_s / unsupervised_s if unsupervised_s else float("inf")
    if overhead > max_zero_fault_overhead:
        raise RuntimeError(
            f"zero-fault supervision overhead {overhead:.2f}x exceeds the "
            f"{max_zero_fault_overhead:.2f}x ceiling"
        )

    # Recovery gate: every death kind x every worker count, shard 0's
    # first attempt killed, merged state still bit-identical.
    failed_shards = 0
    recovered_shards = 0
    retry_seconds = 0.0
    inline_fallbacks = 0
    recovered_by_kind: dict[str, int] = {}
    for kind in WorkerFaultKind:
        for n_workers in worker_counts:
            plan = WorkerFaultPlan.scripted(n_workers, {0: kind})
            result = federate_sharded(
                prepared,
                work,
                n_workers,
                processes=True,
                worker_faults=plan,
                supervisor=supervisor,
            )
            recovery = result.recovery
            _require_equal(
                result.state,
                reference_state,
                f"supervised engine ({kind.value}, {n_workers} workers) "
                "merged state diverged from the single-process engine",
            )
            _require_equal(
                recovery.shard_attempts(0)[0].outcome,
                _EXPECTED_CLASSIFICATION[kind.value],
                f"supervisor misclassified an injected {kind.value} fault",
            )
            failed_shards += len(recovery.failed_shards)
            recovered_shards += len(recovery.recovered_shards)
            retry_seconds += recovery.retry_seconds
            inline_fallbacks += recovery.inline_fallbacks
            recovered_by_kind[kind.value] = recovered_by_kind.get(
                kind.value, 0
            ) + len(recovery.recovered_shards)
            if recovery.inline_fallbacks:
                reprepare()

    # Profile run: the scenario's worker-fault knob, compiled.
    spec = WorkerFaultSpec.for_config(config)
    if spec.inert:
        spec = WorkerFaultSpec.profile("mixed", seed=fault_seed)
    profile_workers = max(worker_counts)
    profile_plan = WorkerFaultPlan.compile(spec, profile_workers)
    result = federate_sharded(
        prepared,
        work,
        profile_workers,
        processes=True,
        worker_faults=profile_plan,
        supervisor=supervisor,
    )
    _require_equal(
        result.state,
        reference_state,
        f"supervised engine under the {config.worker_fault_profile!r} "
        "worker-fault profile diverged from the single-process engine",
    )
    recovery = result.recovery
    profile_failed = len(recovery.failed_shards)
    profile_recovered = len(recovery.recovered_shards)
    failed_shards += profile_failed
    recovered_shards += profile_recovered
    retry_seconds += recovery.retry_seconds
    inline_fallbacks += recovery.inline_fallbacks
    if recovery.inline_fallbacks:
        reprepare()

    # Retry exhaustion: every forked attempt of shard 0 dies; only the
    # inline fallback can recover it.  Runs last — the fallback delivers
    # in the coordinator, so the shared twin is spent afterwards.
    exhaust_plan = WorkerFaultPlan.scripted(
        base_workers,
        {0: (WorkerFaultKind.CRASH_EARLY,) * supervisor.max_worker_attempts},
    )
    result = federate_sharded(
        prepared,
        work,
        base_workers,
        processes=True,
        worker_faults=exhaust_plan,
        supervisor=supervisor,
    )
    _require_equal(
        result.state,
        reference_state,
        "inline-fallback recovery diverged from the single-process engine",
    )
    recovery = result.recovery
    _require_equal(
        recovery.inline_fallbacks,
        1,
        "retry exhaustion did not reach the inline fallback",
    )
    failed_shards += len(recovery.failed_shards)
    recovered_shards += len(recovery.recovered_shards)
    retry_seconds += recovery.retry_seconds
    inline_fallbacks += recovery.inline_fallbacks

    metrics = {
        "deliveries": float(deliveries),
        "batches": float(batches),
        "fork_available": 1.0,
        "deadline_seconds": deadline_seconds,
        "unsupervised_seconds": unsupervised_s,
        "supervised_seconds": supervised_s,
        "zero_fault_overhead": overhead,
        "failed_shards": float(failed_shards),
        "recovered_shards": float(recovered_shards),
        "recovery_rate": (
            recovered_shards / failed_shards if failed_shards else 1.0
        ),
        "recovery_retry_seconds": retry_seconds,
        "inline_fallbacks": float(inline_fallbacks),
        "profile_failed_shards": float(profile_failed),
    }
    for kind, count in sorted(recovered_by_kind.items()):
        metrics[f"recovered_{kind}"] = float(count)
    return metrics


def _crawl_state(result: CrawlResult) -> dict[str, Any]:
    """Snapshot everything a crawl produces, for equivalence checks.

    Every :class:`CrawlResult` field is covered — snapshots, per-domain
    snapshot counts, timeline collections (including the raw post dicts),
    the failure list (contents *and* order), the discovered/Pleroma domain
    sets, request accounting, the failure-status breakdown — plus the full
    assembled dataset.
    """
    dataset = result.dataset
    return {
        "latest_snapshots": result.latest_snapshots,
        "snapshot_counts": result.snapshot_counts,
        "all_snapshots": result.all_snapshots,
        "timelines": result.timelines,
        "failures": result.failures,
        "discovered_domains": result.discovered_domains,
        "pleroma_domains": result.pleroma_domains,
        "first_seen": result.first_seen,
        "api_requests": result.api_requests,
        "failure_status_breakdown": result.failure_status_breakdown,
        "dataset": {
            "instances": dataset.instances,
            "users": dataset.users,
            "posts": dataset.posts,
            "policy_settings": dataset.policy_settings,
            "reject_edges": dataset.reject_edges,
        },
    }


def _run_crawl_pair(
    config, campaign_config: CampaignConfig, repeats: int
) -> tuple[float, dict, float, dict, CrawlResult]:
    """Time the batched engine against the seed loop on twin fediverses.

    Each path regenerates its own (bit-identical) fediverse per repeat —
    the crawl advances the simulation clock, so a registry cannot be
    crawled twice.  Generation and dataset assembly are shared work both
    paths pay identically and stay outside the timed region; the full
    :class:`CrawlResult` (dataset included) is snapshotted for the
    equivalence gate.
    """
    engine_s = float("inf")
    engine_state = None
    engine_result = None
    for _ in range(repeats):
        registry = FediverseGenerator(config).generate().registry
        campaign = MeasurementCampaign(registry, campaign_config)
        start = time.perf_counter()
        result = campaign.crawl()
        engine_s = min(engine_s, time.perf_counter() - start)
        if engine_state is None:
            campaign.assemble(result)
            engine_state = _crawl_state(result)
            engine_result = result

    naive_s = float("inf")
    naive_state = None
    for _ in range(repeats):
        registry = FediverseGenerator(config).generate().registry
        # Build the transport outside the stopwatch, exactly as the engine's
        # MeasurementCampaign.__init__ does before its timed crawl().
        client = APIClient(FediverseAPIServer(registry))
        directory = InstanceDirectory(
            registry, coverage=campaign_config.directory_coverage
        )
        start = time.perf_counter()
        result = baselines.naive_crawl_phases(
            registry, campaign_config, directory=directory, client=client
        )
        naive_s = min(naive_s, time.perf_counter() - start)
        if naive_state is None:
            naive_state = _crawl_state(assemble_result(result))

    return engine_s, engine_state, naive_s, naive_state, engine_result


def bench_crawl(scenario: str, seed: int = 42, repeats: int = 2) -> dict[str, float]:
    """Time the measurement campaign: batched crawl engine vs seed loop.

    The crawl runs over the scenario's *own* campaign window (the paper's
    regime: months of 4-hourly metadata rounds — this is the workload the
    batch engine exists for), unlike the analysis-side benches that crawl
    2 days to build a dataset.  The engine and the seed's
    one-``get``-per-endpoint loop must produce bit-identical
    :class:`CrawlResult`\\ s; a second, separately generated ``churn``
    population re-asserts the same equivalence under mid-campaign
    availability flips.
    """
    config = scenario_config(scenario, seed=seed)
    campaign_config = CampaignConfig(
        duration_days=config.campaign_days,
        snapshot_interval_hours=config.snapshot_interval_hours,
    )
    repeats = max(1, repeats)
    engine_s, engine_state, naive_s, naive_state, result = _run_crawl_pair(
        config, campaign_config, repeats
    )
    _require_equal(
        engine_state,
        naive_state,
        "batched crawl engine diverged from the seed crawl loop",
    )

    # Churn gate: instances dropping out mid-campaign must not break
    # equivalence (snapshot counts, failure ordering, the breakdown).
    churn_config = scenario_config("churn", seed=seed, n_pleroma_instances=120)
    churn_campaign_config = CampaignConfig(
        duration_days=churn_config.churn_window_days,
        snapshot_interval_hours=churn_config.snapshot_interval_hours,
        keep_all_snapshots=True,
    )
    _, churn_engine, _, churn_naive, churn_result = _run_crawl_pair(
        churn_config, churn_campaign_config, repeats=1
    )
    _require_equal(
        churn_engine,
        churn_naive,
        "batched crawl engine diverged from the seed loop under churn",
    )
    churn_flipped = len(
        {failure.domain for failure in churn_result.failures}
        & set(churn_result.latest_snapshots)
    )

    posts = sum(
        collection.post_count for collection in result.timelines if collection.reachable
    )
    return {
        "domains": float(len(result.pleroma_domains)),
        "rounds": float(campaign_config.snapshot_rounds),
        "api_requests": float(result.api_requests),
        "snapshots": float(sum(result.snapshot_counts.values())),
        "posts_collected": float(posts),
        "engine_seconds": engine_s,
        "naive_seconds": naive_s,
        "speedup": naive_s / engine_s if engine_s else float("inf"),
        "requests_per_second": (
            result.api_requests / engine_s if engine_s else float("inf")
        ),
        "churn_flipped_domains": float(churn_flipped),
    }


def bench_serving(
    scenario: str,
    seed: int = 42,
    repeats: int = 2,
    thread_counts: tuple[int, ...] | None = None,
) -> dict[str, float]:
    """Measure the concurrent serving layer: latency percentiles under load.

    Drives full campaigns with N concurrent crawler clients
    (:func:`repro.perf.loadgen.run_load`) against the thread-safe server
    and reports, per thread count, wall-clock seconds plus p50/p95/p99
    transport-call latency, tail amplification (p99/p50) and request
    throughput — the serving-side numbers BENCH files lacked while every
    stage was single-threaded.

    Equivalence gates (the house rule, raising on divergence): at **every**
    thread count the merged :class:`CrawlResult` — snapshots, failures
    (contents and order), timelines, request accounting, the assembled
    dataset — must be bit-identical to the sequential engine's.  The
    1-thread run is the inline-executor case; N-thread runs are covered by
    the contiguous-slice merge documented on
    :class:`~repro.crawler.campaign.ConcurrentMeasurementCampaign` (the
    slice-order merge of a sorted domain list *is* the sequential order, so
    no looser normalisation is needed).

    The headline ``speedup`` is the seed-faithful naive loop against the
    best concurrent configuration.  On a single-core (GIL-bound) runner the
    thread counts serialise, so N threads measure locking/handoff overhead
    plus tail behaviour rather than parallel speedup — the per-thread-count
    timings say which regime the measuring host is in.

    ``thread_counts`` defaults to ``{1, 2, serving_clients}`` (the
    scenario's :attr:`~repro.synth.config.SynthConfig.serving_clients`
    knob), so every BENCH records at least two client fan-outs.
    """
    from repro.perf.loadgen import run_load

    config = scenario_config(scenario, seed=seed)
    campaign_config = CampaignConfig(
        duration_days=config.campaign_days,
        snapshot_interval_hours=config.snapshot_interval_hours,
    )
    if thread_counts is None:
        thread_counts = tuple(sorted({1, 2, config.serving_clients}))
    repeats = max(1, repeats)

    # Sequential reference: the batched engine, the equivalence anchor —
    # and the naive seed loop, the headline-speedup denominator (its own
    # equivalence to the engine is gated by the crawl stage).
    engine_s = float("inf")
    reference_state = None
    reference_result = None
    for _ in range(repeats):
        registry = FediverseGenerator(config).generate().registry
        campaign = MeasurementCampaign(registry, campaign_config)
        start = time.perf_counter()
        result = campaign.crawl()
        engine_s = min(engine_s, time.perf_counter() - start)
        if reference_state is None:
            campaign.assemble(result)
            reference_state = _crawl_state(result)
            reference_result = result

    naive_s = float("inf")
    for _ in range(repeats):
        registry = FediverseGenerator(config).generate().registry
        client = APIClient(FediverseAPIServer(registry))
        directory = InstanceDirectory(
            registry, coverage=campaign_config.directory_coverage
        )
        start = time.perf_counter()
        baselines.naive_crawl_phases(
            registry, campaign_config, directory=directory, client=client
        )
        naive_s = min(naive_s, time.perf_counter() - start)

    metrics: dict[str, float] = {
        "domains": float(len(reference_result.pleroma_domains)),
        "rounds": float(campaign_config.snapshot_rounds),
        "api_requests": float(reference_result.api_requests),
        "engine_seconds": engine_s,
        "naive_seconds": naive_s,
        "thread_counts": float(len(thread_counts)),
    }

    best_concurrent = float("inf")
    for threads in thread_counts:
        best_s = float("inf")
        best_report = None
        for index in range(repeats):
            registry = FediverseGenerator(config).generate().registry
            report, result = run_load(
                registry, campaign_config, threads=threads
            )
            if index == 0:
                # The equivalence gate: merged concurrent result ==
                # sequential engine result, bit for bit, dataset included.
                _require_equal(
                    _crawl_state(assemble_result(result)),
                    reference_state,
                    f"{threads}-thread concurrent crawl diverged from the "
                    "sequential engine",
                )
            if report.wall_seconds < best_s:
                best_s = report.wall_seconds
                best_report = report
        best_concurrent = min(best_concurrent, best_s)
        metrics[f"concurrent_seconds_threads_{threads}"] = best_s
        metrics[f"p50_ms_threads_{threads}"] = best_report.p50_ms
        metrics[f"p95_ms_threads_{threads}"] = best_report.p95_ms
        metrics[f"p99_ms_threads_{threads}"] = best_report.p99_ms
        metrics[f"mean_ms_threads_{threads}"] = best_report.mean_ms
        metrics[f"max_ms_threads_{threads}"] = best_report.max_ms
        metrics[f"tail_amplification_threads_{threads}"] = (
            best_report.tail_amplification
        )
        metrics[f"transport_calls_threads_{threads}"] = float(
            best_report.transport_calls
        )
        metrics[f"requests_per_second_threads_{threads}"] = (
            best_report.requests_per_second
        )

    metrics["concurrent_seconds"] = best_concurrent
    metrics["speedup"] = (
        naive_s / best_concurrent if best_concurrent else float("inf")
    )
    metrics["requests_per_second"] = (
        reference_result.api_requests / best_concurrent
        if best_concurrent
        else float("inf")
    )
    return metrics


def _true_reject_edges(registry) -> set[tuple[str, str]]:
    """The planted reject graph: every configured SimplePolicy reject edge.

    Read straight off the registry's MRF pipelines — including instances
    that are uncrawlable or do not expose their policies — so recall
    against it quantifies *total* measurement bias, not just the
    fault-induced part.
    """
    edges: set[tuple[str, str]] = set()
    for instance in registry.instances():
        for target in instance.mrf.simple_policy_config().get("reject", ()):
            edges.add((instance.domain, target))
    return edges


def _measured_reject_edges(result: CrawlResult) -> set[tuple[str, str]]:
    """The reject edges a crawl actually observed."""
    return {
        (edge.source, edge.target)
        for edge in result.dataset.reject_edges
        if edge.action == "reject"
    }


def _run_chaos_campaign(
    config,
    campaign_config: CampaignConfig,
    profile: str,
    fault_seed: int,
    resilient: bool,
) -> tuple[MeasurementCampaign, CrawlResult, float]:
    """One faulted campaign on a freshly generated twin fediverse."""
    registry = FediverseGenerator(config).generate().registry
    campaign = MeasurementCampaign(
        registry,
        campaign_config,
        faults=FaultSpec.profile(profile, seed=fault_seed),
        resilience=ResilienceConfig.default() if resilient else None,
    )
    start = time.perf_counter()
    result = campaign.crawl()
    elapsed = time.perf_counter() - start
    campaign.assemble(result)
    return campaign, result, elapsed


def bench_chaos(
    scenario: str, seed: int = 42, repeats: int = 2, fault_seed: int = 1337
) -> dict[str, float]:
    """Measure the crawl engine under a misbehaving network.

    Three house-rules gates, then the resilience/bias numbers:

    - *inertness*: a resilient campaign under the zero-fault plan produces
      a bit-identical :class:`CrawlResult` to the plain engine (and runs on
      the unwrapped server object);
    - *determinism*: two campaigns under the same fault seed are
      bit-identical to each other;
    - *measurement bias*: reject-edge recall against the planted ground
      truth across fault profiles (``none``/``light``/``mixed``/``heavy``),
      the first bias table of the ROADMAP's measurement-bias suite.

    The faulted runs use the ``mixed`` profile (every fault kind fires).
    Reported alongside: recovery rate relative to the fault-free crawl, the
    non-resilient engine's recovery under the same faults (what retrying
    buys), retry overhead (attempt count and simulated backoff seconds) and
    requests/s.  The campaign window is capped at 7 simulated days so the
    stage stays tractable at the large scales.
    """
    config = scenario_config(scenario, seed=seed)
    campaign_config = CampaignConfig(
        duration_days=min(config.campaign_days, 7.0),
        snapshot_interval_hours=config.snapshot_interval_hours,
    )

    # Fault-free reference: the plain engine, no plan, no retry policy.
    registry = FediverseGenerator(config).generate().registry
    truth = _true_reject_edges(registry)
    clean_campaign = MeasurementCampaign(registry, campaign_config)
    clean_result = clean_campaign.assemble(clean_campaign.crawl())
    clean_state = _crawl_state(clean_result)

    # Gate 1 — inertness: zero-fault plan + full resilience == plain engine.
    zero_campaign, zero_result, _ = _run_chaos_campaign(
        config, campaign_config, "none", fault_seed, resilient=True
    )
    if zero_campaign.transport is not zero_campaign.server:
        raise RuntimeError("zero-fault plan did not return the unwrapped server")
    _require_equal(
        _crawl_state(zero_result),
        clean_state,
        "zero-fault resilient crawl diverged from the plain engine",
    )

    # Gate 2 — determinism: same fault seed, bit-identical runs (the first
    # two runs carry the gate; extra repeats only improve the timing).
    engine_s = float("inf")
    faulted_states = []
    campaign = result = None
    for _ in range(max(2, repeats)):
        campaign, result, elapsed = _run_chaos_campaign(
            config, campaign_config, "mixed", fault_seed, resilient=True
        )
        engine_s = min(engine_s, elapsed)
        if len(faulted_states) < 2:
            faulted_states.append(_crawl_state(result))
    _require_equal(
        faulted_states[0],
        faulted_states[1],
        "two crawls under the same fault seed diverged",
    )

    # What resilience buys: the same faults against the non-retrying engine.
    _, frail_result, _ = _run_chaos_campaign(
        config, campaign_config, "mixed", fault_seed, resilient=False
    )

    # Gate 3 / bias table: reject-edge recall by fault profile.  The clean
    # and mixed rows reuse the runs above; light/heavy run once each.
    recalls: dict[str, float] = {}
    profile_results = {"none": clean_result, "mixed": result}
    for profile in ("none", "light", "mixed", "heavy"):
        profile_result = profile_results.get(profile)
        if profile_result is None:
            _, profile_result, _ = _run_chaos_campaign(
                config, campaign_config, profile, fault_seed, resilient=True
            )
        measured = _measured_reject_edges(profile_result)
        recalls[profile] = (
            len(measured & truth) / len(truth) if truth else 1.0
        )

    injector = campaign.transport
    stats = campaign.client.stats
    clean_domains = len(clean_result.latest_snapshots)
    clean_snapshots = sum(clean_result.snapshot_counts.values())
    metrics = {
        "domains": float(len(result.pleroma_domains)),
        "rounds": float(campaign_config.snapshot_rounds),
        "api_requests": float(result.api_requests),
        "faults_injected": float(injector.stats.total),
        "truncated_posts": float(injector.stats.truncated_posts),
        "recovery_rate": (
            len(result.latest_snapshots) / clean_domains if clean_domains else 1.0
        ),
        "snapshot_recovery_rate": (
            sum(result.snapshot_counts.values()) / clean_snapshots
            if clean_snapshots
            else 1.0
        ),
        "frail_recovery_rate": (
            len(frail_result.latest_snapshots) / clean_domains
            if clean_domains
            else 1.0
        ),
        "frail_snapshot_recovery_rate": (
            sum(frail_result.snapshot_counts.values()) / clean_snapshots
            if clean_snapshots
            else 1.0
        ),
        "retries": float(stats.retries),
        "retry_share": stats.retries / stats.requests if stats.requests else 0.0,
        "backoff_seconds_simulated": stats.backoff_seconds,
        "short_circuited": float(stats.short_circuited),
        "round_retried": float(campaign.round_retried),
        "round_salvaged": float(campaign.round_salvaged),
        "degraded_domains": float(len(result.degraded_domains)),
        "engine_seconds": engine_s,
        "requests_per_second": (
            result.api_requests / engine_s if engine_s else float("inf")
        ),
        "true_reject_edges": float(len(truth)),
    }
    for kind, count in sorted(injector.stats.injected.items()):
        metrics[f"injected_{kind}"] = float(count)
    for profile, recall in recalls.items():
        metrics[f"reject_recall_{profile}"] = recall
    return metrics


# ---------------------------------------------------------------------- #
# Scenario runs
# ---------------------------------------------------------------------- #
#: Every bench stage, in execution order.
STAGES: tuple[str, ...] = (
    "ingestion",
    "scoring",
    "corpus",
    "threshold_sweep",
    "delivery",
    "protocol",
    "crawl",
    "chaos",
    "serving",
    "sharding",
    "shard_chaos",
)

#: Stages that need the analysis pipeline's assembled dataset.
_PIPELINE_STAGES = frozenset({"ingestion", "scoring", "corpus", "threshold_sweep"})


def default_stages(scenario: str) -> tuple[str, ...]:
    """Return the stages a scenario runs when none are requested.

    ``xxlarge`` exists for the sharded engine alone — a 100k-instance
    crawl/analysis pass is exactly what the scenario is *not* for — so it
    defaults to the ``sharding`` stage only.  ``viral`` and ``hellthread``
    exist for the protocol-realism gates: their inflated Announce/Like/
    reply volume makes a full analysis pass pointless, so they default to
    the ``protocol`` stage.
    """
    if scenario == "xxlarge":
        return ("sharding",)
    if scenario in ("viral", "hellthread"):
        return ("protocol",)
    return STAGES


def default_workers(scenario: str) -> tuple[int, ...]:
    """Return the worker counts the ``sharding`` stage measures by default."""
    if scenario == "xxlarge":
        return (4,)
    return (1, 2, 4)


def run_scenario(
    scenario: str,
    seed: int = 42,
    campaign_days: float = 2.0,
    repeats: int = 3,
    stages: tuple[str, ...] | None = None,
    workers: tuple[int, ...] | None = None,
) -> BenchReport:
    """Run the requested benchmark stages on one scenario.

    ``stages=None`` runs every stage (``sharding`` only for ``xxlarge``);
    ``workers`` sets the sharding stage's worker counts and is stamped
    into the report.
    """
    if stages is None:
        stages = default_stages(scenario)
    unknown = set(stages) - set(STAGES)
    if unknown:
        raise ValueError(
            f"unknown stage(s) {sorted(unknown)}; available: {', '.join(STAGES)}"
        )
    if workers is None:
        workers = default_workers(scenario)

    report = BenchReport(scenario=scenario, seed=seed, generated_at=time.time())
    pipeline = None
    if _PIPELINE_STAGES & set(stages):
        pipeline = ReproPipeline(
            scenario=scenario, seed=seed, campaign_days=campaign_days
        )
        dataset = pipeline.dataset
        report.dataset = {
            "instances": len(dataset.instances),
            "users": len(dataset.users),
            "posts": len(dataset.posts),
            "edges": len(dataset.reject_edges),
            "policy_settings": len(dataset.policy_settings),
        }

    if "ingestion" in stages:
        report.metrics["ingestion"] = bench_ingestion(
            pipeline.dataset.reject_edges, repeats=repeats
        )
    if "scoring" in stages:
        report.metrics["scoring"] = bench_scoring(
            pipeline.perspective.scorer,
            [post.content for post in pipeline.dataset.posts],
            repeats=repeats,
        )
    if "corpus" in stages:
        report.metrics["corpus"] = bench_corpus(
            pipeline.perspective.scorer,
            [post.content for post in pipeline.dataset.posts],
            repeats=repeats,
        )
    if "threshold_sweep" in stages:
        report.metrics["threshold_sweep"] = bench_sweep(
            pipeline, repeats=max(repeats, 5)
        )
    # Generation/delivery/crawl stages regenerate the fediverse per repeat;
    # cap repeats so the harness stays tractable at the large scales.
    if "delivery" in stages:
        report.metrics["delivery"] = bench_delivery(
            scenario, seed=seed, repeats=min(repeats, 2)
        )
    if "protocol" in stages:
        report.metrics["protocol"] = bench_protocol(
            scenario, seed=seed, repeats=min(repeats, 2)
        )
        if not report.dataset:
            # Protocol-only runs (viral/hellthread) never assemble a crawl
            # dataset; report the generated mixed-traffic population.
            protocol = report.metrics["protocol"]
            report.dataset = {
                "instances": int(protocol["instances"]),
                "users": int(protocol["users"]),
                "posts": int(protocol["posts"]),
            }
    if "crawl" in stages:
        report.metrics["crawl"] = bench_crawl(
            scenario, seed=seed, repeats=min(repeats, 2)
        )
    if "chaos" in stages:
        report.metrics["chaos"] = bench_chaos(
            scenario, seed=seed, repeats=min(repeats, 2)
        )
    if "serving" in stages:
        report.metrics["serving"] = bench_serving(
            scenario, seed=seed, repeats=min(repeats, 2)
        )
    if "sharding" in stages:
        report.workers = list(workers)
        report.metrics["sharding"] = bench_sharding(
            scenario,
            seed=seed,
            repeats=1 if scenario == "xxlarge" else min(repeats, 2),
            worker_counts=workers,
            # The xxlarge stream is too large to pickle once more for a
            # redundant forced-fork check; smaller scenarios gate it.
            fork_gate=scenario != "xxlarge",
        )
        if not report.dataset:
            # Sharding-only runs (xxlarge) never assemble a crawl dataset;
            # report the generated population instead.
            sharding = report.metrics["sharding"]
            report.dataset = {
                "instances": int(sharding["instances"]),
                "users": int(sharding["users"]),
                "posts": int(sharding["posts"]),
            }
    if "shard_chaos" in stages:
        if not report.workers:
            report.workers = list(workers)
        # Worker counts of 1 tell the supervised/unsupervised overhead
        # comparison nothing new and double the fault matrix; the chaos
        # stage measures multi-worker counts only (minimum 2).
        chaos_workers = tuple(n for n in workers if n > 1) or (2,)
        report.metrics["shard_chaos"] = bench_shard_chaos(
            scenario,
            seed=seed,
            repeats=min(repeats, 2),
            worker_counts=chaos_workers,
        )
    return report


def write_bench_json(report: BenchReport, out_dir: str | Path = ".") -> Path:
    """Write ``BENCH_<scenario>.json`` and return the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{report.scenario}.json"
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8")
    return path


def run_harness(
    scenarios: tuple[str, ...] = ("small", "large"),
    seed: int = 42,
    campaign_days: float = 2.0,
    repeats: int = 3,
    out_dir: str | Path | None = None,
) -> list[BenchReport]:
    """Run the harness on every scenario, optionally writing JSON reports."""
    reports = []
    for scenario in scenarios:
        report = run_scenario(
            scenario, seed=seed, campaign_days=campaign_days, repeats=repeats
        )
        if out_dir is not None:
            write_bench_json(report, out_dir)
        reports.append(report)
    return reports
