"""The API server: serves every instance of a registry over the in-process
transport.

One :class:`FediverseAPIServer` fronts an entire
:class:`~repro.fediverse.registry.FediverseRegistry`.  A request names the
instance domain it targets; the server first applies that instance's
availability (so 404/403/502/503/410 instances fail exactly as they did for
the paper's crawler) and then routes the request to the endpoint handlers.

Besides the per-request :meth:`FediverseAPIServer.handle` path, the server
exposes the batch entry points of the crawl engine:
:meth:`FediverseAPIServer.handle_batch` resolves the target instance and its
availability once for a whole group of requests (serving the metadata
endpoint from a fingerprint-validated payload cache), and
:meth:`FediverseAPIServer.stream_timeline` serves an entire paged timeline
collection in one call while keeping request accounting identical to a
client paging through it.

Concurrency: the server is safe to share between crawler threads.  Request
counters and the shared response caches are guarded by a state lock, every
instance's mutable state (timelines, metadata, availability evaluation) is
read under a per-instance re-entrant lock, and cached payloads are frozen
(:func:`~repro.api.http.freeze_json`) so no client can corrupt what another
sees.  :class:`RequestExecutor` is the thread-pool front end the concurrent
crawl engine and the load harness drive requests through.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.api.http import (
    USER_AGENT_HEADER,
    HTTPRequest,
    HTTPResponse,
    HTTPStatus,
    freeze_json,
)
from repro.api.router import Router
from repro.fediverse.errors import UnknownInstanceError
from repro.fediverse.instance import Instance
from repro.fediverse.post import Post, mentions_in
from repro.fediverse.registry import FediverseRegistry

#: Default page size of the public timeline endpoint (Mastodon's default is
#: 20, with a maximum of 40; Pleroma accepts larger pages).
DEFAULT_TIMELINE_LIMIT = 20
MAX_TIMELINE_LIMIT = 40

#: The error message of a user-agent-blocked 403 — distinct from every
#: availability reason, so crawl failures attribute it unambiguously.
UA_BLOCKED_REASON = "user agent blocked"


def agent_blocked(instance: Instance, user_agent: str) -> bool:
    """Return ``True`` when ``instance`` refuses this ``user_agent``.

    Epicyon-style matching: a case-insensitive substring test of each
    blocked token against the presented agent string.  An empty agent
    string is never blocked (the simulation's internal callers — delivery,
    tests poking the server directly — present no User-Agent).
    """
    blocked = instance.blocked_user_agents
    if not blocked or not user_agent:
        return False
    agent = user_agent.lower()
    return any(token.lower() in agent for token in blocked)


def serialise_status(post: Post) -> dict[str, Any]:
    """Serialise a post for the timeline API, bypassing the seed's URI path.

    Produces exactly :meth:`~repro.fediverse.post.Post.to_dict` (pinned by a
    test), but builds the object URI with a plain f-string: ``post.domain``
    is normalised at construction, so the per-post ``normalise_domain`` walk
    inside ``make_post_uri`` is provably redundant on this path.
    """
    return {
        "id": post.post_id,
        "uri": f"https://{post.domain}/objects/{post.post_id}",
        "account": post.author,
        "content": post.content,
        "created_at": post.created_at,
        "visibility": post.visibility.value,
        "sensitive": post.sensitive,
        "spoiler_text": post.subject or "",
        "in_reply_to_id": post.in_reply_to,
        "language": post.language,
        "tags": list(post.tags),
        "media_attachments": [
            {
                "url": attachment.url,
                "type": attachment.media_type,
                "description": attachment.description,
            }
            for attachment in post.attachments
        ],
        "mentions": mentions_in(post.content),
        "bot": post.is_bot,
    }


@dataclass(frozen=True)
class TimelineStream:
    """A whole paged timeline collection, served in one batch call.

    ``pages`` is the number of page requests a client paging with the given
    page size would have made — the stream keeps request accounting
    identical to the per-page path, it only skips the per-page transport.

    ``retry_after``/``fault_kind``/``attempts`` are populated only by the
    fault-injection transport and the retrying client; the plain server
    always leaves them at their defaults.
    """

    status: HTTPStatus
    reason: str
    statuses: list[dict[str, Any]]
    pages: int
    retry_after: float | None = None
    fault_kind: str = ""
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """Return ``True`` when the timeline was served."""
        return 200 <= int(self.status) < 300


def count_timeline_pages(
    total: int, page_size: int, effective: int, max_posts: int | None
) -> tuple[int, int]:
    """Replay the client paging loop arithmetically.

    Returns ``(collected, pages)`` for a timeline of ``total`` posts served
    with a per-page clamp of ``effective`` posts to a client requesting
    ``page_size``-sized pages: every iteration is one page request, stopping
    on an empty page, a short page (relative to the *client's* page size) or
    the ``max_posts`` cap.  Shared by :meth:`FediverseAPIServer.stream_timeline`
    and the fault injector's truncated-stream twin.
    """
    collected = 0
    pages = 1
    while True:
        page_len = min(effective, total - collected)
        if page_len == 0:
            break
        collected += page_len
        if max_posts is not None and collected >= max_posts:
            collected = max_posts
            break
        if page_len < page_size:
            break
        pages += 1
    return collected, pages


class FediverseAPIServer:
    """Serve the Mastodon/Pleroma public API for every registered instance."""

    def __init__(self, registry: FediverseRegistry) -> None:
        self.registry = registry
        self.router = Router()
        self.requests_served = 0
        #: Guards the request counter, the shared error cache and the
        #: per-instance lock table.  Held only for constant-time updates.
        self._state_lock = threading.Lock()
        #: One re-entrant lock per instance domain: every read of an
        #: instance's mutable state (metadata fingerprinting and payload
        #: rebuilds, timeline walks, endpoint dispatch) happens under its
        #: domain's lock.  Re-entrant because the batch path holds it while
        #: serving the cached metadata payload, which re-acquires.
        self._instance_locks: dict[str, threading.RLock] = {}
        #: Metadata responses served by the batch path, keyed by domain and
        #: validated against :meth:`Instance.metadata_fingerprint` (the
        #: single-request path stays stateless and seed-faithful).  Cached
        #: payloads are frozen — shared across every concurrent client —
        #: and each domain's entry is only written under that domain's lock.
        self._metadata_cache: dict[str, tuple[tuple, HTTPResponse]] = {}
        #: Availability-error responses, keyed by (status, reason) — the
        #: full availability fingerprint at the serving instant, since both
        #: fields are re-derived from :meth:`InstanceAvailability.status_at`
        #: on every call.  An instance flipping down mid-campaign (churn)
        #: therefore keys a *different* entry; nothing here can go stale.
        #: The responses are frozen and content-equal, so they are shared;
        #: writes happen under the state lock.
        self._error_cache: dict[tuple[int, str], HTTPResponse] = {}
        self._register_routes()

    def instance_lock(self, domain: str) -> threading.RLock:
        """Return (creating on first use) the lock guarding one instance."""
        lock = self._instance_locks.get(domain)
        if lock is None:
            with self._state_lock:
                lock = self._instance_locks.setdefault(domain, threading.RLock())
        return lock

    def _count_requests(self, count: int) -> None:
        with self._state_lock:
            self.requests_served += count

    # ------------------------------------------------------------------ #
    # Transport entry point
    # ------------------------------------------------------------------ #
    def handle(self, request: HTTPRequest) -> HTTPResponse:
        """Handle one request addressed to one instance."""
        self._count_requests(1)
        try:
            instance = self.registry.get(request.domain)
        except UnknownInstanceError:
            return HTTPResponse.error(HTTPStatus.NOT_FOUND, "unknown instance")

        with self.instance_lock(instance.domain):
            now = self.registry.clock.now()
            if not instance.availability.ok_at(now):
                status = HTTPStatus(instance.availability.status_at(now))
                return HTTPResponse.error(
                    status, instance.availability.reason_at(now)
                )
            agent = request.headers.get(USER_AGENT_HEADER, "")
            if agent_blocked(instance, agent):
                return HTTPResponse.error(HTTPStatus.FORBIDDEN, UA_BLOCKED_REASON)
            return self.router.dispatch(request)

    def get(
        self, domain: str, url: str, *, user_agent: str = ""
    ) -> HTTPResponse:
        """Convenience wrapper: handle a GET described by a path-with-query."""
        headers = {USER_AGENT_HEADER: user_agent} if user_agent else None
        return self.handle(HTTPRequest.from_url(domain, url, headers))

    # ------------------------------------------------------------------ #
    # Batch entry points (the crawl engine)
    # ------------------------------------------------------------------ #
    def handle_batch(
        self,
        domain: str,
        requests: Sequence[HTTPRequest | str],
        *,
        user_agent: str = "",
    ) -> list[HTTPResponse]:
        """Serve a group of requests addressed to one instance.

        The instance is resolved and its availability applied once for the
        whole group — a batch models a single instant, which is exactly how
        the crawler issues them (the simulation clock never advances inside
        a snapshot or collection phase).  Static endpoint paths are served
        directly from the resolved instance, skipping the URL parse and the
        regex route walk; the metadata endpoint is additionally served from
        the fingerprint-validated payload cache.  Responses and request
        accounting are identical to per-request :meth:`handle` calls.
        """
        count = len(requests)
        self._count_requests(count)
        try:
            instance = self.registry.get(domain)
        except UnknownInstanceError:
            error = self._availability_error(404, "unknown instance")
            return [error] * count
        with self.instance_lock(instance.domain):
            availability = instance.availability
            now = self.registry.clock.now()
            if not availability.ok_at(now):
                error = self._availability_error(
                    availability.status_at(now), availability.reason_at(now)
                )
                return [error] * count
            if agent_blocked(instance, user_agent):
                error = self._availability_error(403, UA_BLOCKED_REASON)
                return [error] * count

            responses = []
            serves = self._resolved_serves
            for request in requests:
                path = request if isinstance(request, str) else request.path
                serve = serves.get(path)
                if serve is not None:
                    responses.append(serve(instance))
                    continue
                if isinstance(request, str):
                    request = HTTPRequest.from_url(domain, request)
                responses.append(self.router.dispatch(request))
            return responses

    def metadata_payload(self, instance: Instance) -> Any:
        """Return the instance-metadata payload, cached across batch calls.

        The cache is validated against
        :meth:`~repro.fediverse.instance.Instance.metadata_fingerprint`, so
        any mutation reachable through the regular mutators (users, posts,
        peers, descriptive fields, version-bumping MRF configuration
        changes) rebuilds the payload.  While the fingerprint is unchanged
        the *same* (frozen, read-only) payload object is returned, which is
        what lets the crawler validate its parsed-template cache with an
        ``is`` check.
        """
        return self._serve_metadata(instance).body

    def metadata_round(
        self, domains: Sequence[str], *, user_agent: str = ""
    ) -> list[HTTPResponse]:
        """Serve one snapshot round's metadata requests in a single call.

        Returns one response per domain, in order — exactly what the same
        sequence of :meth:`handle` calls would produce at this instant —
        with one availability evaluation per domain and cached payloads and
        error responses.  Domains must already be normalised (crawl rounds
        draw them from directory listings and instance records).
        """
        self._count_requests(len(domains))
        registry = self.registry
        now = registry.clock.now()
        get = registry.get_normalised
        serve = self._serve_metadata
        responses = []
        for domain in domains:
            try:
                instance = get(domain)
            except UnknownInstanceError:
                responses.append(self._availability_error(404, "unknown instance"))
                continue
            with self.instance_lock(instance.domain):
                availability = instance.availability
                if not availability.ok_at(now):
                    responses.append(
                        self._availability_error(
                            availability.status_at(now), availability.reason_at(now)
                        )
                    )
                elif agent_blocked(instance, user_agent):
                    responses.append(self._availability_error(403, UA_BLOCKED_REASON))
                else:
                    responses.append(serve(instance))
        return responses

    def _availability_error(self, status: int, reason: str) -> HTTPResponse:
        """Return the shared frozen error response for one availability state.

        The ``(status, reason)`` key *is* the availability fingerprint at
        the serving instant — both values come from
        ``InstanceAvailability.status_at/reason_at(now)`` on every call —
        so a churned instance flipping from 200 to 503 mid-campaign simply
        selects a different entry; cached entries can never serve a stale
        availability.  Double-checked under the state lock so concurrent
        clients share one frozen response per distinct error.
        """
        key = (status, reason)
        response = self._error_cache.get(key)
        if response is None:
            with self._state_lock:
                response = self._error_cache.get(key)
                if response is None:
                    response = HTTPResponse.error(HTTPStatus(status), reason)
                    self._error_cache[key] = response
        return response

    def stream_timeline(
        self,
        domain: str,
        *,
        local: bool = False,
        page_size: int = DEFAULT_TIMELINE_LIMIT,
        max_posts: int | None = None,
        user_agent: str = "",
    ) -> TimelineStream:
        """Serve a whole paged timeline collection in one call.

        Replays the exact accounting of a client paging with ``page_size``
        through ``/api/v1/timelines/public``: ``pages`` page requests are
        counted (the server-side limit clamp applies per page, while the
        short-page stop condition uses the client's requested size), and
        the statuses are the concatenation of the pages that client would
        have received.  Serving them in one pass replaces the per-page
        ``ids.index(max_id)`` scan + slice — quadratic in timeline length —
        with a single walk.
        """
        self._count_requests(1)  # at least one page request is always made
        try:
            instance = self.registry.get(domain)
        except UnknownInstanceError:
            return TimelineStream(HTTPStatus.NOT_FOUND, "unknown instance", [], 1)
        with self.instance_lock(instance.domain):
            availability = instance.availability
            now = self.registry.clock.now()
            if not availability.ok_at(now):
                status = HTTPStatus(availability.status_at(now))
                return TimelineStream(status, availability.reason_at(now), [], 1)
            if agent_blocked(instance, user_agent):
                return TimelineStream(
                    HTTPStatus.FORBIDDEN, UA_BLOCKED_REASON, [], 1
                )
            if not instance.expose_public_timeline:
                return TimelineStream(
                    HTTPStatus.FORBIDDEN,
                    "public timeline requires authentication",
                    [],
                    1,
                )

            effective = max(1, min(page_size, MAX_TIMELINE_LIMIT))
            timeline = (
                instance.timelines.public
                if local
                else instance.timelines.whole_known_network
            )
            ids = timeline.latest(limit=0)  # the full timeline, newest first
            collected, pages = count_timeline_pages(
                len(ids), page_size, effective, max_posts
            )
            self._count_requests(pages - 1)
            local_posts = instance.posts
            remote_posts = instance.remote_posts
            statuses = [
                serialise_status(
                    local_posts[post_id]
                    if post_id in local_posts
                    else remote_posts[post_id]
                )
                for post_id in ids[:collected]
            ]
        return TimelineStream(HTTPStatus.OK, "", statuses, pages)

    # ------------------------------------------------------------------ #
    # Endpoint handlers
    # ------------------------------------------------------------------ #
    def _register_routes(self) -> None:
        self.router.add("/api/v1/instance", self._instance_endpoint)
        self.router.add("/api/v1/instance/peers", self._peers_endpoint)
        self.router.add("/api/v1/timelines/public", self._public_timeline_endpoint)
        self.router.add("/nodeinfo/2.0", self._nodeinfo_endpoint)
        self.router.add("/api/v1/accounts/{username}", self._account_endpoint)
        self.router.add("/api/v1/accounts/{username}/statuses", self._account_statuses_endpoint)
        # Static endpoints the batch path serves without the regex walk.
        self._resolved_serves = {
            "/api/v1/instance": self._serve_metadata,
            "/api/v1/instance/peers": self._serve_peers,
            "/nodeinfo/2.0": self._serve_nodeinfo,
        }

    def _serve_metadata(self, instance: Instance) -> HTTPResponse:
        # Fingerprint and rebuild under the instance's lock (re-entrant, so
        # callers already holding it — handle_batch — nest freely), with a
        # double-check so concurrent first requests build the payload once.
        # The cached payload is frozen: it is shared by every client of the
        # batch path, and freezing keeps one caller's mutation from
        # corrupting what the others (and later rounds) see.
        with self.instance_lock(instance.domain):
            fingerprint = instance.metadata_fingerprint()
            cached = self._metadata_cache.get(instance.domain)
            if cached is not None and cached[0] == fingerprint:
                return cached[1]
            response = HTTPResponse.json_ok(freeze_json(instance.to_api_dict()))
            self._metadata_cache[instance.domain] = (fingerprint, response)
            return response

    def _serve_peers(self, instance: Instance) -> HTTPResponse:
        return HTTPResponse.json_ok(sorted(instance.peers))

    def _serve_nodeinfo(self, instance: Instance) -> HTTPResponse:
        if not instance.expose_nodeinfo:
            return HTTPResponse.error(HTTPStatus.NOT_FOUND, "nodeinfo not published")
        return HTTPResponse.json_ok(
            {
                "version": "2.0",
                "software": {
                    "name": instance.software.value,
                    "version": instance.version,
                },
                "protocols": ["activitypub"],
                "openRegistrations": instance.registrations_open,
                "usage": {
                    "users": {"total": instance.user_count},
                    "localPosts": instance.local_post_count,
                },
                "metadata": {
                    "federation": instance.describe_mrf() if instance.is_pleroma else {},
                },
            }
        )

    def _instance_for(self, request: HTTPRequest) -> Instance:
        return self.registry.get(request.domain)

    def _instance_endpoint(self, request: HTTPRequest) -> HTTPResponse:
        """``/api/v1/instance``: metadata including the MRF configuration."""
        instance = self._instance_for(request)
        return HTTPResponse.json_ok(instance.to_api_dict())

    def _peers_endpoint(self, request: HTTPRequest) -> HTTPResponse:
        """``/api/v1/instance/peers``: every domain ever federated with."""
        return self._serve_peers(self._instance_for(request))

    def _public_timeline_endpoint(self, request: HTTPRequest) -> HTTPResponse:
        """``/api/v1/timelines/public``: the public (or whole-known-network) timeline."""
        instance = self._instance_for(request)
        if not instance.expose_public_timeline:
            return HTTPResponse.error(
                HTTPStatus.FORBIDDEN, "public timeline requires authentication"
            )
        local_only = request.bool_param("local", default=False)
        # A malformed ``limit`` raises ValueError, which the router boundary
        # converts to a 400 response.
        limit = request.int_param("limit", DEFAULT_TIMELINE_LIMIT)
        limit = max(1, min(limit, MAX_TIMELINE_LIMIT))
        max_id = request.param("max_id")

        timeline = (
            instance.timelines.public if local_only else instance.timelines.whole_known_network
        )
        post_ids = timeline.latest(limit=limit, max_id=max_id)
        statuses: list[dict[str, Any]] = []
        for post_id in post_ids:
            post = instance.get_post(post_id)
            statuses.append(post.to_dict())
        return HTTPResponse.json_ok(statuses)

    def _nodeinfo_endpoint(self, request: HTTPRequest) -> HTTPResponse:
        """``/nodeinfo/2.0``: software name/version and usage counts."""
        return self._serve_nodeinfo(self._instance_for(request))

    def _account_endpoint(self, request: HTTPRequest, username: str) -> HTTPResponse:
        """``/api/v1/accounts/{username}``: a single local account."""
        instance = self._instance_for(request)
        if not instance.has_user(username):
            return HTTPResponse.error(HTTPStatus.NOT_FOUND, f"unknown account: {username}")
        return HTTPResponse.json_ok(instance.get_user(username).to_dict())

    def _account_statuses_endpoint(self, request: HTTPRequest, username: str) -> HTTPResponse:
        """``/api/v1/accounts/{username}/statuses``: a user's local posts."""
        instance = self._instance_for(request)
        if not instance.has_user(username):
            return HTTPResponse.error(HTTPStatus.NOT_FOUND, f"unknown account: {username}")
        user = instance.get_user(username)
        limit = request.int_param("limit", DEFAULT_TIMELINE_LIMIT)
        statuses = []
        for post_id in reversed(user.post_ids[-max(1, limit):]):
            statuses.append(instance.get_post(post_id).to_dict())
        return HTTPResponse.json_ok(statuses)


class RequestExecutor:
    """Run groups of request-serving tasks on a bounded thread pool.

    The concurrent front end of the serving layer: callers hand it a list
    of zero-argument tasks (each typically a per-worker slice of a crawl
    phase) and receive the results **in task order**, whatever order the
    threads finished in.  With one thread the executor runs tasks inline —
    no pool, no handoff — so a 1-thread concurrent crawl pays nothing over
    the sequential engine.  The pool is created lazily on the first
    multi-task run and reused until :meth:`shutdown`.
    """

    def __init__(self, threads: int = 1) -> None:
        if threads < 1:
            raise ValueError("threads must be at least 1")
        self.threads = threads
        self._pool: ThreadPoolExecutor | None = None

    def run(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run every task, returning their results in task order."""
        tasks = list(tasks)
        if self.threads == 1 or len(tasks) <= 1:
            return [task() for task in tasks]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="serving"
            )
        # Submit everything before gathering anything: the gather order is
        # the task order, the execution order is the pool's.
        futures = [self._pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        """Tear down the pool (idempotent; the executor stays reusable)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "RequestExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
