"""The API server: serves every instance of a registry over the in-process
transport.

One :class:`FediverseAPIServer` fronts an entire
:class:`~repro.fediverse.registry.FediverseRegistry`.  A request names the
instance domain it targets; the server first applies that instance's
availability (so 404/403/502/503/410 instances fail exactly as they did for
the paper's crawler) and then routes the request to the endpoint handlers.
"""

from __future__ import annotations

from typing import Any

from repro.api.http import HTTPRequest, HTTPResponse, HTTPStatus
from repro.api.router import Router
from repro.fediverse.errors import UnknownInstanceError
from repro.fediverse.instance import Instance
from repro.fediverse.registry import FediverseRegistry

#: Default page size of the public timeline endpoint (Mastodon's default is
#: 20, with a maximum of 40; Pleroma accepts larger pages).
DEFAULT_TIMELINE_LIMIT = 20
MAX_TIMELINE_LIMIT = 40


class FediverseAPIServer:
    """Serve the Mastodon/Pleroma public API for every registered instance."""

    def __init__(self, registry: FediverseRegistry) -> None:
        self.registry = registry
        self.router = Router()
        self.requests_served = 0
        self._register_routes()

    # ------------------------------------------------------------------ #
    # Transport entry point
    # ------------------------------------------------------------------ #
    def handle(self, request: HTTPRequest) -> HTTPResponse:
        """Handle one request addressed to one instance."""
        self.requests_served += 1
        try:
            instance = self.registry.get(request.domain)
        except UnknownInstanceError:
            return HTTPResponse.error(HTTPStatus.NOT_FOUND, "unknown instance")

        now = self.registry.clock.now()
        if not instance.availability.ok_at(now):
            status = HTTPStatus(instance.availability.status_at(now))
            return HTTPResponse.error(status, instance.availability.reason_at(now))

        return self.router.dispatch(request)

    def get(self, domain: str, url: str) -> HTTPResponse:
        """Convenience wrapper: handle a GET described by a path-with-query."""
        return self.handle(HTTPRequest.from_url(domain, url))

    # ------------------------------------------------------------------ #
    # Endpoint handlers
    # ------------------------------------------------------------------ #
    def _register_routes(self) -> None:
        self.router.add("/api/v1/instance", self._instance_endpoint)
        self.router.add("/api/v1/instance/peers", self._peers_endpoint)
        self.router.add("/api/v1/timelines/public", self._public_timeline_endpoint)
        self.router.add("/nodeinfo/2.0", self._nodeinfo_endpoint)
        self.router.add("/api/v1/accounts/{username}", self._account_endpoint)
        self.router.add("/api/v1/accounts/{username}/statuses", self._account_statuses_endpoint)

    def _instance_for(self, request: HTTPRequest) -> Instance:
        return self.registry.get(request.domain)

    def _instance_endpoint(self, request: HTTPRequest) -> HTTPResponse:
        """``/api/v1/instance``: metadata including the MRF configuration."""
        instance = self._instance_for(request)
        return HTTPResponse.json_ok(instance.to_api_dict())

    def _peers_endpoint(self, request: HTTPRequest) -> HTTPResponse:
        """``/api/v1/instance/peers``: every domain ever federated with."""
        instance = self._instance_for(request)
        return HTTPResponse.json_ok(sorted(instance.peers))

    def _public_timeline_endpoint(self, request: HTTPRequest) -> HTTPResponse:
        """``/api/v1/timelines/public``: the public (or whole-known-network) timeline."""
        instance = self._instance_for(request)
        if not instance.expose_public_timeline:
            return HTTPResponse.error(
                HTTPStatus.FORBIDDEN, "public timeline requires authentication"
            )
        local_only = request.bool_param("local", default=False)
        try:
            limit = request.int_param("limit", DEFAULT_TIMELINE_LIMIT)
        except ValueError as exc:
            return HTTPResponse.error(HTTPStatus.BAD_REQUEST, str(exc))
        limit = max(1, min(limit, MAX_TIMELINE_LIMIT))
        max_id = request.param("max_id")

        timeline = (
            instance.timelines.public if local_only else instance.timelines.whole_known_network
        )
        post_ids = timeline.latest(limit=limit, max_id=max_id)
        statuses: list[dict[str, Any]] = []
        for post_id in post_ids:
            post = instance.get_post(post_id)
            statuses.append(post.to_dict())
        return HTTPResponse.json_ok(statuses)

    def _nodeinfo_endpoint(self, request: HTTPRequest) -> HTTPResponse:
        """``/nodeinfo/2.0``: software name/version and usage counts."""
        instance = self._instance_for(request)
        return HTTPResponse.json_ok(
            {
                "version": "2.0",
                "software": {
                    "name": instance.software.value,
                    "version": instance.version,
                },
                "protocols": ["activitypub"],
                "openRegistrations": instance.registrations_open,
                "usage": {
                    "users": {"total": instance.user_count},
                    "localPosts": instance.local_post_count,
                },
                "metadata": {
                    "federation": instance.describe_mrf() if instance.is_pleroma else {},
                },
            }
        )

    def _account_endpoint(self, request: HTTPRequest, username: str) -> HTTPResponse:
        """``/api/v1/accounts/{username}``: a single local account."""
        instance = self._instance_for(request)
        if not instance.has_user(username):
            return HTTPResponse.error(HTTPStatus.NOT_FOUND, f"unknown account: {username}")
        return HTTPResponse.json_ok(instance.get_user(username).to_dict())

    def _account_statuses_endpoint(self, request: HTTPRequest, username: str) -> HTTPResponse:
        """``/api/v1/accounts/{username}/statuses``: a user's local posts."""
        instance = self._instance_for(request)
        if not instance.has_user(username):
            return HTTPResponse.error(HTTPStatus.NOT_FOUND, f"unknown account: {username}")
        user = instance.get_user(username)
        try:
            limit = request.int_param("limit", DEFAULT_TIMELINE_LIMIT)
        except ValueError as exc:
            return HTTPResponse.error(HTTPStatus.BAD_REQUEST, str(exc))
        statuses = []
        for post_id in reversed(user.post_ids[-max(1, limit):]):
            statuses.append(instance.get_post(post_id).to_dict())
        return HTTPResponse.json_ok(statuses)
