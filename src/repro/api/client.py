"""The HTTP-like client used by the crawler.

The client wraps the in-process :class:`~repro.api.server.FediverseAPIServer`
behind the same surface a real HTTP client library would expose: GET a path
on a domain, receive JSON or an :class:`APIError` carrying the status code.
It also keeps per-status counters, which is how the dataset-statistics
experiment reproduces the paper's breakdown of uncrawlable instances.

Resilience: constructed with a :class:`~repro.faults.retry.RetryPolicy`, the
client retries *transient* failures (statuses the base server never emits, a
``Retry-After`` header, or a malformed body) with capped exponential backoff
and deterministic per-domain jitter, honours ``Retry-After``, enforces a
per-domain retry budget, and opens a per-domain circuit breaker after
consecutive transient failures.  Every wait is charged to the registry's
*simulated* clock.  Permanent failures are never retried — so with a
zero-fault transport the resilient client is byte-for-byte the plain one.

Accounting contract: every attempt that reaches the transport is recorded
exactly once in :class:`ClientStats` (``requests``/``by_status``/
``by_domain``), on every path — single ``get``, ``get_many`` batches,
``metadata_many`` rounds and ``stream_timeline`` — so retries are visible in
the same counters the dataset statistics already use.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Callable, Mapping, Sequence

from repro.api.http import (
    ATTEMPTS_HEADER,
    DEFAULT_USER_AGENT,
    FAULT_HEADER,
    HTTPRequest,
    HTTPResponse,
    HTTPStatus,
)
from repro.api.server import FediverseAPIServer, TimelineStream
from repro.faults.plan import FaultKind
from repro.faults.retry import TRANSIENT_STATUSES, RetryPolicy


class APIError(Exception):
    """Raised when a request returns a non-2xx status."""

    def __init__(
        self,
        domain: str,
        path: str,
        status: HTTPStatus,
        message: str = "",
        attempts: int = 1,
        fault_kind: str = "",
    ) -> None:
        super().__init__(f"GET https://{domain}{path} -> {int(status)} {status.reason}")
        self.domain = domain
        self.path = path
        self.status = status
        self.message = message
        #: How many attempts the retrying client spent on the request.
        self.attempts = attempts
        #: The injected-fault attribution, when the failure was injected.
        self.fault_kind = fault_kind


@dataclass
class ClientStats:
    """Counters kept by the client across all requests.

    Every counter update is atomic under an internal lock, so one client
    (and its stats) can be shared between concurrent crawler threads.  The
    ``by_status``/``by_domain`` read-modify-writes in particular were
    lost-update races without it: two threads reading the same
    ``get(domain, 0)`` and both writing back ``+ 1`` silently drop a
    request from the accounting the dataset statistics are built on.
    """

    requests: int = 0
    ok: int = 0
    failed: int = 0
    by_status: dict[int, int] = field(default_factory=dict)
    by_domain: dict[str, int] = field(default_factory=dict)
    #: Retry attempts issued on top of first attempts (subset of ``requests``).
    retries: int = 0
    #: Requests answered locally by an open circuit breaker (these are
    #: counted in ``requests`` too — the crawler made them, the wire didn't).
    short_circuited: int = 0
    #: Simulated seconds spent waiting between attempts.
    backoff_seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(
        self, status: HTTPStatus, domain: str = "", short_circuited: bool = False
    ) -> None:
        """Update the counters for one response status, atomically."""
        code = int(status)
        with self._lock:
            self.requests += 1
            self.by_status[code] = self.by_status.get(code, 0) + 1
            if 200 <= code < 300:
                self.ok += 1
            else:
                self.failed += 1
            if domain:
                self.by_domain[domain] = self.by_domain.get(domain, 0) + 1
            if short_circuited:
                self.short_circuited += 1

    def add_retries(self, count: int) -> None:
        """Count ``count`` retry attempts, atomically."""
        with self._lock:
            self.retries += count

    def add_backoff(self, seconds: float) -> None:
        """Charge ``seconds`` of simulated backoff wait, atomically."""
        with self._lock:
            self.backoff_seconds += seconds


@dataclass
class _BreakerState:
    """Per-domain circuit-breaker bookkeeping."""

    failures: int = 0
    opened_at: float | None = None


class APIClient:
    """GET JSON documents from instances of the simulated fediverse."""

    def __init__(
        self,
        server: FediverseAPIServer,
        retry: RetryPolicy | None = None,
        user_agent: str = DEFAULT_USER_AGENT,
    ) -> None:
        self.server = server
        self.retry = retry
        #: Sent with every request; UA-blocking instances 403 the default
        #: crawler identification (``CRAWLER_UA_TOKEN``).
        self.user_agent = user_agent
        self.stats = ClientStats()
        self._budgets: dict[str, int] = {}
        self._jitter: dict[str, random.Random] = {}
        self._breakers: dict[str, _BreakerState] = {}

    # ------------------------------------------------------------------ #
    # Resilience plumbing
    # ------------------------------------------------------------------ #
    def _clock_now(self) -> float:
        return self.server.registry.clock.now()

    def _budget(self, domain: str) -> int:
        assert self.retry is not None
        return self._budgets.get(domain, self.retry.retry_budget_per_domain)

    def _spend(self, domain: str, count: int) -> None:
        self._budgets[domain] = self._budget(domain) - count
        self.stats.add_retries(count)

    def _jitter_rng(self, domain: str) -> random.Random:
        rng = self._jitter.get(domain)
        if rng is None:
            assert self.retry is not None
            rng = self.retry.jitter_stream(domain)
            self._jitter[domain] = rng
        return rng

    def _wait(
        self, domains_attempt: Sequence[tuple[str, float | None]], attempt: int
    ) -> None:
        """Back off before retry round ``attempt + 1``.

        Takes ``(domain, retry_after)`` pairs — one per pending logical
        request — advances each domain's jitter stream exactly once, and
        charges the *longest* resulting delay to the simulated clock (the
        round's retries are issued together once every wait has elapsed).
        """
        policy = self.retry
        assert policy is not None
        delay = 0.0
        for domain, retry_after in domains_attempt:
            delay = max(
                delay,
                policy.backoff_seconds(attempt, self._jitter_rng(domain), retry_after),
            )
        if delay > 0:
            self.server.registry.clock.advance(delay)
        self.stats.add_backoff(delay)

    def _normalise(self, response: HTTPResponse) -> HTTPResponse:
        """Convert a malformed 200 into the failure the client treats it as.

        A fault-injected 200 whose body is a garbage string fails JSON
        parsing in a real client; it surfaces here as a 502 tagged with the
        ``malformed`` fault kind (retryable — the base server never emits
        it).  Well-formed responses pass through untouched, preserving
        object identity for the server's shared caches.
        """
        if response.ok and isinstance(response.body, str):
            return HTTPResponse.error(
                HTTPStatus.BAD_GATEWAY,
                "malformed response body",
                {FAULT_HEADER: response.fault_kind or FaultKind.MALFORMED.value},
            )
        return response

    def _annotate(self, response: HTTPResponse, attempts: int) -> HTTPResponse:
        """Stamp a given-up-on failure with the attempts it consumed."""
        if attempts <= 1 or response.ok:
            return response
        headers = dict(response.headers)
        headers[ATTEMPTS_HEADER] = str(attempts)
        return HTTPResponse(
            status=response.status,
            body=response.body,
            headers=MappingProxyType(headers),
        )

    def _breaker_blocked(self, domain: str) -> HTTPResponse | None:
        """Return the short-circuit response for ``domain``, or ``None``.

        An open breaker answers 503 locally until its cooldown (simulated
        seconds) elapses; the first request after the cooldown is let
        through as a half-open trial, and its outcome re-opens or resets
        the breaker.
        """
        policy = self.retry
        if policy is None:
            return None
        state = self._breakers.get(domain)
        if state is None or state.opened_at is None:
            return None
        if self._clock_now() - state.opened_at >= policy.breaker_cooldown_seconds:
            return None  # half-open: let a trial through
        return HTTPResponse.error(
            HTTPStatus.SERVICE_UNAVAILABLE,
            "circuit breaker open",
            {FAULT_HEADER: FaultKind.CIRCUIT_OPEN.value},
        )

    def _record_short_circuit(self, response: HTTPResponse, domain: str) -> None:
        self.stats.record(response.status, domain, short_circuited=True)

    def _note_outcome(self, domain: str, transient_failure: bool) -> None:
        """Feed one logical request's final outcome to the breaker.

        Only *transient* failures count toward opening (a permanent 404 is
        the server answering normally); any other outcome resets the
        breaker.  With a zero-fault transport nothing is ever transient,
        so the breaker provably never opens.
        """
        policy = self.retry
        if policy is None:
            return
        if transient_failure:
            state = self._breakers.setdefault(domain, _BreakerState())
            state.failures += 1
            if state.failures >= policy.breaker_threshold:
                state.opened_at = self._clock_now()
        else:
            state = self._breakers.get(domain)
            if state is not None:
                state.failures = 0
                state.opened_at = None

    def _send_with_retry(
        self, domain: str, send: Callable[[], HTTPResponse]
    ) -> tuple[HTTPResponse, int]:
        """Issue one logical request, retrying transient failures."""
        policy = self.retry
        response = self._normalise(send())
        self.stats.record(response.status, domain)
        attempts = 1
        if policy is None:
            return response, attempts
        while (
            policy.transient(response)
            and attempts < policy.max_attempts
            and self._budget(domain) > 0
        ):
            self._wait([(domain, response.retry_after)], attempts)
            self._spend(domain, 1)
            response = self._normalise(send())
            self.stats.record(response.status, domain)
            attempts += 1
        self._note_outcome(domain, policy.transient(response))
        return response, attempts

    # ------------------------------------------------------------------ #
    # Request entry points
    # ------------------------------------------------------------------ #
    def get(self, domain: str, path: str) -> HTTPResponse:
        """Perform a GET and return the raw response (never raises)."""
        blocked = self._breaker_blocked(domain)
        if blocked is not None:
            self._record_short_circuit(blocked, domain)
            return blocked
        response, attempts = self._send_with_retry(
            domain,
            lambda: self.server.get(domain, path, user_agent=self.user_agent),
        )
        return self._annotate(response, attempts)

    # ------------------------------------------------------------------ #
    # Batched accessors (the crawl engine's transport)
    # ------------------------------------------------------------------ #
    def get_many(
        self, domain: str, paths: Sequence[HTTPRequest | str]
    ) -> list[HTTPResponse]:
        """Perform several GETs against one domain as a single batch.

        Routes through :meth:`FediverseAPIServer.handle_batch` — one
        instance resolution and availability check for the whole group —
        while keeping request accounting identical to issuing the same
        :meth:`get` calls one at a time: one counter update per response,
        in request order.  Transient failures are retried in batch rounds
        (only the still-failing requests are re-issued), so per-request
        attempt counts match the sequential path.
        """
        blocked = self._breaker_blocked(domain)
        if blocked is not None:
            for _ in paths:
                self._record_short_circuit(blocked, domain)
            return [blocked] * len(paths)
        policy = self.retry
        record = self.stats.record
        responses = [
            self._normalise(response)
            for response in self.server.handle_batch(
                domain, paths, user_agent=self.user_agent
            )
        ]
        for response in responses:
            record(response.status, domain)
        if policy is None:
            return responses
        attempts = [1] * len(responses)
        round_no = 1
        while round_no < policy.max_attempts:
            pending = [
                index
                for index, response in enumerate(responses)
                if policy.transient(response)
            ]
            if not pending or self._budget(domain) < len(pending):
                break
            self._wait(
                [(domain, responses[index].retry_after) for index in pending],
                round_no,
            )
            self._spend(domain, len(pending))
            retried = self.server.handle_batch(
                domain,
                [paths[index] for index in pending],
                user_agent=self.user_agent,
            )
            for index, response in zip(pending, retried):
                response = self._normalise(response)
                responses[index] = response
                record(response.status, domain)
                attempts[index] += 1
            round_no += 1
        for response in responses:
            self._note_outcome(domain, policy.transient(response))
        return [
            self._annotate(response, count)
            for response, count in zip(responses, attempts)
        ]

    def metadata_many(self, domains: Sequence[str]) -> list[HTTPResponse]:
        """Fetch ``/api/v1/instance`` for a whole snapshot round of domains.

        One response per domain, in order, with the same per-request
        accounting as sequential :meth:`instance_metadata` calls.
        Transient failures are retried in rounds through the same
        :meth:`FediverseAPIServer.metadata_round` entry point, preserving
        its payload cache.
        """
        policy = self.retry
        record = self.stats.record
        responses: list[HTTPResponse | None] = [None] * len(domains)
        open_domains: list[tuple[int, str]] = []
        for index, domain in enumerate(domains):
            blocked = self._breaker_blocked(domain)
            if blocked is not None:
                responses[index] = blocked
                self._record_short_circuit(blocked, domain)
            else:
                open_domains.append((index, domain))
        if open_domains:
            served = self.server.metadata_round(
                [domain for _, domain in open_domains],
                user_agent=self.user_agent,
            )
            for (index, domain), response in zip(open_domains, served):
                response = self._normalise(response)
                responses[index] = response
                record(response.status, domain)
        if policy is None:
            return list(responses)  # type: ignore[arg-type]
        attempts = [1] * len(domains)
        round_no = 1
        while round_no < policy.max_attempts:
            pending = [
                (index, domain)
                for index, domain in open_domains
                if policy.transient(responses[index]) and self._budget(domain) > 0
            ]
            if not pending:
                break
            self._wait(
                [
                    (domain, responses[index].retry_after)
                    for index, domain in pending
                ],
                round_no,
            )
            for _, domain in pending:
                self._spend(domain, 1)
            retried = self.server.metadata_round(
                [domain for _, domain in pending], user_agent=self.user_agent
            )
            for (index, domain), response in zip(pending, retried):
                response = self._normalise(response)
                responses[index] = response
                record(response.status, domain)
                attempts[index] += 1
            round_no += 1
        for index, domain in open_domains:
            self._note_outcome(domain, policy.transient(responses[index]))
        return [
            self._annotate(response, count)
            for response, count in zip(responses, attempts)
        ]

    def stream_timeline(
        self,
        domain: str,
        local: bool = True,
        page_size: int = 40,
        max_posts: int | None = None,
    ) -> TimelineStream:
        """Fetch a whole paged public timeline as one batched stream.

        Records exactly the page requests the seed's one-page-at-a-time
        loop would have made: ``stream.pages`` successful page responses,
        or a single failed response when the timeline is unreachable.
        Transient stream failures (injected 500/504/429) are retried whole;
        the returned stream's ``attempts`` reports the count.
        """
        blocked = self._breaker_blocked(domain)
        if blocked is not None:
            self._record_short_circuit(blocked, domain)
            return TimelineStream(
                status=blocked.status,
                reason="circuit breaker open",
                statuses=[],
                pages=1,
                fault_kind=FaultKind.CIRCUIT_OPEN.value,
            )
        policy = self.retry
        record = self.stats.record

        def pull() -> TimelineStream:
            stream = self.server.stream_timeline(
                domain,
                local=local,
                page_size=page_size,
                max_posts=max_posts,
                user_agent=self.user_agent,
            )
            status = stream.status
            for _ in range(stream.pages):
                record(status, domain)
            return stream

        stream = pull()
        if policy is None:
            return stream
        attempts = 1
        while (
            self._stream_transient(stream)
            and attempts < policy.max_attempts
            and self._budget(domain) > 0
        ):
            self._wait([(domain, stream.retry_after)], attempts)
            self._spend(domain, 1)
            stream = pull()
            attempts += 1
        self._note_outcome(domain, self._stream_transient(stream))
        if attempts > 1:
            stream = replace(stream, attempts=attempts)
        return stream

    @staticmethod
    def _stream_transient(stream: TimelineStream) -> bool:
        return (
            int(stream.status) in TRANSIENT_STATUSES
            or stream.retry_after is not None
        )

    def get_json(self, domain: str, path: str) -> Any:
        """Perform a GET and return the JSON body, raising :class:`APIError`."""
        response = self.get(domain, path)
        if not response.ok:
            message = ""
            if isinstance(response.body, Mapping):
                message = str(response.body.get("error", ""))
            attempts = int(response.header(ATTEMPTS_HEADER, "1") or 1)
            raise APIError(
                domain,
                path,
                response.status,
                message,
                attempts=attempts,
                fault_kind=response.fault_kind,
            )
        return response.body

    # ------------------------------------------------------------------ #
    # Endpoint convenience wrappers (the three APIs the paper crawls)
    # ------------------------------------------------------------------ #
    def instance_metadata(self, domain: str) -> dict[str, Any]:
        """Fetch ``/api/v1/instance``."""
        return self.get_json(domain, "/api/v1/instance")

    def instance_peers(self, domain: str) -> list[str]:
        """Fetch ``/api/v1/instance/peers``."""
        return self.get_json(domain, "/api/v1/instance/peers")

    def public_timeline(
        self,
        domain: str,
        local: bool = True,
        limit: int = 40,
        max_id: str | None = None,
    ) -> list[dict[str, Any]]:
        """Fetch one page of ``/api/v1/timelines/public``."""
        query = f"?local={'true' if local else 'false'}&limit={limit}"
        if max_id is not None:
            query += f"&max_id={max_id}"
        return self.get_json(domain, f"/api/v1/timelines/public{query}")

    def nodeinfo(self, domain: str) -> dict[str, Any]:
        """Fetch ``/nodeinfo/2.0``."""
        return self.get_json(domain, "/nodeinfo/2.0")
