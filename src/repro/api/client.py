"""The HTTP-like client used by the crawler.

The client wraps the in-process :class:`~repro.api.server.FediverseAPIServer`
behind the same surface a real HTTP client library would expose: GET a path
on a domain, receive JSON or an :class:`APIError` carrying the status code.
It also keeps per-status counters, which is how the dataset-statistics
experiment reproduces the paper's breakdown of uncrawlable instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.api.http import HTTPRequest, HTTPResponse, HTTPStatus
from repro.api.server import FediverseAPIServer, TimelineStream


class APIError(Exception):
    """Raised when a request returns a non-2xx status."""

    def __init__(self, domain: str, path: str, status: HTTPStatus, message: str = "") -> None:
        super().__init__(f"GET https://{domain}{path} -> {int(status)} {status.reason}")
        self.domain = domain
        self.path = path
        self.status = status
        self.message = message


@dataclass
class ClientStats:
    """Counters kept by the client across all requests."""

    requests: int = 0
    ok: int = 0
    failed: int = 0
    by_status: dict[int, int] = field(default_factory=dict)
    by_domain: dict[str, int] = field(default_factory=dict)

    def record(self, status: HTTPStatus, domain: str = "") -> None:
        """Update the counters for one response status."""
        self.requests += 1
        code = int(status)
        self.by_status[code] = self.by_status.get(code, 0) + 1
        if 200 <= code < 300:
            self.ok += 1
        else:
            self.failed += 1
        if domain:
            self.by_domain[domain] = self.by_domain.get(domain, 0) + 1


class APIClient:
    """GET JSON documents from instances of the simulated fediverse."""

    def __init__(self, server: FediverseAPIServer) -> None:
        self.server = server
        self.stats = ClientStats()

    def get(self, domain: str, path: str) -> HTTPResponse:
        """Perform a GET and return the raw response (never raises)."""
        response = self.server.get(domain, path)
        self.stats.record(response.status, domain)
        return response

    # ------------------------------------------------------------------ #
    # Batched accessors (the crawl engine's transport)
    # ------------------------------------------------------------------ #
    def get_many(
        self, domain: str, paths: Sequence[HTTPRequest | str]
    ) -> list[HTTPResponse]:
        """Perform several GETs against one domain as a single batch.

        Routes through :meth:`FediverseAPIServer.handle_batch` — one
        instance resolution and availability check for the whole group —
        while keeping request accounting identical to issuing the same
        :meth:`get` calls one at a time: one counter update per response,
        in request order.
        """
        responses = self.server.handle_batch(domain, paths)
        record = self.stats.record
        for response in responses:
            record(response.status, domain)
        return responses

    def metadata_many(self, domains: Sequence[str]) -> list[HTTPResponse]:
        """Fetch ``/api/v1/instance`` for a whole snapshot round of domains.

        One response per domain, in order, with the same per-request
        accounting as sequential :meth:`instance_metadata` calls.
        """
        responses = self.server.metadata_round(domains)
        record = self.stats.record
        for domain, response in zip(domains, responses):
            record(response.status, domain)
        return responses

    def stream_timeline(
        self,
        domain: str,
        local: bool = True,
        page_size: int = 40,
        max_posts: int | None = None,
    ) -> TimelineStream:
        """Fetch a whole paged public timeline as one batched stream.

        Records exactly the page requests the seed's one-page-at-a-time
        loop would have made: ``stream.pages`` successful page responses,
        or a single failed response when the timeline is unreachable.
        """
        stream = self.server.stream_timeline(
            domain, local=local, page_size=page_size, max_posts=max_posts
        )
        record = self.stats.record
        status = stream.status
        for _ in range(stream.pages):
            record(status, domain)
        return stream

    def get_json(self, domain: str, path: str) -> Any:
        """Perform a GET and return the JSON body, raising :class:`APIError`."""
        response = self.get(domain, path)
        if not response.ok:
            message = ""
            if isinstance(response.body, dict):
                message = str(response.body.get("error", ""))
            raise APIError(domain, path, response.status, message)
        return response.body

    # ------------------------------------------------------------------ #
    # Endpoint convenience wrappers (the three APIs the paper crawls)
    # ------------------------------------------------------------------ #
    def instance_metadata(self, domain: str) -> dict[str, Any]:
        """Fetch ``/api/v1/instance``."""
        return self.get_json(domain, "/api/v1/instance")

    def instance_peers(self, domain: str) -> list[str]:
        """Fetch ``/api/v1/instance/peers``."""
        return self.get_json(domain, "/api/v1/instance/peers")

    def public_timeline(
        self,
        domain: str,
        local: bool = True,
        limit: int = 40,
        max_id: str | None = None,
    ) -> list[dict[str, Any]]:
        """Fetch one page of ``/api/v1/timelines/public``."""
        query = f"?local={'true' if local else 'false'}&limit={limit}"
        if max_id is not None:
            query += f"&max_id={max_id}"
        return self.get_json(domain, f"/api/v1/timelines/public{query}")

    def nodeinfo(self, domain: str) -> dict[str, Any]:
        """Fetch ``/nodeinfo/2.0``."""
        return self.get_json(domain, "/nodeinfo/2.0")
