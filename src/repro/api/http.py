"""Minimal HTTP request/response objects for the in-process API."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from types import MappingProxyType
from typing import Any, Mapping
from urllib.parse import parse_qsl, urlsplit

#: Standard header carrying the server's requested retry delay (seconds).
RETRY_AFTER_HEADER = "Retry-After"
#: Simulation-side attribution header: which injected fault produced this
#: response.  A real crawler never sees it; the measurement-bias analysis
#: and the resilience bookkeeping (``CrawlFailure.fault_kind``) do.
FAULT_HEADER = "X-Fault"
#: Annotation added by the retrying client to a response it gave up on:
#: how many attempts the logical request consumed.
ATTEMPTS_HEADER = "X-Attempts"
#: The request header carrying the client's self-identification.
USER_AGENT_HEADER = "User-Agent"
#: The product token instances match (case-insensitively, as a substring)
#: to refuse known measurement crawlers — the Epicyon-style blocking the
#: ``ua_blocking_share`` scenario knob plants on instances.
CRAWLER_UA_TOKEN = "repro-crawler"
#: The User-Agent string the measurement client sends with every request.
#: It honestly names the crawler, so UA-blocking instances refuse it.
DEFAULT_USER_AGENT = f"{CRAWLER_UA_TOKEN}/1.0 (measurement campaign)"


class HTTPStatus(IntEnum):
    """The status codes used by the simulated fediverse.

    The non-200 codes are exactly those the paper reports for uncrawlable
    instances (Section 3): 404 not found, 403 authorisation required,
    502 bad gateway, 503 service unavailable and 410 gone — plus the
    transient codes the fault-injection layer produces (408 request
    timeout, 429 rate limited, 500 transient error, 504 gateway timeout).
    """

    OK = 200
    BAD_REQUEST = 400
    FORBIDDEN = 403
    NOT_FOUND = 404
    REQUEST_TIMEOUT = 408
    GONE = 410
    TOO_MANY_REQUESTS = 429
    INTERNAL_SERVER_ERROR = 500
    BAD_GATEWAY = 502
    SERVICE_UNAVAILABLE = 503
    GATEWAY_TIMEOUT = 504

    @property
    def reason(self) -> str:
        """Return the canonical reason phrase."""
        return _REASONS[int(self)]


_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    408: "Request Timeout",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: A shared immutable empty header mapping (the default for responses).
EMPTY_HEADERS: Mapping[str, str] = MappingProxyType({})


class FrozenList(list):
    """An immutable list, equal to (and interchangeable with) the list it froze.

    Cached JSON payloads are handed to every consumer of the server's batch
    path, so their nested lists must reject mutation — but they must also
    stay ``==`` to the fresh lists the stateless per-request path builds
    (tuples would not).  Subclassing ``list`` keeps equality, iteration and
    ``isinstance`` checks intact; only the mutators are disabled.
    """

    def _immutable(self, *args, **kwargs):
        raise TypeError("cannot modify a frozen response payload")

    __setitem__ = _immutable
    __delitem__ = _immutable
    __iadd__ = _immutable
    __imul__ = _immutable
    append = _immutable
    extend = _immutable
    insert = _immutable
    remove = _immutable
    pop = _immutable
    clear = _immutable
    sort = _immutable
    reverse = _immutable


def freeze_json(value: Any) -> Any:
    """Recursively freeze a JSON-style payload for safe cross-client sharing.

    Mappings become :class:`~types.MappingProxyType` views (like the frozen
    error bodies), lists become :class:`FrozenList`\\ s; scalars pass through.
    Frozen payloads compare equal to their mutable originals, so cached and
    freshly-built responses remain interchangeable.
    """
    if isinstance(value, Mapping):
        return MappingProxyType(
            {key: freeze_json(item) for key, item in value.items()}
        )
    if isinstance(value, list):
        return FrozenList(freeze_json(item) for item in value)
    return value


@dataclass(frozen=True)
class HTTPRequest:
    """A GET request addressed to one instance."""

    domain: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_url(cls, domain: str, url: str, headers: dict[str, str] | None = None) -> "HTTPRequest":
        """Build a request from a path-with-query string (e.g. ``/a/b?x=1``)."""
        parts = urlsplit(url)
        query = dict(parse_qsl(parts.query))
        return cls(domain=domain, path=parts.path, query=query, headers=dict(headers or {}))

    def param(self, name: str, default: str | None = None) -> str | None:
        """Return one query parameter."""
        return self.query.get(name, default)

    def int_param(self, name: str, default: int) -> int:
        """Return one query parameter parsed as an integer."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise ValueError(f"query parameter {name!r} is not an integer: {raw!r}") from exc

    def bool_param(self, name: str, default: bool = False) -> bool:
        """Return one query parameter parsed as a boolean."""
        raw = self.query.get(name)
        if raw is None:
            return default
        return raw.strip().lower() in ("1", "true", "yes", "on")


@dataclass(frozen=True)
class HTTPResponse:
    """The response produced by the API server for one request."""

    status: HTTPStatus
    body: Any = None
    headers: Mapping[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Return ``True`` for 2xx responses."""
        return 200 <= int(self.status) < 300

    def json(self) -> Any:
        """Return the JSON body, raising on error responses."""
        if not self.ok:
            raise ValueError(f"cannot read body of a {int(self.status)} response")
        return self.body

    def header(self, name: str, default: str | None = None) -> str | None:
        """Return one response header."""
        return self.headers.get(name, default)

    @property
    def retry_after(self) -> float | None:
        """Return the ``Retry-After`` delay in seconds, when present."""
        raw = self.headers.get(RETRY_AFTER_HEADER)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            return None

    @property
    def fault_kind(self) -> str:
        """Return the injected-fault attribution of this response (or ``""``)."""
        return self.headers.get(FAULT_HEADER, "")

    @classmethod
    def json_ok(cls, body: Any) -> "HTTPResponse":
        """Build a 200 response carrying a JSON body."""
        return cls(status=HTTPStatus.OK, body=body)

    @classmethod
    def error(
        cls,
        status: HTTPStatus,
        message: str = "",
        headers: Mapping[str, str] | None = None,
    ) -> "HTTPResponse":
        """Build an error response with a standard error body.

        Error responses are shared across consumers (the server's
        availability-error cache hands one object to a whole batch), so
        their body and headers are frozen behind ``MappingProxyType`` —
        a consumer mutating one cannot corrupt its siblings.
        """
        body = MappingProxyType({"error": message or status.reason})
        frozen_headers = (
            MappingProxyType(dict(headers)) if headers else EMPTY_HEADERS
        )
        return cls(status=status, body=body, headers=frozen_headers)
