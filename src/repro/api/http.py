"""Minimal HTTP request/response objects for the in-process API."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any
from urllib.parse import parse_qsl, urlsplit


class HTTPStatus(IntEnum):
    """The status codes used by the simulated fediverse.

    The non-200 codes are exactly those the paper reports for uncrawlable
    instances (Section 3): 404 not found, 403 authorisation required,
    502 bad gateway, 503 service unavailable and 410 gone.
    """

    OK = 200
    BAD_REQUEST = 400
    FORBIDDEN = 403
    NOT_FOUND = 404
    GONE = 410
    TOO_MANY_REQUESTS = 429
    INTERNAL_SERVER_ERROR = 500
    BAD_GATEWAY = 502
    SERVICE_UNAVAILABLE = 503

    @property
    def reason(self) -> str:
        """Return the canonical reason phrase."""
        return _REASONS[int(self)]


_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class HTTPRequest:
    """A GET request addressed to one instance."""

    domain: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_url(cls, domain: str, url: str, headers: dict[str, str] | None = None) -> "HTTPRequest":
        """Build a request from a path-with-query string (e.g. ``/a/b?x=1``)."""
        parts = urlsplit(url)
        query = dict(parse_qsl(parts.query))
        return cls(domain=domain, path=parts.path, query=query, headers=dict(headers or {}))

    def param(self, name: str, default: str | None = None) -> str | None:
        """Return one query parameter."""
        return self.query.get(name, default)

    def int_param(self, name: str, default: int) -> int:
        """Return one query parameter parsed as an integer."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise ValueError(f"query parameter {name!r} is not an integer: {raw!r}") from exc

    def bool_param(self, name: str, default: bool = False) -> bool:
        """Return one query parameter parsed as a boolean."""
        raw = self.query.get(name)
        if raw is None:
            return default
        return raw.strip().lower() in ("1", "true", "yes", "on")


@dataclass(frozen=True)
class HTTPResponse:
    """The response produced by the API server for one request."""

    status: HTTPStatus
    body: Any = None
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Return ``True`` for 2xx responses."""
        return 200 <= int(self.status) < 300

    def json(self) -> Any:
        """Return the JSON body, raising on error responses."""
        if not self.ok:
            raise ValueError(f"cannot read body of a {int(self.status)} response")
        return self.body

    @classmethod
    def json_ok(cls, body: Any) -> "HTTPResponse":
        """Build a 200 response carrying a JSON body."""
        return cls(status=HTTPStatus.OK, body=body)

    @classmethod
    def error(cls, status: HTTPStatus, message: str = "") -> "HTTPResponse":
        """Build an error response with a standard error body."""
        return cls(status=status, body={"error": message or status.reason})
