"""A small path router for the in-process API server."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.api.http import HTTPRequest, HTTPResponse, HTTPStatus

#: A handler receives the request plus any path parameters.
Handler = Callable[..., HTTPResponse]

_PARAM_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


@dataclass(frozen=True)
class Route:
    """One registered route: a path pattern and its handler."""

    pattern: str
    regex: re.Pattern[str]
    handler: Handler

    def match(self, path: str) -> dict[str, str] | None:
        """Return the path parameters when ``path`` matches, else ``None``."""
        found = self.regex.fullmatch(path)
        if found is None:
            return None
        return found.groupdict()


def _compile_pattern(pattern: str) -> re.Pattern[str]:
    """Convert ``/api/v1/accounts/{id}`` style patterns to a regex."""
    regex = _PARAM_RE.sub(lambda m: f"(?P<{m.group(1)}>[^/]+)", re.escape(pattern).replace(r"\{", "{").replace(r"\}", "}"))
    return re.compile(regex)


class Router:
    """Dispatch request paths to handlers."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``pattern`` (e.g. ``/api/v1/instance``)."""
        self._routes.append(
            Route(pattern=pattern, regex=_compile_pattern(pattern), handler=handler)
        )

    def route(self, pattern: str) -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`add`."""

        def decorator(handler: Handler) -> Handler:
            self.add(pattern, handler)
            return handler

        return decorator

    @property
    def patterns(self) -> list[str]:
        """Return all registered path patterns."""
        return [route.pattern for route in self._routes]

    def dispatch(self, request: HTTPRequest) -> HTTPResponse:
        """Find the matching route and invoke its handler.

        The router is the server's parsing boundary: a handler choking on a
        malformed request value (``HTTPRequest.int_param`` raising
        ``ValueError`` on ``?limit=abc``) must surface as a 400 response to
        the client, not escape the simulated server as a Python exception.
        """
        for route in self._routes:
            params = route.match(request.path)
            if params is not None:
                try:
                    return route.handler(request, **params)
                except ValueError as exc:
                    return HTTPResponse.error(HTTPStatus.BAD_REQUEST, str(exc))
        return HTTPResponse.error(HTTPStatus.NOT_FOUND, f"no route for {request.path}")
