"""An in-process, Mastodon-compatible HTTP API for the simulated fediverse.

The paper's measurement relies entirely on three public endpoints:

* ``/api/v1/instance`` — instance metadata, including (on Pleroma) the MRF
  configuration under ``pleroma.metadata.federation``;
* ``/api/v1/instance/peers`` — every domain the instance has ever federated
  with; and
* ``/api/v1/timelines/public?local=true`` — the public timeline.

This package reproduces those endpoints (plus nodeinfo) over an in-process
transport: requests and responses are plain objects, no sockets are opened,
but the crawler interacts with instances exactly the way the paper's crawler
interacted with live servers — including the 404/403/502/503/410 failures
the paper reports for uncrawlable instances.
"""

from repro.api.http import HTTPRequest, HTTPResponse, HTTPStatus
from repro.api.router import Route, Router
from repro.api.server import FediverseAPIServer
from repro.api.client import APIClient, APIError

__all__ = [
    "HTTPRequest",
    "HTTPResponse",
    "HTTPStatus",
    "Route",
    "Router",
    "FediverseAPIServer",
    "APIClient",
    "APIError",
]
