"""The measurement campaign: the paper's Section 3 methodology end-to-end.

A campaign discovers instances through a directory, expands the instance set
through the Peers API, snapshots every Pleroma instance's metadata on a
fixed interval over the campaign window (four hours in the paper), collects
public timelines, and finally assembles the analysis dataset.

Since the batched crawl engine, every phase emits per-round domain batches
through the API layer's batch entry points (one instance resolution and
availability check per domain per group, fused snapshot follow-ups,
server-side timeline streams), and crawl events flow through pluggable
:class:`CrawlSink`\\ s — the seed-compatible :class:`CrawlResult` assembly is
the default, while :class:`CountingCrawlSink` (via :meth:`MeasurementCampaign.run_counted`)
observes a campaign in O(1) memory, mirroring the delivery engine's sinks.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import Sequence

from repro.api.client import APIClient
from repro.api.server import FediverseAPIServer, RequestExecutor
from repro.crawler.builder import build_dataset
from repro.crawler.crawler import PEERS_PATH, InstanceCrawler, TimelineCrawler
from repro.crawler.directory import InstanceDirectory
from repro.crawler.snapshots import CrawlFailure, InstanceSnapshot, TimelineCollection
from repro.datasets.store import Dataset
from repro.faults.plan import FaultPlan, FaultSpec, compile_for_campaign
from repro.faults.retry import ResilienceConfig
from repro.fediverse.registry import FediverseRegistry


@dataclass
class CampaignConfig:
    """Parameters of one measurement campaign."""

    #: Length of the campaign window, in days (paper: ~129 days).
    duration_days: float = 14.0
    #: Metadata snapshot interval, in hours (paper: 4 hours).
    snapshot_interval_hours: float = 4.0
    #: Page size used against the Timeline API.
    timeline_page_size: int = 40
    #: Cap on posts collected per instance (``None`` = collect everything).
    max_posts_per_instance: int | None = None
    #: Directory coverage of the Pleroma instance population.
    directory_coverage: float = 0.95
    #: Whether to keep every snapshot (memory-heavy) or only the latest.
    keep_all_snapshots: bool = False

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.snapshot_interval_hours <= 0:
            raise ValueError("snapshot_interval_hours must be positive")

    @property
    def snapshot_rounds(self) -> int:
        """Return how many snapshot rounds the window contains."""
        return max(1, int(self.duration_days * 24 / self.snapshot_interval_hours))


@dataclass
class CrawlResult:
    """Everything a campaign produces."""

    dataset: Dataset
    latest_snapshots: dict[str, InstanceSnapshot] = field(default_factory=dict)
    snapshot_counts: dict[str, int] = field(default_factory=dict)
    all_snapshots: list[InstanceSnapshot] = field(default_factory=list)
    timelines: list[TimelineCollection] = field(default_factory=list)
    failures: list[CrawlFailure] = field(default_factory=list)
    discovered_domains: set[str] = field(default_factory=set)
    pleroma_domains: set[str] = field(default_factory=set)
    first_seen: dict[str, float] = field(default_factory=dict)
    api_requests: int = 0

    @property
    def crawlable_pleroma(self) -> int:
        """Return how many Pleroma instances answered the metadata API."""
        return len(self.latest_snapshots)

    @property
    def degraded_domains(self) -> set[str]:
        """Domains whose metadata was snapshotted but whose timeline failed.

        The graceful-degradation set: a partial crawl record was salvaged
        (the snapshot is kept, the timeline marked unreachable) instead of
        the domain being dropped.  Derived from the retained collections,
        so it is identical across crawl engines by construction.
        """
        return {
            collection.domain
            for collection in self.timelines
            if not collection.reachable
            and collection.domain in self.latest_snapshots
        }

    @property
    def failure_status_breakdown(self) -> dict[int, int]:
        """Return counts of the final failure status per uncrawlable domain."""
        last: dict[str, int] = {}
        for failure in self.failures:
            last[failure.domain] = failure.status_code
        breakdown: dict[int, int] = {}
        for domain, status in last.items():
            if domain in self.latest_snapshots:
                continue
            breakdown[status] = breakdown.get(status, 0) + 1
        return breakdown


def assemble_result(result: CrawlResult) -> CrawlResult:
    """Build the analysis dataset from a finished crawl.

    The single assembly point shared by :meth:`MeasurementCampaign.assemble`,
    the seed-faithful baseline and the perf harness — every
    :class:`CrawlResult` field the dataset depends on is threaded through
    here exactly once.
    """
    result.dataset = build_dataset(
        snapshots=result.latest_snapshots,
        timelines=result.timelines,
        failures=result.failures,
        snapshot_counts=result.snapshot_counts,
        first_seen=result.first_seen,
        discovered_domains=result.discovered_domains,
    )
    return result


# --------------------------------------------------------------------- #
# Crawl sinks
# --------------------------------------------------------------------- #
class CrawlSink(ABC):
    """Consumer of crawl events, in crawl order.

    Mirrors the delivery engine's sinks: the campaign notifies every sink
    of each metadata snapshot, recorded failure and timeline collection as
    it happens, so observers can choose how much state to materialise —
    the seed-compatible :class:`CrawlResult` retains everything, while
    :class:`CountingCrawlSink` keeps aggregates only.
    """

    def on_snapshot(self, round_index: int, snapshot: InstanceSnapshot) -> None:
        """Observe one metadata snapshot (after peer-list carry-forward)."""

    def on_failure(self, failure: CrawlFailure) -> None:
        """Observe one recorded crawl failure."""

    def on_timeline(self, collection: TimelineCollection) -> None:
        """Observe one collected timeline."""


class CountingCrawlSink(CrawlSink):
    """Keep aggregate campaign counters only — O(1) memory at any scale."""

    def __init__(self) -> None:
        self.snapshots = 0
        self.failures = 0
        self.failures_by_status: dict[int, int] = {}
        self.timelines = 0
        self.unreachable_timelines = 0
        self.posts = 0

    def on_snapshot(self, round_index: int, snapshot: InstanceSnapshot) -> None:
        """Count the snapshot."""
        self.snapshots += 1

    def on_failure(self, failure: CrawlFailure) -> None:
        """Count the failure, by status code."""
        self.failures += 1
        self.failures_by_status[failure.status_code] = (
            self.failures_by_status.get(failure.status_code, 0) + 1
        )

    def on_timeline(self, collection: TimelineCollection) -> None:
        """Count the collection and its posts."""
        self.timelines += 1
        if collection.reachable:
            self.posts += collection.post_count
        else:
            self.unreachable_timelines += 1


class MeasurementCampaign:
    """Run the full Section-3 measurement over a simulated fediverse."""

    def __init__(
        self,
        registry: FediverseRegistry,
        config: CampaignConfig | None = None,
        server: FediverseAPIServer | None = None,
        directory: InstanceDirectory | None = None,
        sinks: Sequence[CrawlSink] | None = None,
        faults: FaultSpec | FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        self.registry = registry
        self.config = config or CampaignConfig()
        self.server = server or FediverseAPIServer(registry)
        if isinstance(faults, FaultSpec):
            faults = compile_for_campaign(faults, registry, self.config.duration_days)
        self.fault_plan = faults
        #: The transport the client talks to: the server itself for a
        #: ``None``/inert plan (the zero-fault crawl runs on the exact PR 4
        #: transport object), a :class:`~repro.faults.injector.FaultInjector`
        #: otherwise.
        self.transport = faults.wrap(self.server) if faults is not None else self.server
        self.resilience = resilience
        retry_policy = resilience.retry_policy if resilience is not None else None
        self.client = APIClient(self.transport, retry=retry_policy)
        self.directory = directory or InstanceDirectory(
            registry, coverage=self.config.directory_coverage
        )
        self.instance_crawler = InstanceCrawler(self.client)
        self.timeline_crawler = TimelineCrawler(
            self.client, page_size=self.config.timeline_page_size
        )
        self.sinks: list[CrawlSink] = list(sinks or [])
        self.instance_crawler.on_failure = self._emit_failure
        #: Domains re-snapshotted by the per-round retry queue, and how
        #: many of those second passes produced a snapshot.  Campaign-side
        #: bookkeeping (not part of :class:`CrawlResult`) read by the
        #: chaos bench.
        self.round_retried = 0
        self.round_salvaged = 0

    def add_sink(self, sink: CrawlSink) -> None:
        """Attach another sink to the campaign."""
        self.sinks.append(sink)

    # ------------------------------------------------------------------ #
    # Sink notification
    # ------------------------------------------------------------------ #
    def _emit_snapshot(self, round_index: int, snapshot: InstanceSnapshot) -> None:
        for sink in self.sinks:
            sink.on_snapshot(round_index, snapshot)

    def _emit_failure(self, failure: CrawlFailure) -> None:
        for sink in self.sinks:
            sink.on_failure(failure)

    def _emit_timeline(self, collection: TimelineCollection) -> None:
        for sink in self.sinks:
            sink.on_timeline(collection)

    # ------------------------------------------------------------------ #
    # Campaign phases
    # ------------------------------------------------------------------ #
    def discover(self) -> tuple[set[str], set[str]]:
        """Phase 1: discover Pleroma instances and every peer they name.

        Returns ``(pleroma_domains, all_known_domains)``.
        """
        pleroma_domains = set(self.directory.pleroma_instances())
        all_domains: set[str] = set(pleroma_domains)
        client = self.client
        for domain in sorted(pleroma_domains):
            response = client.get_many(domain, (PEERS_PATH,))[0]
            if response.ok:
                all_domains.update(response.body)
        return pleroma_domains, all_domains

    def snapshot_round(
        self, pleroma_domains: set[str], now: float, fetch_peers: bool
    ) -> dict[str, InstanceSnapshot]:
        """Phase 2 (one round): snapshot every Pleroma instance's metadata.

        The whole round is emitted as per-domain batches through the crawl
        engine — one request group per instance.
        """
        return self.instance_crawler.snapshot_many(
            sorted(pleroma_domains), now, fetch_peers=fetch_peers
        )

    def collect_timelines(
        self, domains: set[str], now: float
    ) -> list[TimelineCollection]:
        """Phase 3: collect public posts from every reachable instance."""
        return list(
            self.timeline_crawler.collect_many(
                sorted(domains),
                now,
                local_only=True,
                max_posts=self.config.max_posts_per_instance,
            )
        )

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def crawl(self) -> CrawlResult:
        """Run discovery, the snapshot rounds and timeline collection.

        The returned result's dataset is left empty; :meth:`assemble`
        builds it (and :meth:`run` does both — dataset assembly is kept
        separate so the perf harness can time the crawl itself against the
        seed loop without the shared dataset-building cost).
        """
        return self._crawl_phases(retain_timelines=True)

    def assemble(self, result: CrawlResult) -> CrawlResult:
        """Build the analysis dataset from a finished crawl."""
        return assemble_result(result)

    def run(self) -> CrawlResult:
        """Run discovery, the snapshot rounds, timeline collection and build
        the dataset."""
        return self.assemble(self.crawl())

    def run_counted(self) -> CountingCrawlSink:
        """Run the campaign keeping aggregate counters only.

        The crawl-side analogue of the delivery engine's counting mode:
        every timeline collection is dropped as soon as the sinks have
        seen it and no dataset is assembled, so the campaign's memory
        footprint stays flat regardless of how many posts it crawls.
        """
        sink = CountingCrawlSink()
        self.sinks.append(sink)
        try:
            self._crawl_phases(retain_timelines=False)
        finally:
            self.sinks.remove(sink)
        return sink

    def _retry_round(
        self,
        snapshots: dict[str, InstanceSnapshot],
        pleroma_domains: set[str],
        now: float,
        fetch_peers: bool,
        failures_before: int,
    ) -> None:
        """Give a round's fault-stricken domains one more snapshot pass.

        The retry queue holds exactly the domains whose metadata failure
        this round was *fault-attributed* (non-empty ``fault_kind``) — an
        injected outage, not the instance's own permanent error — and that
        produced no snapshot.  With a zero-fault transport no failure
        carries an attribution, so the queue is provably always empty.
        """
        round_failures = self.instance_crawler.failures[failures_before:]
        queue = sorted(
            {
                failure.domain
                for failure in round_failures
                if failure.fault_kind
                and failure.domain not in snapshots
                and failure.domain in pleroma_domains
            }
        )
        if not queue:
            return
        self.round_retried += len(queue)
        salvaged = self.instance_crawler.snapshot_many(
            queue, now, fetch_peers=fetch_peers
        )
        self.round_salvaged += len(salvaged)
        snapshots.update(salvaged)

    def _crawl_phases(self, retain_timelines: bool) -> CrawlResult:
        clock = self.registry.clock
        result = CrawlResult(dataset=Dataset())

        pleroma_domains, all_domains = self.discover()
        result.pleroma_domains = pleroma_domains
        result.discovered_domains = all_domains

        first_seen = result.first_seen
        interval = self.config.snapshot_interval_hours * 3600.0
        keep_all = self.config.keep_all_snapshots
        round_retry = self.resilience is not None and self.resilience.round_retry
        for round_index in range(self.config.snapshot_rounds):
            now = clock.now()
            # Peer lists are large and barely change; fetching them on the
            # first round only mirrors how the paper's crawler was run.
            fetch_peers = round_index == 0
            failures_before = len(self.instance_crawler.failures)
            snapshots = self.snapshot_round(pleroma_domains, now, fetch_peers)
            if round_retry:
                self._retry_round(
                    snapshots, pleroma_domains, now, fetch_peers, failures_before
                )
            for domain, snapshot in snapshots.items():
                first_seen.setdefault(domain, now)
                previous = result.latest_snapshots.get(domain)
                if previous is not None and not snapshot.peers:
                    snapshot.peers = previous.peers
                result.latest_snapshots[domain] = snapshot
                result.snapshot_counts[domain] = result.snapshot_counts.get(domain, 0) + 1
                if keep_all:
                    result.all_snapshots.append(snapshot)
                if self.sinks:
                    self._emit_snapshot(round_index, snapshot)
            clock.advance(interval)

        collections = self.timeline_crawler.collect_many(
            sorted(result.latest_snapshots),
            clock.now(),
            local_only=True,
            max_posts=self.config.max_posts_per_instance,
        )
        for collection in collections:
            if retain_timelines:
                result.timelines.append(collection)
            if self.sinks:
                self._emit_timeline(collection)
        result.failures = list(self.instance_crawler.failures)
        result.api_requests = self.client.stats.requests
        return result


def _partition(items: Sequence, parts: int) -> list[list]:
    """Split ``items`` into ``parts`` contiguous, near-equal slices.

    Contiguity is the concurrent engine's whole determinism story: each
    worker crawls one slice of the round's *sorted* domain list, and
    concatenating the per-slice outputs in slice order reproduces the
    sequential engine's domain order exactly.  Leading slices get the
    remainder, so slice sizes differ by at most one.
    """
    if parts < 1:
        raise ValueError("parts must be at least 1")
    items = list(items)
    base, extra = divmod(len(items), parts)
    slices = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        slices.append(items[start : start + size])
        start += size
    return slices


class ConcurrentMeasurementCampaign:
    """Run a measurement campaign with N concurrent crawler clients.

    The multi-client twin of :class:`MeasurementCampaign`: every phase's
    sorted domain list is partitioned into contiguous slices
    (:func:`_partition`), one per worker, and the workers crawl their
    slices in parallel through a shared (thread-safe)
    :class:`~repro.api.server.FediverseAPIServer` on a
    :class:`~repro.api.server.RequestExecutor` thread pool.  Each worker
    owns its own :class:`~repro.api.client.APIClient`,
    :class:`~repro.crawler.crawler.InstanceCrawler` (private template cache
    and failure log) and :class:`~repro.crawler.crawler.TimelineCrawler`;
    the main thread alone advances the simulation clock and keeps the
    campaign bookkeeping (first-seen stamps, peer carry-forward, sink
    emission), exactly as the sequential engine does.

    Determinism contract (the ``serving`` bench stage's gate): the merged
    :class:`CrawlResult` is **bit-identical** to the sequential engine's at
    every thread count.  The only normalisation needed is the slice-order
    merge itself — concatenating contiguous slices of a sorted list in
    slice order *is* the sorted list, so snapshots, failures (contents and
    order), timelines, request accounting and the assembled dataset all
    come out exactly as the one-client engine produces them.  With
    ``threads=1`` the executor runs inline and the crawl is the sequential
    engine plus a single partition call.

    Faults and resilience are deliberately unsupported here: a retrying
    client advances the shared simulated clock from worker threads, which
    has no deterministic merged equivalent.  Use the sequential engine for
    chaos runs.
    """

    def __init__(
        self,
        registry: FediverseRegistry,
        config: CampaignConfig | None = None,
        threads: int = 2,
        server: FediverseAPIServer | None = None,
        directory: InstanceDirectory | None = None,
        sinks: Sequence[CrawlSink] | None = None,
        transport: FediverseAPIServer | None = None,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be at least 1")
        self.registry = registry
        self.config = config or CampaignConfig()
        self.threads = threads
        self.server = server or FediverseAPIServer(registry)
        #: What the per-worker clients actually talk to — the server
        #: itself, or a wrapper sharing its interface (the load harness
        #: passes a latency-recording proxy here).
        self.transport = transport if transport is not None else self.server
        self.directory = directory or InstanceDirectory(
            registry, coverage=self.config.directory_coverage
        )
        self.sinks: list[CrawlSink] = list(sinks or [])
        self.executor = RequestExecutor(threads)
        self.clients = [APIClient(self.transport) for _ in range(threads)]
        self.instance_crawlers = [InstanceCrawler(client) for client in self.clients]
        self.timeline_crawlers = [
            TimelineCrawler(client, page_size=self.config.timeline_page_size)
            for client in self.clients
        ]

    def close(self) -> None:
        """Shut the executor's thread pool down (idempotent)."""
        self.executor.shutdown()

    def __enter__(self) -> "ConcurrentMeasurementCampaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Sink notification (main thread only)
    # ------------------------------------------------------------------ #
    def _emit_snapshot(self, round_index: int, snapshot: InstanceSnapshot) -> None:
        for sink in self.sinks:
            sink.on_snapshot(round_index, snapshot)

    def _emit_failure(self, failure: CrawlFailure) -> None:
        for sink in self.sinks:
            sink.on_failure(failure)

    def _emit_timeline(self, collection: TimelineCollection) -> None:
        for sink in self.sinks:
            sink.on_timeline(collection)

    def _harvest_failures(
        self, seen: list[int], result: CrawlResult
    ) -> None:
        """Append every worker's new failures to the result, in slice order.

        Each worker records its slice's failures in domain order (the
        sequential order restricted to the slice); harvesting worker by
        worker after each phase concatenates them back into the sequential
        engine's exact failure order.  Emitted to the sinks here — after
        the phase, before its snapshots — which is the same
        failures-then-snapshots round order the sequential engine produces.
        """
        for index, crawler in enumerate(self.instance_crawlers):
            new = crawler.failures[seen[index] :]
            seen[index] = len(crawler.failures)
            result.failures.extend(new)
            if self.sinks:
                for failure in new:
                    self._emit_failure(failure)

    # ------------------------------------------------------------------ #
    # Campaign phases
    # ------------------------------------------------------------------ #
    def discover(self) -> tuple[set[str], set[str]]:
        """Phase 1, fanned out: peer expansion across the worker clients."""
        pleroma_domains = set(self.directory.pleroma_instances())
        all_domains: set[str] = set(pleroma_domains)
        slices = _partition(sorted(pleroma_domains), self.threads)

        def fetch(client: APIClient, part: list[str]) -> list:
            return [client.get_many(domain, (PEERS_PATH,))[0] for domain in part]

        tasks = [
            (lambda client=client, part=part: fetch(client, part))
            for client, part in zip(self.clients, slices)
        ]
        for responses in self.executor.run(tasks):
            for response in responses:
                if response.ok:
                    all_domains.update(response.body)
        return pleroma_domains, all_domains

    def _snapshot_round(
        self, domains: list[str], now: float, fetch_peers: bool
    ) -> dict[str, InstanceSnapshot]:
        """One snapshot round, fanned out; merged in slice order."""
        slices = _partition(domains, self.threads)
        tasks = [
            (
                lambda crawler=crawler, part=part: crawler.snapshot_many(
                    part, now, fetch_peers=fetch_peers
                )
            )
            for crawler, part in zip(self.instance_crawlers, slices)
        ]
        merged: dict[str, InstanceSnapshot] = {}
        for part_snapshots in self.executor.run(tasks):
            merged.update(part_snapshots)
        return merged

    def _collect_timelines(
        self, domains: list[str], now: float
    ) -> list[TimelineCollection]:
        """The timeline phase, fanned out; merged in slice order.

        Unlike the sequential engine's lazy generator, each worker
        materialises its slice's collections before the merge — counting
        runs trade the O(1)-memory laziness for parallel collection.
        """
        slices = _partition(domains, self.threads)
        config = self.config
        tasks = [
            (
                lambda crawler=crawler, part=part: list(
                    crawler.collect_many(
                        part,
                        now,
                        local_only=True,
                        max_posts=config.max_posts_per_instance,
                    )
                )
            )
            for crawler, part in zip(self.timeline_crawlers, slices)
        ]
        merged: list[TimelineCollection] = []
        for part_collections in self.executor.run(tasks):
            merged.extend(part_collections)
        return merged

    # ------------------------------------------------------------------ #
    # Entry points (mirroring MeasurementCampaign)
    # ------------------------------------------------------------------ #
    def crawl(self) -> CrawlResult:
        """Run discovery, the snapshot rounds and timeline collection."""
        return self._crawl_phases(retain_timelines=True)

    def assemble(self, result: CrawlResult) -> CrawlResult:
        """Build the analysis dataset from a finished crawl."""
        return assemble_result(result)

    def run(self) -> CrawlResult:
        """Run the full campaign and build the dataset."""
        return self.assemble(self.crawl())

    def _crawl_phases(self, retain_timelines: bool) -> CrawlResult:
        clock = self.registry.clock
        result = CrawlResult(dataset=Dataset())
        failures_seen = [0] * self.threads

        pleroma_domains, all_domains = self.discover()
        result.pleroma_domains = pleroma_domains
        result.discovered_domains = all_domains
        sorted_pleroma = sorted(pleroma_domains)

        first_seen = result.first_seen
        interval = self.config.snapshot_interval_hours * 3600.0
        keep_all = self.config.keep_all_snapshots
        for round_index in range(self.config.snapshot_rounds):
            now = clock.now()
            fetch_peers = round_index == 0
            snapshots = self._snapshot_round(sorted_pleroma, now, fetch_peers)
            self._harvest_failures(failures_seen, result)
            for domain, snapshot in snapshots.items():
                first_seen.setdefault(domain, now)
                previous = result.latest_snapshots.get(domain)
                if previous is not None and not snapshot.peers:
                    snapshot.peers = previous.peers
                result.latest_snapshots[domain] = snapshot
                result.snapshot_counts[domain] = (
                    result.snapshot_counts.get(domain, 0) + 1
                )
                if keep_all:
                    result.all_snapshots.append(snapshot)
                if self.sinks:
                    self._emit_snapshot(round_index, snapshot)
            clock.advance(interval)

        collections = self._collect_timelines(
            sorted(result.latest_snapshots), clock.now()
        )
        for collection in collections:
            if retain_timelines:
                result.timelines.append(collection)
            if self.sinks:
                self._emit_timeline(collection)
        self._harvest_failures(failures_seen, result)
        result.api_requests = sum(client.stats.requests for client in self.clients)
        return result
