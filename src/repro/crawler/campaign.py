"""The measurement campaign: the paper's Section 3 methodology end-to-end.

A campaign discovers instances through a directory, expands the instance set
through the Peers API, snapshots every Pleroma instance's metadata on a
fixed interval over the campaign window (four hours in the paper), collects
public timelines, and finally assembles the analysis dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.client import APIClient, APIError
from repro.api.server import FediverseAPIServer
from repro.crawler.builder import build_dataset
from repro.crawler.crawler import InstanceCrawler, TimelineCrawler
from repro.crawler.directory import InstanceDirectory
from repro.crawler.snapshots import CrawlFailure, InstanceSnapshot, TimelineCollection
from repro.datasets.store import Dataset
from repro.fediverse.registry import FediverseRegistry


@dataclass
class CampaignConfig:
    """Parameters of one measurement campaign."""

    #: Length of the campaign window, in days (paper: ~129 days).
    duration_days: float = 14.0
    #: Metadata snapshot interval, in hours (paper: 4 hours).
    snapshot_interval_hours: float = 4.0
    #: Page size used against the Timeline API.
    timeline_page_size: int = 40
    #: Cap on posts collected per instance (``None`` = collect everything).
    max_posts_per_instance: int | None = None
    #: Directory coverage of the Pleroma instance population.
    directory_coverage: float = 0.95
    #: Whether to keep every snapshot (memory-heavy) or only the latest.
    keep_all_snapshots: bool = False

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.snapshot_interval_hours <= 0:
            raise ValueError("snapshot_interval_hours must be positive")

    @property
    def snapshot_rounds(self) -> int:
        """Return how many snapshot rounds the window contains."""
        return max(1, int(self.duration_days * 24 / self.snapshot_interval_hours))


@dataclass
class CrawlResult:
    """Everything a campaign produces."""

    dataset: Dataset
    latest_snapshots: dict[str, InstanceSnapshot] = field(default_factory=dict)
    snapshot_counts: dict[str, int] = field(default_factory=dict)
    all_snapshots: list[InstanceSnapshot] = field(default_factory=list)
    timelines: list[TimelineCollection] = field(default_factory=list)
    failures: list[CrawlFailure] = field(default_factory=list)
    discovered_domains: set[str] = field(default_factory=set)
    pleroma_domains: set[str] = field(default_factory=set)
    api_requests: int = 0

    @property
    def crawlable_pleroma(self) -> int:
        """Return how many Pleroma instances answered the metadata API."""
        return len(self.latest_snapshots)

    @property
    def failure_status_breakdown(self) -> dict[int, int]:
        """Return counts of the final failure status per uncrawlable domain."""
        last: dict[str, int] = {}
        for failure in self.failures:
            last[failure.domain] = failure.status_code
        breakdown: dict[int, int] = {}
        for domain, status in last.items():
            if domain in self.latest_snapshots:
                continue
            breakdown[status] = breakdown.get(status, 0) + 1
        return breakdown


class MeasurementCampaign:
    """Run the full Section-3 measurement over a simulated fediverse."""

    def __init__(
        self,
        registry: FediverseRegistry,
        config: CampaignConfig | None = None,
        server: FediverseAPIServer | None = None,
        directory: InstanceDirectory | None = None,
    ) -> None:
        self.registry = registry
        self.config = config or CampaignConfig()
        self.server = server or FediverseAPIServer(registry)
        self.client = APIClient(self.server)
        self.directory = directory or InstanceDirectory(
            registry, coverage=self.config.directory_coverage
        )
        self.instance_crawler = InstanceCrawler(self.client)
        self.timeline_crawler = TimelineCrawler(
            self.client, page_size=self.config.timeline_page_size
        )

    # ------------------------------------------------------------------ #
    # Campaign phases
    # ------------------------------------------------------------------ #
    def discover(self) -> tuple[set[str], set[str]]:
        """Phase 1: discover Pleroma instances and every peer they name.

        Returns ``(pleroma_domains, all_known_domains)``.
        """
        pleroma_domains = set(self.directory.pleroma_instances())
        all_domains: set[str] = set(pleroma_domains)
        for domain in sorted(pleroma_domains):
            try:
                peers = self.client.instance_peers(domain)
            except APIError:
                continue
            all_domains.update(peers)
        return pleroma_domains, all_domains

    def snapshot_round(
        self, pleroma_domains: set[str], now: float, fetch_peers: bool
    ) -> dict[str, InstanceSnapshot]:
        """Phase 2 (one round): snapshot every Pleroma instance's metadata."""
        snapshots: dict[str, InstanceSnapshot] = {}
        for domain in sorted(pleroma_domains):
            snapshot = self.instance_crawler.snapshot(domain, now, fetch_peers=fetch_peers)
            if snapshot is not None:
                snapshots[domain] = snapshot
        return snapshots

    def collect_timelines(
        self, domains: set[str], now: float
    ) -> list[TimelineCollection]:
        """Phase 3: collect public posts from every reachable instance."""
        collections = []
        for domain in sorted(domains):
            collections.append(
                self.timeline_crawler.collect(
                    domain,
                    now,
                    local_only=True,
                    max_posts=self.config.max_posts_per_instance,
                )
            )
        return collections

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self) -> CrawlResult:
        """Run discovery, the snapshot rounds, timeline collection and build
        the dataset."""
        clock = self.registry.clock
        result = CrawlResult(dataset=Dataset())

        pleroma_domains, all_domains = self.discover()
        result.pleroma_domains = pleroma_domains
        result.discovered_domains = all_domains

        first_seen: dict[str, float] = {}
        interval = self.config.snapshot_interval_hours * 3600.0
        for round_index in range(self.config.snapshot_rounds):
            now = clock.now()
            # Peer lists are large and barely change; fetching them on the
            # first round only mirrors how the paper's crawler was run.
            fetch_peers = round_index == 0
            snapshots = self.snapshot_round(pleroma_domains, now, fetch_peers)
            for domain, snapshot in snapshots.items():
                first_seen.setdefault(domain, now)
                previous = result.latest_snapshots.get(domain)
                if previous is not None and not snapshot.peers:
                    snapshot.peers = previous.peers
                result.latest_snapshots[domain] = snapshot
                result.snapshot_counts[domain] = result.snapshot_counts.get(domain, 0) + 1
                if self.config.keep_all_snapshots:
                    result.all_snapshots.append(snapshot)
            clock.advance(interval)

        result.timelines = self.collect_timelines(set(result.latest_snapshots), clock.now())
        result.failures = list(self.instance_crawler.failures)
        result.api_requests = self.client.stats.requests

        result.dataset = build_dataset(
            snapshots=result.latest_snapshots,
            timelines=result.timelines,
            failures=result.failures,
            snapshot_counts=result.snapshot_counts,
            first_seen=first_seen,
            discovered_domains=result.discovered_domains,
        )
        return result
