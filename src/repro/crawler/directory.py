"""Instance directories: the crawl's starting point.

The paper seeds its crawl from public instance directories (distsn.org and
the-federation.info).  Directories are community-maintained and never list
every instance, so the directory here lists a configurable fraction of the
Pleroma instances; the remainder is discovered through the Peers API, just
as in the paper.
"""

from __future__ import annotations

import random

from repro.fediverse.registry import FediverseRegistry
from repro.fediverse.software import SoftwareKind


class InstanceDirectory:
    """A public directory listing (most) Pleroma instance domains."""

    def __init__(
        self,
        registry: FediverseRegistry,
        coverage: float = 0.95,
        seed: int = 7,
    ) -> None:
        if not 0 < coverage <= 1:
            raise ValueError("coverage must be within (0, 1]")
        self.registry = registry
        self.coverage = coverage
        self._rng = random.Random(seed)
        self._listing: list[str] | None = None

    def _build_listing(self) -> list[str]:
        pleroma_domains = [
            instance.domain
            for instance in self.registry.instances()
            if instance.software is SoftwareKind.PLEROMA
        ]
        listed = [
            domain for domain in pleroma_domains if self._rng.random() < self.coverage
        ]
        return sorted(listed)

    def pleroma_instances(self) -> list[str]:
        """Return the Pleroma domains the directory knows about."""
        if self._listing is None:
            self._listing = self._build_listing()
        return list(self._listing)

    def __len__(self) -> int:
        return len(self.pleroma_instances())

    def __contains__(self, domain: str) -> bool:
        return domain in set(self.pleroma_instances())
