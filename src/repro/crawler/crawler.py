"""Per-instance crawling primitives.

:class:`InstanceCrawler` snapshots instance metadata (the paper does this
every four hours); :class:`TimelineCrawler` pages through the public
Timeline API to collect posts.  Both work purely through
:class:`~repro.api.client.APIClient` and record failures rather than raising,
because the campaign must keep going when individual instances are down.

Both crawlers also expose batched entry points — :meth:`InstanceCrawler.snapshot_many`
and :meth:`TimelineCrawler.collect_many` — that route through the API
layer's batch engine (:meth:`~repro.api.client.APIClient.get_many` /
:meth:`~repro.api.client.APIClient.stream_timeline`).  The batched paths
produce bit-identical snapshots, collections, failures and request
accounting; they only eliminate per-request transport overhead and reuse
parsed metadata across snapshot rounds (validated by payload identity, so a
changed payload is always re-parsed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.api.client import APIClient, APIError
from repro.api.http import ATTEMPTS_HEADER, HTTPResponse
from repro.crawler.snapshots import CrawlFailure, InstanceSnapshot, TimelineCollection

#: The three endpoints the paper's crawler fetches per instance.
INSTANCE_PATH = "/api/v1/instance"
PEERS_PATH = "/api/v1/instance/peers"
NODEINFO_PATH = "/nodeinfo/2.0"


def _parse_software(payload: dict[str, Any]) -> str:
    """Infer the server software from an ``/api/v1/instance`` payload."""
    if "pleroma" in payload:
        return "pleroma"
    version = str(payload.get("version", "")).lower()
    for candidate in ("pleroma", "mastodon", "misskey", "peertube", "hubzilla", "writefreely"):
        if candidate in version:
            return candidate
    return "unknown"


def _parse_pleroma_version(payload: dict[str, Any]) -> str:
    """Extract the Pleroma version from the compatibility version string.

    Non-Pleroma software has no ``"Pleroma "`` marker in its version string;
    returning the raw compatibility string there would mislabel e.g. a
    Mastodon ``"3.3.0"`` as a Pleroma version, so it yields ``""`` instead.
    """
    version = str(payload.get("version", ""))
    marker = "Pleroma "
    if marker in version:
        return version.split(marker, 1)[1].rstrip(") ")
    return ""


def _error_message(response: HTTPResponse) -> str:
    """Extract the error message of a failed response (as APIError does)."""
    if isinstance(response.body, Mapping):
        return str(response.body.get("error", ""))
    return ""


def _failure_from_response(
    domain: str, now: float, response: HTTPResponse, prefix: str = ""
) -> CrawlFailure:
    """Build a :class:`CrawlFailure` from a failed response.

    Reads the retrying client's attribution annotations — attempts spent
    (``X-Attempts``) and injected-fault kind (``X-Fault``) — so resilience
    bookkeeping survives into the crawl record.
    """
    return CrawlFailure(
        domain=domain,
        timestamp=now,
        status_code=int(response.status),
        reason=f"{prefix}{_error_message(response)}",
        attempts=int(response.header(ATTEMPTS_HEADER, "1") or 1),
        fault_kind=response.fault_kind,
    )


def _failure_from_error(
    domain: str, now: float, error: APIError, prefix: str = ""
) -> CrawlFailure:
    """Build a :class:`CrawlFailure` from an :class:`APIError` (same fields)."""
    return CrawlFailure(
        domain=domain,
        timestamp=now,
        status_code=int(error.status),
        reason=f"{prefix}{error.message}",
        attempts=error.attempts,
        fault_kind=error.fault_kind,
    )


@dataclass
class _SnapshotTemplate:
    """Metadata parsed once per distinct payload, reused across rounds.

    ``payload`` is the exact object the parse ran on: the batch server
    returns the *same* cached dict while the instance's metadata
    fingerprint is unchanged, so an ``is`` check is a sound (and free)
    validity test — any rebuilt payload triggers a fresh parse.

    ``proto`` is a prototype ``__dict__`` for :class:`InstanceSnapshot`;
    each round copies it and stamps the timestamp, which skips re-parsing
    the payload and the dataclass ``__init__`` walk.  The MRF dicts inside
    it are shared across that domain's snapshots (like the delivery
    engine shares rewritten post copies across receivers) — snapshot
    consumers treat them as read-only, and the dataset builder copies
    what it stores.
    """

    payload: dict[str, Any]
    proto: dict[str, Any]
    needs_nodeinfo: bool


class InstanceCrawler:
    """Snapshot instance metadata and peer lists through the public API."""

    def __init__(self, client: APIClient) -> None:
        self.client = client
        self.failures: list[CrawlFailure] = []
        #: Optional observer notified of every recorded failure (the
        #: campaign uses this to fan failures out to its crawl sinks).
        self.on_failure: Callable[[CrawlFailure], None] | None = None
        self._templates: dict[str, _SnapshotTemplate] = {}

    def _record_failure(self, failure: CrawlFailure) -> None:
        self.failures.append(failure)
        if self.on_failure is not None:
            self.on_failure(failure)

    def snapshot(self, domain: str, now: float, fetch_peers: bool = True) -> InstanceSnapshot | None:
        """Snapshot one instance; return ``None`` (and record) on failure."""
        try:
            payload = self.client.instance_metadata(domain)
        except APIError as error:
            self._record_failure(_failure_from_error(domain, now, error))
            return None

        stats = payload.get("stats", {})
        software = _parse_software(payload)
        if software == "unknown":
            # Mastodon-style instances expose their software name only
            # through nodeinfo, which is how the paper's crawler classified
            # non-Pleroma servers.
            software = self._software_from_nodeinfo(domain, now)
        snapshot = InstanceSnapshot(
            domain=domain,
            timestamp=now,
            software=software,
            version=_parse_pleroma_version(payload),
            user_count=int(stats.get("user_count", 0)),
            status_count=int(stats.get("status_count", 0)),
            peer_count=int(stats.get("domain_count", 0)),
            registrations_open=bool(payload.get("registrations", False)),
        )
        self._attach_mrf(snapshot, payload)
        if fetch_peers:
            snapshot.peers = self._fetch_peers(domain, now)
        return snapshot

    # ------------------------------------------------------------------ #
    # Batched snapshots
    # ------------------------------------------------------------------ #
    def snapshot_many(
        self, domains: Iterable[str], now: float, fetch_peers: bool = True
    ) -> dict[str, InstanceSnapshot]:
        """Snapshot many instances through the API layer's batch engine.

        The whole round's metadata requests are served in one batch call;
        the conditional follow-ups (nodeinfo for unclassifiable software,
        peers on the first round) ride in one fused group per snapshot.
        Snapshots, recorded failures (contents *and* order) and request
        accounting are identical to calling :meth:`snapshot` once per
        domain in the given order.
        """
        domains = list(domains)
        client = self.client
        responses = client.metadata_many(domains)
        snapshots: dict[str, InstanceSnapshot] = {}
        templates = self._templates
        for domain, response in zip(domains, responses):
            if not response.ok:
                self._record_failure(_failure_from_response(domain, now, response))
                continue
            payload = response.body
            template = templates.get(domain)
            if template is None or template.payload is not payload:
                template = self._parse_template(payload)
                templates[domain] = template

            nodeinfo_response: HTTPResponse | None = None
            peers_response: HTTPResponse | None = None
            if template.needs_nodeinfo or fetch_peers:
                follow_paths = []
                if template.needs_nodeinfo:
                    follow_paths.append(NODEINFO_PATH)
                if fetch_peers:
                    follow_paths.append(PEERS_PATH)
                follow = client.get_many(domain, follow_paths)
                if template.needs_nodeinfo:
                    nodeinfo_response = follow[0]
                if fetch_peers:
                    peers_response = follow[-1]

            fields = template.proto.copy()
            # The snapshot carries the domain as requested (not the payload's
            # self-reported uri), exactly like the per-request path.
            fields["domain"] = domain
            fields["timestamp"] = now
            if nodeinfo_response is not None:
                fields["software"] = self._software_from_nodeinfo_response(
                    domain, now, nodeinfo_response
                )
            snapshot = object.__new__(InstanceSnapshot)
            snapshot.__dict__ = fields
            if peers_response is not None:
                if peers_response.ok:
                    snapshot.peers = tuple(peers_response.body)
                else:
                    self._record_failure(
                        _failure_from_response(
                            domain, now, peers_response, prefix="peers: "
                        )
                    )
            snapshots[domain] = snapshot
        return snapshots

    @staticmethod
    def _parse_template(payload: dict[str, Any]) -> _SnapshotTemplate:
        stats = payload.get("stats", {})
        software = _parse_software(payload)
        federation = (
            payload.get("pleroma", {}).get("metadata", {}).get("federation", {})
        )
        exposed = bool(federation) and bool(federation.get("exposable", False))
        proto = {
            "domain": str(payload.get("uri", "")),
            "timestamp": 0.0,
            "software": software,
            "version": _parse_pleroma_version(payload),
            "user_count": int(stats.get("user_count", 0)),
            "status_count": int(stats.get("status_count", 0)),
            "peer_count": int(stats.get("domain_count", 0)),
            "registrations_open": bool(payload.get("registrations", False)),
            "policies_exposed": exposed,
            "enabled_policies": (
                tuple(federation.get("mrf_policies", ())) if exposed else ()
            ),
            "mrf_simple": (
                {
                    action: list(targets)
                    for action, targets in federation.get("mrf_simple", {}).items()
                }
                if exposed
                else {}
            ),
            "mrf_object_age": (
                dict(federation.get("mrf_object_age", {})) if exposed else {}
            ),
            "peers": (),
        }
        return _SnapshotTemplate(
            payload=payload,
            proto=proto,
            needs_nodeinfo=software == "unknown",
        )

    # ------------------------------------------------------------------ #
    # Shared parsing helpers
    # ------------------------------------------------------------------ #
    def _software_from_nodeinfo(self, domain: str, now: float) -> str:
        """Resolve the server software through nodeinfo.

        A failed nodeinfo probe is recorded as a :class:`CrawlFailure`
        (reason-prefixed ``nodeinfo:``) — a real crawler logs the probe it
        could not complete rather than silently classifying the instance as
        unknown software.
        """
        try:
            payload = self.client.nodeinfo(domain)
        except APIError as error:
            self._record_failure(
                _failure_from_error(domain, now, error, prefix="nodeinfo: ")
            )
            return "unknown"
        return str(payload.get("software", {}).get("name", "unknown")) or "unknown"

    def _software_from_nodeinfo_response(
        self, domain: str, now: float, response: HTTPResponse
    ) -> str:
        """Batched twin of :meth:`_software_from_nodeinfo`."""
        if not response.ok:
            self._record_failure(
                _failure_from_response(domain, now, response, prefix="nodeinfo: ")
            )
            return "unknown"
        payload = response.body
        return str(payload.get("software", {}).get("name", "unknown")) or "unknown"

    def _attach_mrf(self, snapshot: InstanceSnapshot, payload: dict[str, Any]) -> None:
        """Populate the snapshot's MRF fields from the metadata payload."""
        federation = (
            payload.get("pleroma", {}).get("metadata", {}).get("federation", {})
        )
        if not federation or not federation.get("exposable", False):
            snapshot.policies_exposed = False
            return
        snapshot.policies_exposed = True
        snapshot.enabled_policies = tuple(federation.get("mrf_policies", ()))
        snapshot.mrf_simple = {
            action: list(targets)
            for action, targets in federation.get("mrf_simple", {}).items()
        }
        snapshot.mrf_object_age = dict(federation.get("mrf_object_age", {}))

    def _fetch_peers(self, domain: str, now: float) -> tuple[str, ...]:
        """Fetch the peer list, tolerating failures."""
        try:
            return tuple(self.client.instance_peers(domain))
        except APIError as error:
            self._record_failure(
                _failure_from_error(domain, now, error, prefix="peers: ")
            )
            return ()


class TimelineCrawler:
    """Collect public posts by paging through the Timeline API."""

    def __init__(self, client: APIClient, page_size: int = 40) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.client = client
        self.page_size = page_size

    def collect(
        self,
        domain: str,
        now: float,
        local_only: bool = True,
        max_posts: int | None = None,
    ) -> TimelineCollection:
        """Collect up to ``max_posts`` public posts from ``domain``."""
        collection = TimelineCollection(domain=domain, timestamp=now)
        max_id: str | None = None
        while True:
            try:
                page = self.client.public_timeline(
                    domain, local=local_only, limit=self.page_size, max_id=max_id
                )
            except APIError as error:
                collection.reachable = False
                collection.status_code = int(error.status)
                collection.attempts = error.attempts
                collection.fault_kind = error.fault_kind
                break
            collection.pages_fetched += 1
            if not page:
                break
            collection.posts.extend(page)
            max_id = page[-1]["id"]
            if max_posts is not None and len(collection.posts) >= max_posts:
                collection.posts = collection.posts[:max_posts]
                break
            if len(page) < self.page_size:
                break
        return collection

    # ------------------------------------------------------------------ #
    # Batched collection
    # ------------------------------------------------------------------ #
    def collect_batched(
        self,
        domain: str,
        now: float,
        local_only: bool = True,
        max_posts: int | None = None,
    ) -> TimelineCollection:
        """Collect one instance's timeline as a single server-side stream.

        The resulting collection — posts, page count, reachability and
        status code — and the per-page request accounting are identical to
        :meth:`collect`.
        """
        stream = self.client.stream_timeline(
            domain,
            local=local_only,
            page_size=self.page_size,
            max_posts=max_posts,
        )
        collection = TimelineCollection(domain=domain, timestamp=now)
        collection.attempts = stream.attempts
        collection.fault_kind = stream.fault_kind
        if not stream.ok:
            collection.reachable = False
            collection.status_code = int(stream.status)
            return collection
        collection.pages_fetched = stream.pages
        collection.posts = stream.statuses
        return collection

    def collect_many(
        self,
        domains: Iterable[str],
        now: float,
        local_only: bool = True,
        max_posts: int | None = None,
    ) -> Iterator[TimelineCollection]:
        """Collect many instances' timelines, lazily, one stream each.

        Laziness lets counting-only campaign runs drop each collection as
        soon as its sinks have seen it.
        """
        for domain in domains:
            yield self.collect_batched(
                domain, now, local_only=local_only, max_posts=max_posts
            )
