"""Per-instance crawling primitives.

:class:`InstanceCrawler` snapshots instance metadata (the paper does this
every four hours); :class:`TimelineCrawler` pages through the public
Timeline API to collect posts.  Both work purely through
:class:`~repro.api.client.APIClient` and record failures rather than raising,
because the campaign must keep going when individual instances are down.
"""

from __future__ import annotations

from typing import Any

from repro.api.client import APIClient, APIError
from repro.crawler.snapshots import CrawlFailure, InstanceSnapshot, TimelineCollection


def _parse_software(payload: dict[str, Any]) -> str:
    """Infer the server software from an ``/api/v1/instance`` payload."""
    if "pleroma" in payload:
        return "pleroma"
    version = str(payload.get("version", "")).lower()
    for candidate in ("pleroma", "mastodon", "misskey", "peertube", "hubzilla", "writefreely"):
        if candidate in version:
            return candidate
    return "unknown"


def _parse_pleroma_version(payload: dict[str, Any]) -> str:
    """Extract the Pleroma version from the compatibility version string.

    Non-Pleroma software has no ``"Pleroma "`` marker in its version string;
    returning the raw compatibility string there would mislabel e.g. a
    Mastodon ``"3.3.0"`` as a Pleroma version, so it yields ``""`` instead.
    """
    version = str(payload.get("version", ""))
    marker = "Pleroma "
    if marker in version:
        return version.split(marker, 1)[1].rstrip(") ")
    return ""


class InstanceCrawler:
    """Snapshot instance metadata and peer lists through the public API."""

    def __init__(self, client: APIClient) -> None:
        self.client = client
        self.failures: list[CrawlFailure] = []

    def snapshot(self, domain: str, now: float, fetch_peers: bool = True) -> InstanceSnapshot | None:
        """Snapshot one instance; return ``None`` (and record) on failure."""
        try:
            payload = self.client.instance_metadata(domain)
        except APIError as error:
            self.failures.append(
                CrawlFailure(
                    domain=domain,
                    timestamp=now,
                    status_code=int(error.status),
                    reason=error.message,
                )
            )
            return None

        stats = payload.get("stats", {})
        software = _parse_software(payload)
        if software == "unknown":
            # Mastodon-style instances expose their software name only
            # through nodeinfo, which is how the paper's crawler classified
            # non-Pleroma servers.
            software = self._software_from_nodeinfo(domain)
        snapshot = InstanceSnapshot(
            domain=domain,
            timestamp=now,
            software=software,
            version=_parse_pleroma_version(payload),
            user_count=int(stats.get("user_count", 0)),
            status_count=int(stats.get("status_count", 0)),
            peer_count=int(stats.get("domain_count", 0)),
            registrations_open=bool(payload.get("registrations", False)),
        )
        self._attach_mrf(snapshot, payload)
        if fetch_peers:
            snapshot.peers = self._fetch_peers(domain, now)
        return snapshot

    def _software_from_nodeinfo(self, domain: str) -> str:
        """Resolve the server software through nodeinfo, defaulting to unknown."""
        try:
            payload = self.client.nodeinfo(domain)
        except APIError:
            return "unknown"
        return str(payload.get("software", {}).get("name", "unknown")) or "unknown"

    def _attach_mrf(self, snapshot: InstanceSnapshot, payload: dict[str, Any]) -> None:
        """Populate the snapshot's MRF fields from the metadata payload."""
        federation = (
            payload.get("pleroma", {}).get("metadata", {}).get("federation", {})
        )
        if not federation or not federation.get("exposable", False):
            snapshot.policies_exposed = False
            return
        snapshot.policies_exposed = True
        snapshot.enabled_policies = tuple(federation.get("mrf_policies", ()))
        snapshot.mrf_simple = {
            action: list(targets)
            for action, targets in federation.get("mrf_simple", {}).items()
        }
        snapshot.mrf_object_age = dict(federation.get("mrf_object_age", {}))

    def _fetch_peers(self, domain: str, now: float) -> tuple[str, ...]:
        """Fetch the peer list, tolerating failures."""
        try:
            return tuple(self.client.instance_peers(domain))
        except APIError as error:
            self.failures.append(
                CrawlFailure(
                    domain=domain,
                    timestamp=now,
                    status_code=int(error.status),
                    reason=f"peers: {error.message}",
                )
            )
            return ()


class TimelineCrawler:
    """Collect public posts by paging through the Timeline API."""

    def __init__(self, client: APIClient, page_size: int = 40) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.client = client
        self.page_size = page_size

    def collect(
        self,
        domain: str,
        now: float,
        local_only: bool = True,
        max_posts: int | None = None,
    ) -> TimelineCollection:
        """Collect up to ``max_posts`` public posts from ``domain``."""
        collection = TimelineCollection(domain=domain, timestamp=now)
        max_id: str | None = None
        while True:
            try:
                page = self.client.public_timeline(
                    domain, local=local_only, limit=self.page_size, max_id=max_id
                )
            except APIError as error:
                collection.reachable = False
                collection.status_code = int(error.status)
                break
            collection.pages_fetched += 1
            if not page:
                break
            collection.posts.extend(page)
            max_id = page[-1]["id"]
            if max_posts is not None and len(collection.posts) >= max_posts:
                collection.posts = collection.posts[:max_posts]
                break
            if len(page) < self.page_size:
                break
        return collection
