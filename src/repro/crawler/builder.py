"""Build an analysis-ready dataset from crawl output."""

from __future__ import annotations

from typing import Iterable
from urllib.parse import urlsplit

from repro.crawler.snapshots import CrawlFailure, InstanceSnapshot, TimelineCollection
from repro.fediverse.identifiers import normalise_domain
from repro.datasets.schema import (
    InstanceRecord,
    PolicySettingRecord,
    PostRecord,
    RejectEdge,
    UserRecord,
)
from repro.datasets.store import Dataset


def _post_origin_domain(post: dict) -> str:
    """Derive a post's origin domain from its object URI (or author handle)."""
    uri = post.get("uri", "")
    if uri:
        host = urlsplit(uri).netloc
        if host:
            return host
    account = post.get("account", "")
    if "@" in account:
        return account.rsplit("@", 1)[1]
    return ""


def build_dataset(
    snapshots: dict[str, InstanceSnapshot],
    timelines: Iterable[TimelineCollection] = (),
    failures: Iterable[CrawlFailure] = (),
    snapshot_counts: dict[str, int] | None = None,
    first_seen: dict[str, float] | None = None,
    discovered_domains: Iterable[str] = (),
) -> Dataset:
    """Assemble a :class:`~repro.datasets.store.Dataset` from crawl output.

    ``snapshots`` maps each successfully crawled domain to its most recent
    metadata snapshot; ``failures`` carries the final failure for domains
    that could never be crawled (those become unreachable instance records,
    reproducing the paper's 404/403/502/503/410 breakdown).
    ``discovered_domains`` lists every domain seen through the Peers API;
    domains never crawled become lightweight non-Pleroma records, mirroring
    how the paper counts 9,969 discovered instances of which only the 1,534
    Pleroma ones are crawled.
    """
    dataset = Dataset()
    snapshot_counts = snapshot_counts or {}
    first_seen = first_seen or {}

    timelines = list(timelines)
    timeline_reachability = {
        collection.domain: collection.reachable for collection in timelines
    }

    for domain, snapshot in snapshots.items():
        record = InstanceRecord(
            domain=domain,
            software=snapshot.software,
            version=snapshot.version,
            reachable=True,
            status_code=200,
            user_count=snapshot.user_count,
            status_count=snapshot.status_count,
            peer_count=snapshot.peer_count,
            registrations_open=snapshot.registrations_open,
            policies_exposed=snapshot.policies_exposed,
            timeline_reachable=timeline_reachability.get(domain, False),
            enabled_policies=snapshot.enabled_policies,
            peers=snapshot.peers,
            first_seen=first_seen.get(domain, snapshot.timestamp),
            last_seen=snapshot.timestamp,
            snapshots=snapshot_counts.get(domain, 1),
        )
        dataset.add_instance(record)

        for policy in snapshot.enabled_policies:
            config: dict = {}
            if policy == "SimplePolicy":
                config = {action: list(t) for action, t in snapshot.mrf_simple.items()}
            elif policy == "ObjectAgePolicy":
                config = dict(snapshot.mrf_object_age)
            dataset.add_policy_setting(
                PolicySettingRecord(domain=domain, policy=policy, config=config)
            )

        dataset.add_reject_edges(
            RejectEdge(source=source, target=target, action=action)
            for source, target, action in snapshot.simple_policy_edges()
        )

    # Unreachable instances: keep the last failure per domain.
    last_failure: dict[str, CrawlFailure] = {}
    for failure in failures:
        last_failure[failure.domain] = failure
    for domain, failure in last_failure.items():
        if domain in dataset.instances:
            continue
        dataset.add_instance(
            InstanceRecord(
                domain=domain,
                software="pleroma",
                reachable=False,
                status_code=failure.status_code,
                first_seen=failure.timestamp,
                last_seen=failure.timestamp,
            )
        )

    # Domains only ever seen through peer lists: record them as non-Pleroma
    # shells so the instance population matches what the crawler discovered.
    for domain in discovered_domains:
        try:
            normalised = normalise_domain(domain)
        except ValueError:
            continue
        if normalised in dataset.instances:
            continue
        dataset.add_instance(
            InstanceRecord(domain=normalised, software="unknown", reachable=False, status_code=0)
        )

    # Posts and the users derived from them.
    for collection in timelines:
        if not collection.reachable:
            continue
        for post in collection.posts:
            author = post.get("account", "")
            origin = _post_origin_domain(post) or collection.domain
            record = PostRecord(
                post_id=post.get("id", ""),
                author=author,
                domain=origin,
                content=post.get("content", ""),
                created_at=float(post.get("created_at", 0.0)),
                collected_from=collection.domain,
                sensitive=bool(post.get("sensitive", False)),
                has_media=bool(post.get("media_attachments")),
                visibility=post.get("visibility", "public"),
            )
            dataset.add_post(record)
            if author:
                existing = dataset.users.get(author)
                if existing is None:
                    dataset.add_user(
                        UserRecord(
                            handle=author,
                            domain=origin,
                            bot=bool(post.get("bot", False)),
                            post_count=1,
                        )
                    )
                else:
                    existing.post_count += 1
    return dataset
