"""The measurement apparatus: crawling the (simulated) fediverse.

This package reproduces the paper's data-collection methodology
(Section 3):

1. compile a list of Pleroma instances from public directories,
2. expand it with every domain those instances have ever federated with
   (the Peers API),
3. snapshot each Pleroma instance's metadata — including its MRF policy
   configuration — every four hours over the campaign, and
4. collect all public posts through the Timeline API.

Everything is observed through :mod:`repro.api`; the crawler has no access
to simulator internals, so whatever the analysis finds was genuinely
measurable.
"""

from repro.crawler.directory import InstanceDirectory
from repro.crawler.snapshots import CrawlFailure, InstanceSnapshot, TimelineCollection
from repro.crawler.crawler import InstanceCrawler, TimelineCrawler
from repro.crawler.builder import build_dataset
from repro.crawler.campaign import (
    CampaignConfig,
    CountingCrawlSink,
    CrawlResult,
    CrawlSink,
    MeasurementCampaign,
)

__all__ = [
    "InstanceDirectory",
    "CrawlFailure",
    "InstanceSnapshot",
    "TimelineCollection",
    "InstanceCrawler",
    "TimelineCrawler",
    "build_dataset",
    "CampaignConfig",
    "CountingCrawlSink",
    "CrawlResult",
    "CrawlSink",
    "MeasurementCampaign",
]
