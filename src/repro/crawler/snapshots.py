"""Records produced by the crawler: snapshots, failures, timeline pulls."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class CrawlFailure:
    """A failed request against one instance.

    ``attempts`` counts every try the retrying client spent on the logical
    request (1 = no retries); ``fault_kind`` is the injected-fault
    attribution carried on the response's ``X-Fault`` header, or ``""``
    when the failure was the instance's own (a permanent 404/403/...).
    """

    domain: str
    timestamp: float
    status_code: int
    reason: str = ""
    attempts: int = 1
    fault_kind: str = ""


@dataclass
class InstanceSnapshot:
    """One 4-hourly metadata snapshot of one instance.

    Mirrors what ``/api/v1/instance`` exposes: usage statistics plus (on
    Pleroma) the MRF configuration under ``pleroma.metadata.federation``.
    """

    domain: str
    timestamp: float
    software: str = "unknown"
    version: str = ""
    user_count: int = 0
    status_count: int = 0
    peer_count: int = 0
    registrations_open: bool = False
    policies_exposed: bool = False
    enabled_policies: tuple[str, ...] = ()
    mrf_simple: dict[str, list[str]] = field(default_factory=dict)
    mrf_object_age: dict[str, Any] = field(default_factory=dict)
    peers: tuple[str, ...] = ()

    @property
    def is_pleroma(self) -> bool:
        """Return ``True`` when the snapshot comes from a Pleroma instance."""
        return self.software == "pleroma"

    def simple_policy_edges(self) -> list[tuple[str, str, str]]:
        """Return (source, target, action) triples from the mrf_simple block."""
        edges = []
        for action, targets in self.mrf_simple.items():
            for target in targets:
                edges.append((self.domain, target, action))
        return edges


@dataclass
class TimelineCollection:
    """The public posts collected from one instance."""

    domain: str
    timestamp: float
    reachable: bool = True
    status_code: int = 200
    posts: list[dict[str, Any]] = field(default_factory=list)
    pages_fetched: int = 0
    #: Attempts the retrying client spent on the stream (1 = no retries).
    attempts: int = 1
    #: Injected-fault attribution of a failed stream (``""`` otherwise).
    fault_kind: str = ""

    @property
    def post_count(self) -> int:
        """Return how many posts were collected."""
        return len(self.posts)
