"""Deterministic generation of domain names and usernames."""

from __future__ import annotations

import random

#: Word pools combined into synthetic instance domain names.  All generated
#: domains use reserved example TLDs so they can never collide with real
#: servers.
_PREFIXES = (
    "fedi", "social", "queer", "retro", "cyber", "night", "solar", "pixel",
    "quiet", "loud", "tiny", "mega", "astro", "lunar", "hyper", "neo",
    "calm", "wild", "free", "open", "home", "indie", "punk", "folk",
    "craft", "glitch", "velvet", "amber", "cobalt", "crimson", "ivory",
)
_SUFFIXES = (
    "space", "town", "club", "cafe", "garden", "harbor", "forest", "meadow",
    "works", "net", "hub", "zone", "lounge", "corner", "island", "valley",
    "city", "village", "party", "place", "commons", "collective", "haven",
)
_TLDS = ("example", "test", "invalid")

_USERNAME_ADJECTIVES = (
    "quiet", "rapid", "lazy", "brave", "witty", "grumpy", "sunny", "fuzzy",
    "shiny", "salty", "mellow", "dizzy", "sleepy", "zesty", "spicy", "misty",
)
_USERNAME_NOUNS = (
    "otter", "falcon", "badger", "poet", "pilot", "gardener", "sailor",
    "wizard", "baker", "robot", "fox", "heron", "lynx", "comet", "maple",
    "willow", "ember", "pebble", "quill", "raven",
)


class NameGenerator:
    """Produce unique, deterministic domain names and usernames."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used_domains: set[str] = set()
        self._domain_counter = 0
        self._user_counter = 0

    def domain(self, hint: str = "") -> str:
        """Return a fresh domain name, optionally embedding ``hint``."""
        while True:
            self._domain_counter += 1
            prefix = self._rng.choice(_PREFIXES)
            suffix = self._rng.choice(_SUFFIXES)
            tld = self._rng.choice(_TLDS)
            base = f"{hint}-{prefix}{suffix}" if hint else f"{prefix}{suffix}"
            candidate = f"{base}-{self._domain_counter}.{tld}"
            if candidate not in self._used_domains:
                self._used_domains.add(candidate)
                return candidate

    def reserve_domain(self, domain: str) -> str:
        """Mark a hand-picked domain (e.g. an elite instance name) as used."""
        self._used_domains.add(domain)
        return domain

    def username(self) -> str:
        """Return a fresh username."""
        self._user_counter += 1
        adjective = self._rng.choice(_USERNAME_ADJECTIVES)
        noun = self._rng.choice(_USERNAME_NOUNS)
        return f"{adjective}_{noun}_{self._user_counter}"
