"""The planted ground truth returned alongside a generated fediverse.

The generator plants facts (which instances are controversial, which users
post harmful content, what each instance's dominant content category is)
that the *measurement* then has to recover through the crawled data alone.
Keeping the ground truth separate lets tests verify the recovery without
ever letting the analysis peek at it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class InstanceCategory(str, Enum):
    """Dominant content category of an instance (Section 4.2 annotation)."""

    MAINSTREAM = "mainstream"
    TOXIC = "toxic"
    SEXUALLY_EXPLICIT = "sexually_explicit"
    PROFANE = "profane"
    GENERAL = "general"

    @property
    def is_harmful(self) -> bool:
        """Return ``True`` for the harmful content categories."""
        return self in (
            InstanceCategory.TOXIC,
            InstanceCategory.SEXUALLY_EXPLICIT,
            InstanceCategory.PROFANE,
        )

    @property
    def attribute(self) -> str | None:
        """Return the Perspective attribute that matches the category."""
        mapping = {
            InstanceCategory.TOXIC: "toxicity",
            InstanceCategory.PROFANE: "profanity",
            InstanceCategory.SEXUALLY_EXPLICIT: "sexually_explicit",
        }
        return mapping.get(self)


@dataclass
class GroundTruth:
    """Everything the generator planted while building the fediverse."""

    #: domain -> dominant content category.
    instance_categories: dict[str, InstanceCategory] = field(default_factory=dict)
    #: Domains of controversial (likely-to-be-rejected) Pleroma instances.
    controversial_domains: set[str] = field(default_factory=set)
    #: Domains of the elite controversial instances (the Table 1 head).
    elite_domains: list[str] = field(default_factory=list)
    #: Domains of the famous non-Pleroma reject targets (gab and friends).
    elite_non_pleroma_domains: list[str] = field(default_factory=list)
    #: Domains of non-Pleroma instances that are plausible reject targets.
    blockable_non_pleroma_domains: set[str] = field(default_factory=set)
    #: handle -> attributes of users planted as harmful.
    harmful_users: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: handle -> set of attributes, for every generated user (empty = benign).
    user_attributes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: domain -> number of users the generator created there.
    users_per_instance: dict[str, int] = field(default_factory=dict)
    #: domain -> number of local posts the generator created there.
    posts_per_instance: dict[str, int] = field(default_factory=dict)
    #: Domains planted to go down mid-campaign (the ``churn`` scenario).
    churned_domains: set[str] = field(default_factory=set)
    #: URIs of the planted hot posts boosts/likes are sampled from (the
    #: ``viral`` scenario; empty when the protocol knobs are off).
    hot_post_uris: list[str] = field(default_factory=list)
    #: Domains planted to block the measurement client's user agent.
    ua_blocking_domains: set[str] = field(default_factory=set)

    def category(self, domain: str) -> InstanceCategory:
        """Return the planted category of ``domain`` (mainstream by default)."""
        return self.instance_categories.get(domain, InstanceCategory.MAINSTREAM)

    def is_controversial(self, domain: str) -> bool:
        """Return ``True`` when ``domain`` was planted as controversial."""
        return domain in self.controversial_domains

    def is_harmful_user(self, handle: str) -> bool:
        """Return ``True`` when ``handle`` was planted as harmful."""
        return handle in self.harmful_users

    def harmful_user_count(self, domain: str | None = None) -> int:
        """Return the number of planted harmful users (optionally per domain)."""
        if domain is None:
            return len(self.harmful_users)
        suffix = f"@{domain}"
        return sum(1 for handle in self.harmful_users if handle.endswith(suffix))

    def summary(self) -> dict[str, int]:
        """Return headline counts of the planted ground truth."""
        return {
            "instances": len(self.instance_categories),
            "controversial_instances": len(self.controversial_domains),
            "elite_instances": len(self.elite_domains),
            "harmful_users": len(self.harmful_users),
            "users": sum(self.users_per_instance.values()),
            "posts": sum(self.posts_per_instance.values()),
        }
