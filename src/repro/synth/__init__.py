"""Synthetic-fediverse generation calibrated to the paper.

The original study measured the live fediverse between December 2020 and
April 2021; that population no longer exists and no canonical dataset was
released.  This package substitutes it with a configurable generator whose
*population statistics* — instance counts, the Pleroma share, user/post
heavy tails, policy-adoption mix, reject-target concentration and the
planted harmful-user fraction — are calibrated to the numbers reported in
the paper, so that re-running the measurement and analysis pipeline
reproduces the paper's distributions in shape.

The generator produces a real, functioning
:class:`~repro.fediverse.registry.FediverseRegistry`: instances run actual
MRF pipelines, posts actually federate and are filtered, and the crawler
(:mod:`repro.crawler`) observes all of it through the public APIs only.
The generator additionally returns the planted ground truth (which users
are harmful, which instances are controversial) so tests can verify that
the measurement recovers it.
"""

from repro.synth.config import (
    PAPER_ACTION_ADOPTION,
    PAPER_POLICY_ADOPTION,
    SynthConfig,
)
from repro.synth.generator import FediverseGenerator, GeneratedFediverse
from repro.synth.ground_truth import GroundTruth, InstanceCategory
from repro.synth.names import NameGenerator
from repro.synth.text import TextGenerator
from repro.synth.scenario import SCENARIOS, build_scenario, scenario_config

__all__ = [
    "PAPER_ACTION_ADOPTION",
    "PAPER_POLICY_ADOPTION",
    "SynthConfig",
    "FediverseGenerator",
    "GeneratedFediverse",
    "GroundTruth",
    "InstanceCategory",
    "NameGenerator",
    "TextGenerator",
    "SCENARIOS",
    "build_scenario",
    "scenario_config",
]
