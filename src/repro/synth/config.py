"""Configuration of the synthetic fediverse, calibrated to the paper.

Every constant that encodes a number reported in the paper is annotated with
the section / figure / table it comes from, so the calibration is auditable.
The :class:`SynthConfig` dataclass scales those proportions to an arbitrary
population size: the default configuration is small enough for unit tests,
and :func:`repro.synth.scenario.scenario_config` provides larger presets
(including a paper-scale one used by the benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# --------------------------------------------------------------------------- #
# Calibration constants lifted from the paper
# --------------------------------------------------------------------------- #

#: Section 3: 9,969 instances discovered, 1,534 of them Pleroma.
PAPER_TOTAL_INSTANCES = 9_969
PAPER_PLEROMA_INSTANCES = 1_534
PAPER_NON_PLEROMA_INSTANCES = 8_435

#: Section 3: 1,298 of the 1,534 Pleroma instances could be crawled; the
#: remainder failed with the following HTTP statuses.
PAPER_CRAWLABLE_PLEROMA = 1_298
PAPER_UNCRAWLABLE_STATUS_COUNTS = {404: 110, 403: 84, 502: 24, 503: 11, 410: 7}

#: Section 3: 111K users discovered, 48.7% of whom published at least one
#: post; posts were collected from 796 instances; the public timeline of
#: 38.7% of instances was not reachable and 119 instances had no posts.
PAPER_TOTAL_USERS = 111_000
PAPER_ACTIVE_USER_SHARE = 0.487
PAPER_TIMELINE_UNREACHABLE_SHARE = 0.387

#: Section 4.1: share of Pleroma instances exposing their policy settings.
PAPER_POLICY_EXPOSURE_RATE = 0.919

#: Table 3 / Appendix A: number of crawlable instances enabling each in-built
#: policy.  Divided by PAPER_CRAWLABLE_PLEROMA these become adoption
#: probabilities.
PAPER_POLICY_INSTANCE_COUNTS: dict[str, int] = {
    "ObjectAgePolicy": 869,
    "TagPolicy": 429,
    "SimplePolicy": 330,
    "NoOpPolicy": 176,
    "HellthreadPolicy": 87,
    "StealEmojiPolicy": 81,
    "HashtagPolicy": 62,
    "AntiFollowbotPolicy": 51,
    "MediaProxyWarmingPolicy": 46,
    "KeywordPolicy": 42,
    "AntiLinkSpamPolicy": 32,
    "ForceBotUnlistedPolicy": 23,
    "EnsureRePrepended": 18,
    "ActivityExpirationPolicy": 11,
    "SubchainPolicy": 8,
    "MentionPolicy": 6,
    "VocabularyPolicy": 5,
    "AntiHellthreadPolicy": 4,
    "RejectNonPublic": 3,
    "FollowBotPolicy": 2,
    "DropPolicy": 1,
    # In-built policies only visible in the full spectrum of Figure 7.
    "NormalizeMarkup": 10,
    "NoEmptyPolicy": 4,
    "NoPlaceholderTextPolicy": 9,
    "UserAllowListPolicy": 7,
    "BlockPolicy": 6,
}

#: Per-policy adoption probability among crawlable Pleroma instances.
PAPER_POLICY_ADOPTION: dict[str, float] = {
    name: count / PAPER_CRAWLABLE_PLEROMA
    for name, count in PAPER_POLICY_INSTANCE_COUNTS.items()
}

#: Aggregate adoption probability for admin-created (custom) policies; the
#: paper observes 20 of them, each on a small handful of instances
#: (Figure 7).  The probability below is per custom policy.
PAPER_CUSTOM_POLICY_ADOPTION = 2.5 / PAPER_CRAWLABLE_PLEROMA

#: Section 4.1 / Figure 3: among instances with the SimplePolicy enabled,
#: the share using each action.  (reject: "73% of instances that have the
#: SimplePolicy enabled apply the reject action"; media_removal: "applied by
#: 5.4% of the instances"; the rest estimated from Figure 3.)
PAPER_ACTION_ADOPTION: dict[str, float] = {
    "reject": 0.73,
    "federated_timeline_removal": 0.30,
    "accept": 0.09,
    "followers_only": 0.08,
    "avatar_removal": 0.07,
    "reject_deletes": 0.07,
    "media_nsfw": 0.06,
    "media_removal": 0.054,
    "banner_removal": 0.05,
    "report_removal": 0.03,
}

#: Section 4.2: 15.5% of Pleroma instances are rejected at least once, yet
#: they hold 86.2% of users and 88.7% of posts; 202 Pleroma and 998
#: non-Pleroma instances are rejected overall.
PAPER_REJECTED_PLEROMA_SHARE = 0.155
PAPER_REJECTED_USER_SHARE = 0.862
PAPER_REJECTED_POST_SHARE = 0.887
PAPER_REJECTED_PLEROMA_COUNT = 202
PAPER_REJECTED_NON_PLEROMA_COUNT = 998

#: Section 4.2: share of rejected instances rejected by fewer than 10
#: instances, and the elite share receiving more than 20 rejects.
PAPER_REJECTED_BY_FEW_SHARE = 0.868
PAPER_ELITE_REJECTED_SHARE = 0.054

#: Section 4.2 "Why are instances blocked?": manual annotation of rejected
#: Pleroma instances — 90.6% fall into harmful categories, 9.4% general.
PAPER_REJECTED_HARMFUL_CATEGORY_SHARE = 0.906

#: Section 5: on rejected (multi-user) Pleroma instances, only 4.2% of users
#: are harmful at the 0.8 threshold; the harmful:non-harmful post ratio is
#: roughly 1:11; among harmful users 69.7% are toxic, 57.6% profane and
#: 43.9% sexually explicit (a user can be several).
PAPER_HARMFUL_USER_SHARE = 0.042
PAPER_HARMFUL_POST_RATIO = 1 / 11
PAPER_HARMFUL_ATTRIBUTE_MIX = {
    "toxicity": 0.697,
    "profanity": 0.576,
    "sexually_explicit": 0.439,
}

#: Section 5: 26.4% of the rejected Pleroma instances with posts are
#: single-user instances (excluded from the collateral analysis).
PAPER_SINGLE_USER_REJECTED_SHARE = 0.264

#: Section 3: the campaign spans 16 Dec 2020 – 24 Apr 2021 (about 129 days)
#: with instance metadata snapshots every 4 hours.
PAPER_CAMPAIGN_DAYS = 129
PAPER_SNAPSHOT_INTERVAL_HOURS = 4

#: The five most rejected Pleroma instances (Table 1), used as the names of
#: the synthetic elite instances so Table 1 is directly comparable.
PAPER_ELITE_PLEROMA_INSTANCES: tuple[str, ...] = (
    "freespeech-extremist.example",
    "kiwifarms.example",
    "spinster.example",
    "neckbeard.example",
    "poa-st.example",
)

#: Famous non-Pleroma reject targets (gab.com tops the overall list in the
#: paper; 40% of the overall top-10 is Pleroma).
PAPER_ELITE_NON_PLEROMA_INSTANCES: tuple[str, ...] = (
    "gab.example",
    "myfreecams-social.example",
    "baraag.example",
    "pawoo.example",
    "shitposter-club.example",
)


# --------------------------------------------------------------------------- #
# Generator configuration
# --------------------------------------------------------------------------- #
@dataclass
class SynthConfig:
    """All knobs of the synthetic-fediverse generator.

    The default values produce a *small* fediverse (fast enough for unit
    tests) whose proportions match the paper's; absolute counts scale with
    ``n_pleroma_instances``.
    """

    #: Seed of the deterministic RNG; every run with the same config is
    #: bit-identical.
    seed: int = 42

    # -- population ----------------------------------------------------- #
    #: Number of Pleroma instances to generate.
    n_pleroma_instances: int = 150
    #: Non-Pleroma instances per Pleroma instance (paper: 8435/1534 ≈ 5.5).
    non_pleroma_ratio: float = PAPER_NON_PLEROMA_INSTANCES / PAPER_PLEROMA_INSTANCES
    #: Probability that a Pleroma instance cannot be crawled, broken down by
    #: HTTP status (shares of the 1,534 Pleroma instances, Section 3).
    uncrawlable_status_shares: dict[int, float] = field(
        default_factory=lambda: {
            status: count / PAPER_PLEROMA_INSTANCES
            for status, count in PAPER_UNCRAWLABLE_STATUS_COUNTS.items()
        }
    )
    #: Probability that a crawlable instance's public timeline is unreachable.
    timeline_unreachable_rate: float = PAPER_TIMELINE_UNREACHABLE_SHARE
    #: Probability that a Pleroma instance exposes its policy configuration.
    policy_exposure_rate: float = PAPER_POLICY_EXPOSURE_RATE

    # -- instance sizes -------------------------------------------------- #
    #: Fraction of Pleroma instances that are "controversial": large, openly
    #: moderation-averse, and the likely targets of reject actions.
    controversial_share: float = PAPER_REJECTED_PLEROMA_SHARE
    #: Number of elite controversial instances (the Table 1 head).
    n_elite_instances: int = 5
    #: Mean number of users on mainstream instances (heavy-tailed around it).
    mainstream_mean_users: float = 4.0
    #: Mean number of users on controversial instances.
    controversial_mean_users: float = 100.0
    #: Multiplier applied to elite instances' user counts.
    elite_user_multiplier: float = 3.0
    #: Share of single-user instances among controversial instances.
    single_user_controversial_share: float = PAPER_SINGLE_USER_REJECTED_SHARE
    #: Fraction of users who published at least one post (Section 3: 48.7%).
    active_user_share: float = PAPER_ACTIVE_USER_SHARE
    #: Mean number of posts per active non-harmful user.
    mean_posts_per_user: float = 8.0
    #: Posting-rate multiplier of harmful users (drives the 1:11 post ratio).
    harmful_post_multiplier: float = 2.0

    # -- content -------------------------------------------------------- #
    #: Share of users on controversial instances who post harmful content
    #: (i.e. whose average Perspective score reaches 0.8 in some attribute).
    #: This is documentation of the calibration target; generation itself is
    #: driven by the score-band shares below (the two 0.8+ bands sum to it).
    harmful_user_share: float = PAPER_HARMFUL_USER_SHARE
    #: Score-band shares for users on controversial instances: maps the lower
    #: edge of a 0.1-wide score band to the share of users whose average
    #: Perspective score lands in that band.  Users not covered by any band
    #: are benign (score ~0).  The default is derived from Table 2 of the
    #: paper (cumulative non-harmful shares at thresholds 0.5–0.9), so the
    #: threshold sweep reproduces the same gradient.
    controversial_score_band_shares: dict[float, float] = field(
        default_factory=lambda: {
            0.9: 0.027,
            0.8: 0.015,
            0.7: 0.017,
            0.6: 0.023,
            0.5: 0.054,
        }
    )
    #: Score-band shares for users on mainstream instances (tiny amounts of
    #: borderline content, essentially no harmful users).
    mainstream_score_band_shares: dict[float, float] = field(
        default_factory=lambda: {0.5: 0.01}
    )
    #: Attribute mix of harmful users (a user can draw several attributes).
    harmful_attribute_mix: dict[str, float] = field(
        default_factory=lambda: dict(PAPER_HARMFUL_ATTRIBUTE_MIX)
    )
    #: Target Perspective score planted for harmful users' posts.
    harmful_target_score: float = 0.88
    #: Share of rejected/controversial instances whose dominant category is
    #: harmful (toxic / sexually explicit / profane) rather than "general".
    controversial_harmful_category_share: float = PAPER_REJECTED_HARMFUL_CATEGORY_SHARE
    #: Probability that a post carries a media attachment.
    media_attachment_rate: float = 0.18
    #: Media attachment probability on sexually-explicit instances.
    sexual_media_attachment_rate: float = 0.55
    #: Probability that a post is authored by a bot account.
    bot_user_share: float = 0.03
    #: Mean words per post body.
    mean_post_length: float = 22.0

    # -- policies --------------------------------------------------------- #
    #: Per-policy adoption probability (defaults to the paper's Table 3).
    policy_adoption: dict[str, float] = field(
        default_factory=lambda: dict(PAPER_POLICY_ADOPTION)
    )
    #: Adoption probability of each admin-created custom policy.
    custom_policy_adoption: float = PAPER_CUSTOM_POLICY_ADOPTION
    #: Given SimplePolicy, per-action adoption probability (Figure 3).
    action_adoption: dict[str, float] = field(
        default_factory=lambda: dict(PAPER_ACTION_ADOPTION)
    )
    #: Controversial instances rarely moderate others (Section 4.2 finds the
    #: most rejected instances barely reject anyone); this factor scales
    #: their SimplePolicy adoption probability down.
    controversial_simplepolicy_factor: float = 0.25
    #: Mean number of reject targets per rejecting instance.
    mean_reject_list_size: float = 14.0
    #: Mean number of targets for non-reject SimplePolicy actions.
    mean_other_action_list_size: float = 4.0
    #: Fraction of non-Pleroma instances that are plausible reject targets.
    non_pleroma_blockable_share: float = (
        PAPER_REJECTED_NON_PLEROMA_COUNT / PAPER_NON_PLEROMA_INSTANCES
    )
    #: Zipf-ish concentration of reject targeting: probability mass assigned
    #: to elite targets relative to ordinary blockable targets.
    elite_target_weight: float = 12.0
    controversial_target_weight: float = 3.0
    ordinary_target_weight: float = 1.0
    #: Weight multiplier applied to sexually-explicit instances when sampling
    #: targets for media_removal / media_nsfw (Section 7 observes those
    #: instances are mostly moderated through media actions).
    sexual_media_target_multiplier: float = 5.0

    # -- federation ------------------------------------------------------ #
    #: Number of peer instances each Pleroma instance federates a sample of
    #: its posts to (keeps delivery volume tractable while still exercising
    #: every MRF pipeline).
    federation_fanout: int = 4
    #: Maximum number of recent posts an instance federates to each peer.
    federation_posts_per_peer: int = 10
    #: Share of origin instances that are "hot" and fan out far more widely
    #: (the ``burst`` scenario).  0 keeps the seed's uniform fan-out and
    #: draws no extra randomness, so existing scenarios are bit-identical.
    federation_hot_origin_share: float = 0.0
    #: Fan-out multiplier applied to hot origin instances.
    federation_hot_fanout_multiplier: float = 1.0

    # -- protocol realism ------------------------------------------------- #
    #: Share of origin instances that boost (``Announce``) posts from the
    #: planted hot-post pool alongside their ``Create`` federation (the
    #: ``viral`` scenario).  0 emits no boosts and draws no extra
    #: randomness, so existing scenarios are bit-identical.
    federation_announce_share: float = 0.0
    #: Number of hot-post boosts a participating origin sends each peer.
    federation_announces_per_peer: int = 3
    #: Share of origin instances that favourite (``Like``) hot posts
    #: alongside their federation.  0 draws no extra randomness.
    federation_like_share: float = 0.0
    #: Number of hot-post favourites a participating origin sends each peer.
    federation_likes_per_peer: int = 2
    #: Size of the planted hot-post pool boosts and likes are sampled from
    #: (recorded in ground truth).  Only sampled when boosts or likes are
    #: enabled, so Create-only populations stay bit-identical.
    federation_hot_post_count: int = 8
    #: Share of public seed posts that grow a reply thread (the
    #: ``hellthread`` scenario).  Replies accumulate participant mentions
    #: with depth, so deep threads on large instances cross the Hellthread
    #: mention floors.  0 draws no extra randomness.
    reply_thread_share: float = 0.0
    #: Maximum reply-thread depth; 0 disables threading entirely.
    reply_thread_max_depth: int = 0
    #: Share of Pleroma instances that block known crawler user agents
    #: (Epicyon-style UA blocking): their API refuses the measurement
    #: client's user agent with a 403.  0 draws no extra randomness.
    ua_blocking_share: float = 0.0

    # -- churn ------------------------------------------------------------ #
    #: Probability that a (non-elite) Pleroma instance goes down mid-campaign
    #: (the ``churn`` scenario).  0 draws no extra randomness, keeping
    #: existing scenarios bit-identical.
    instance_churn_rate: float = 0.0
    #: Window (days, starting at the campaign end — i.e. when the crawl
    #: begins) within which churned instances go down; matches the default
    #: crawl duration used by the pipelines, so crawls see churned instances
    #: in early snapshot rounds and lose them later.
    churn_window_days: float = 2.0

    # -- faults ----------------------------------------------------------- #
    #: Named fault profile the scenario's campaigns are measured under
    #: (``none``/``light``/``mixed``/``heavy`` — see
    #: :data:`repro.faults.plan.FAULT_PROFILES`).  ``"none"`` compiles to a
    #: provably inert plan, so existing scenarios are bit-identical.
    fault_profile: str = "none"
    #: Seed of the fault plan's dedicated RNG stream (never shared with the
    #: generator's own stream).
    fault_seed: int = 1337
    #: Named worker-fault profile the scenario's *sharded* runs are
    #: supervised under (``none``/``light``/``mixed``/``heavy`` — see
    #: :data:`repro.faults.workers.WORKER_FAULT_PROFILES`).  Only read by
    #: the supervised engine / the ``shard_chaos`` bench stage; it never
    #: affects generation, so populations stay bit-identical.
    worker_fault_profile: str = "none"
    #: Seed of the worker-fault plan's dedicated RNG stream.
    worker_fault_seed: int = 4242

    # -- campaign --------------------------------------------------------- #
    #: Length of the simulated measurement campaign, in days.
    campaign_days: float = 14.0
    #: Interval between instance metadata snapshots, in hours (paper: 4h).
    snapshot_interval_hours: float = float(PAPER_SNAPSHOT_INTERVAL_HOURS)
    #: Concurrent crawler clients the ``serving`` bench stage drives against
    #: the API server (the load harness's widest fan-out; 1 and 2 clients
    #: are always measured alongside).  Read only by the perf harness — it
    #: never affects generation, so populations stay bit-identical.
    serving_clients: int = 4

    def __post_init__(self) -> None:
        if self.n_pleroma_instances < 10:
            raise ValueError("n_pleroma_instances must be at least 10")
        if not 0 < self.controversial_share < 1:
            raise ValueError("controversial_share must be within (0, 1)")
        if self.n_elite_instances < 0:
            raise ValueError("n_elite_instances must be non-negative")
        if not 0 <= self.harmful_user_share <= 1:
            raise ValueError("harmful_user_share must be within [0, 1]")
        if self.harmful_target_score > 0.98:
            raise ValueError("harmful_target_score above the scorer ceiling")
        total_uncrawlable = sum(self.uncrawlable_status_shares.values())
        if total_uncrawlable >= 1.0:
            raise ValueError("uncrawlable shares must sum to less than 1")
        if not 0 <= self.federation_hot_origin_share <= 1:
            raise ValueError("federation_hot_origin_share must be within [0, 1]")
        if self.federation_hot_fanout_multiplier < 1.0:
            raise ValueError("federation_hot_fanout_multiplier must be >= 1")
        if not 0 <= self.instance_churn_rate <= 1:
            raise ValueError("instance_churn_rate must be within [0, 1]")
        if self.churn_window_days <= 0:
            raise ValueError("churn_window_days must be positive")
        if self.fault_profile not in ("none", "light", "mixed", "heavy"):
            raise ValueError(
                f"unknown fault_profile {self.fault_profile!r}; "
                "available: none, light, mixed, heavy"
            )
        if self.worker_fault_profile not in ("none", "light", "mixed", "heavy"):
            raise ValueError(
                f"unknown worker_fault_profile {self.worker_fault_profile!r}; "
                "available: none, light, mixed, heavy"
            )
        if self.serving_clients < 1:
            raise ValueError("serving_clients must be at least 1")
        if not 0 <= self.federation_announce_share <= 1:
            raise ValueError("federation_announce_share must be within [0, 1]")
        if self.federation_announces_per_peer < 1:
            raise ValueError("federation_announces_per_peer must be at least 1")
        if not 0 <= self.federation_like_share <= 1:
            raise ValueError("federation_like_share must be within [0, 1]")
        if self.federation_likes_per_peer < 1:
            raise ValueError("federation_likes_per_peer must be at least 1")
        if self.federation_hot_post_count < 1:
            raise ValueError("federation_hot_post_count must be at least 1")
        if not 0 <= self.reply_thread_share <= 1:
            raise ValueError("reply_thread_share must be within [0, 1]")
        if self.reply_thread_max_depth < 0:
            raise ValueError("reply_thread_max_depth must be non-negative")
        if not 0 <= self.ua_blocking_share <= 1:
            raise ValueError("ua_blocking_share must be within [0, 1]")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def n_non_pleroma_instances(self) -> int:
        """Return the number of non-Pleroma instances to generate."""
        return int(round(self.n_pleroma_instances * self.non_pleroma_ratio))

    @property
    def n_controversial_instances(self) -> int:
        """Return the number of controversial Pleroma instances."""
        return max(1, int(round(self.n_pleroma_instances * self.controversial_share)))

    @property
    def n_elite(self) -> int:
        """Return the number of elite instances (bounded by the controversial pool)."""
        return min(self.n_elite_instances, self.n_controversial_instances)

    @property
    def campaign_seconds(self) -> float:
        """Return the campaign duration in seconds."""
        return self.campaign_days * 24 * 3600.0

    @property
    def snapshot_interval_seconds(self) -> float:
        """Return the snapshot interval in seconds."""
        return self.snapshot_interval_hours * 3600.0

    def scaled(self, factor: float) -> "SynthConfig":
        """Return a deep copy with the instance population scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        import copy as _copy

        clone = _copy.deepcopy(self)
        clone.n_pleroma_instances = max(
            10, int(round(self.n_pleroma_instances * factor))
        )
        return clone
