"""Named generation scenarios.

Scenarios bundle a :class:`~repro.synth.config.SynthConfig` at a given scale
so tests, examples and benchmarks agree on what "tiny", "small", "medium"
and "paper" mean.  Percentage-style results are designed to be stable across
scales (that is itself verified by a test); absolute counts grow with scale.
"""

from __future__ import annotations

from repro.synth.config import SynthConfig
from repro.synth.generator import FediverseGenerator, GeneratedFediverse

#: Scenario name -> keyword overrides applied on top of the defaults.
SCENARIOS: dict[str, dict] = {
    # Fast enough for unit tests (a couple of hundred users).
    "tiny": {"n_pleroma_instances": 40, "campaign_days": 3.0, "federation_fanout": 3},
    # The default: a faithful miniature of the paper's population.
    "small": {"n_pleroma_instances": 150, "campaign_days": 14.0},
    # Used by most benchmarks.
    "medium": {"n_pleroma_instances": 400, "campaign_days": 30.0},
    # Stress scale for the performance harness (see repro.perf): big enough
    # that quadratic or per-record-scan hot paths dominate the wall clock.
    "large": {"n_pleroma_instances": 800, "campaign_days": 30.0},
    # Beyond-paper scale: twice the large population, for engine stress
    # runs.  Sharded runs at this scale are long enough for workers to die
    # mid-run, so the scenario names the worker-fault weather its
    # supervised engine is measured under (shard_chaos bench stage).
    "xlarge": {
        "n_pleroma_instances": 1600,
        "campaign_days": 30.0,
        "worker_fault_profile": "mixed",
        # At this scale the serving bench is worth a wider client fan-out.
        "serving_clients": 8,
    },
    # Skewed federation load: a tenth of the origins go "hot" and fan out an
    # order of magnitude wider, concentrating delivery traffic on the big
    # receivers — the worst case for the delivery engine's batching.
    "burst": {
        "n_pleroma_instances": 400,
        "campaign_days": 30.0,
        "federation_fanout": 6,
        "federation_hot_origin_share": 0.1,
        "federation_hot_fanout_multiplier": 8.0,
    },
    # Instances going down mid-campaign: crawls see them early and lose them
    # later, exercising snapshot-count / first-seen bookkeeping end-to-end.
    "churn": {
        "n_pleroma_instances": 400,
        "campaign_days": 30.0,
        "instance_churn_rate": 0.15,
        "churn_window_days": 2.0,
    },
    # The churn population measured under a misbehaving network: every fault
    # kind fires (transient 5xx windows, timeouts, 429s, flapping, truncated
    # timelines, malformed bodies) on top of mid-campaign down flips — the
    # chaos bench's home scenario.
    "chaos": {
        "n_pleroma_instances": 400,
        "campaign_days": 30.0,
        "instance_churn_rate": 0.15,
        "churn_window_days": 2.0,
        "fault_profile": "mixed",
    },
    # Beyond-everything scale, reachable only by the sharded federation
    # engine (repro.shard): ≥100k instances (~15.5k Pleroma + ~85k other)
    # holding about a million users.  Per-user post volume and per-peer
    # federation samples are trimmed so the coordinator's prepare() stays
    # tractable; the perf harness runs only the `sharding` stage here.
    "xxlarge": {
        "n_pleroma_instances": 15_500,
        "campaign_days": 30.0,
        "mainstream_mean_users": 62.0,
        "mean_posts_per_user": 1.5,
        "federation_posts_per_peer": 5,
        # Million-user runs must survive worker deaths: the supervised
        # sharded engine is measured under the mixed worker-fault mix.
        "worker_fault_profile": "mixed",
    },
    # Protocol-realism load: boosts and favourites of a small hot-post pool
    # re-fanned across origins (Announce traffic routinely dwarfs Create
    # traffic on the real fediverse), signature-verified deliveries, and a
    # slice of UA-blocking instances the crawler cannot reach.  The home
    # scenario of the `protocol` bench stage's full-activity-mix gates.
    "viral": {
        "n_pleroma_instances": 400,
        "campaign_days": 30.0,
        "federation_announce_share": 0.5,
        "federation_announces_per_peer": 4,
        "federation_like_share": 0.4,
        "federation_likes_per_peer": 3,
        "federation_hot_post_count": 12,
        "ua_blocking_share": 0.05,
    },
    # Deep reply threads with ever-growing mention blocks: by the configured
    # depth every reply mentions a dozen-plus participants, which is exactly
    # the traffic HellthreadPolicy's mention floor exists to cut off.
    "hellthread": {
        "n_pleroma_instances": 400,
        "campaign_days": 30.0,
        "reply_thread_share": 0.12,
        "reply_thread_max_depth": 16,
        "federation_announce_share": 0.2,
        "federation_announces_per_peer": 2,
        "federation_like_share": 0.2,
        "federation_likes_per_peer": 2,
    },
    # Instance population matching the paper's 1,534 Pleroma instances.
    "paper": {
        "n_pleroma_instances": 1534,
        "campaign_days": float(129),
        "federation_posts_per_peer": 5,
    },
}


def scenario_config(name: str = "small", seed: int = 42, **overrides) -> SynthConfig:
    """Return the :class:`SynthConfig` of a named scenario.

    Additional keyword overrides are applied on top of the scenario, which is
    how benchmarks sweep individual parameters.
    """
    try:
        base = dict(SCENARIOS[name])
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
    base.update(overrides)
    return SynthConfig(seed=seed, **base)


def build_scenario(name: str = "small", seed: int = 42, **overrides) -> GeneratedFediverse:
    """Generate the fediverse of a named scenario."""
    config = scenario_config(name, seed=seed, **overrides)
    return FediverseGenerator(config).generate()
