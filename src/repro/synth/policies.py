"""Assignment of MRF policies to generated instances.

The assigner decides which policies each Pleroma instance enables (following
the adoption mix of Table 3), which SimplePolicy actions it uses (following
Figure 3), and which instances each action targets (concentrated on the
controversial/elite instances, following Section 4.2).  All decisions are
made with the generator's seeded RNG so a configuration always produces the
same moderation landscape.
"""

from __future__ import annotations

import random

from repro.fediverse.instance import Instance
from repro.fediverse.registry import FediverseRegistry
from repro.mrf.custom import OBSERVED_CUSTOM_POLICY_NAMES
from repro.mrf.registry import create_policy
from repro.mrf.simple import SimplePolicy
from repro.synth.config import SynthConfig
from repro.synth.ground_truth import GroundTruth, InstanceCategory
from repro.synth.population import geometric_count, weighted_sample_without_replacement

#: Policies whose constructor needs non-default arguments to do anything
#: interesting in the simulation.
_POLICY_KWARGS = {
    "KeywordPolicy": {
        "reject": ["casino bonus", "crypto giveaway"],
        "federated_timeline_removal": ["curseword"],
    },
    "HashtagPolicy": {"sensitive": ["nsfw", "lewd"]},
    "MentionPolicy": {"actors": ["blocked_person@mentions.example"]},
    "VocabularyPolicy": {"reject": ["Flag"]},
    "StealEmojiPolicy": {"hosts": ["*.example"]},
}


class PolicyAssigner:
    """Assign policies and SimplePolicy targets across a generated fediverse."""

    def __init__(
        self,
        config: SynthConfig,
        rng: random.Random,
        ground_truth: GroundTruth,
    ) -> None:
        self.config = config
        self.rng = rng
        self.ground_truth = ground_truth

    # ------------------------------------------------------------------ #
    # Policy selection per instance
    # ------------------------------------------------------------------ #
    def choose_policies(self, instance: Instance) -> list[str]:
        """Return the policy names ``instance`` enables."""
        controversial = self.ground_truth.is_controversial(instance.domain)
        chosen: list[str] = []
        for name, probability in self.config.policy_adoption.items():
            if name == "SimplePolicy" and controversial:
                probability *= self.config.controversial_simplepolicy_factor
            if self.rng.random() < probability:
                chosen.append(name)
        for name in OBSERVED_CUSTOM_POLICY_NAMES:
            if self.rng.random() < self.config.custom_policy_adoption:
                chosen.append(name)
        return chosen

    def choose_actions(self) -> list[str]:
        """Return the SimplePolicy actions an instance uses (at least one)."""
        actions = [
            action
            for action, probability in self.config.action_adoption.items()
            if self.rng.random() < probability
        ]
        if not actions:
            actions.append("reject" if self.rng.random() < 0.73 else "federated_timeline_removal")
        return actions

    # ------------------------------------------------------------------ #
    # Target pools
    # ------------------------------------------------------------------ #
    def build_target_pool(self) -> tuple[list[str], dict[str, float]]:
        """Return the candidate reject targets and their sampling weights.

        Elite targets get descending weights in their Table 1 order, so the
        head of the measured reject ranking reproduces the paper's ordering
        (freespeech-extremist first, then kiwifarms, and so on).
        """
        weights: dict[str, float] = {}
        for rank, domain in enumerate(self.ground_truth.elite_domains):
            weights[domain] = self.config.elite_target_weight / (1.0 + 0.3 * rank)
        # The famous non-Pleroma targets (gab and friends) sit at the very top
        # of the overall reject ranking in the paper, ahead of the Pleroma head.
        for rank, domain in enumerate(self.ground_truth.elite_non_pleroma_domains):
            weights[domain] = 1.25 * self.config.elite_target_weight / (1.0 + 0.3 * rank)
        # Sets are iterated in sorted order so the generated moderation
        # landscape is identical across processes (set order depends on the
        # interpreter's hash seed).
        for domain in sorted(self.ground_truth.controversial_domains):
            weights.setdefault(domain, self.config.controversial_target_weight)
        for domain in sorted(self.ground_truth.blockable_non_pleroma_domains):
            weights.setdefault(domain, self.config.ordinary_target_weight)
        return list(weights), weights

    def _action_weights(
        self, action: str, candidates: list[str], base_weights: dict[str, float]
    ) -> list[float]:
        """Return per-candidate weights, biased for media actions."""
        multiplier = self.config.sexual_media_target_multiplier
        weights = []
        for domain in candidates:
            weight = base_weights[domain]
            if action in ("media_removal", "media_nsfw"):
                category = self.ground_truth.category(domain)
                if category is InstanceCategory.SEXUALLY_EXPLICIT:
                    weight *= multiplier
            weights.append(weight)
        return weights

    # ------------------------------------------------------------------ #
    # Assignment entry point
    # ------------------------------------------------------------------ #
    def assign(self, registry: FediverseRegistry) -> dict[str, list[str]]:
        """Enable policies on every Pleroma instance of ``registry``.

        Returns a mapping domain -> enabled policy names (useful to tests).
        """
        candidates, base_weights = self.build_target_pool()
        assigned: dict[str, list[str]] = {}

        for instance in registry.pleroma_instances():
            policy_names = self.choose_policies(instance)
            assigned[instance.domain] = policy_names
            for name in policy_names:
                if name == "SimplePolicy":
                    policy = self._build_simple_policy(instance, candidates, base_weights)
                else:
                    kwargs = _POLICY_KWARGS.get(name, {})
                    policy = create_policy(name, **kwargs)
                if not instance.mrf.has_policy(policy.name):
                    instance.mrf.add_policy(policy)
        return assigned

    def _build_simple_policy(
        self,
        instance: Instance,
        candidates: list[str],
        base_weights: dict[str, float],
    ) -> SimplePolicy:
        """Build a SimplePolicy with sampled actions and target lists."""
        policy = SimplePolicy()
        usable = [domain for domain in candidates if domain != instance.domain]
        for action in self.choose_actions():
            if action == "reject":
                list_size = geometric_count(self.rng, self.config.mean_reject_list_size)
            else:
                list_size = geometric_count(self.rng, self.config.mean_other_action_list_size)
            weights = self._action_weights(action, usable, base_weights)
            targets = weighted_sample_without_replacement(
                self.rng, usable, weights, list_size
            )
            for target in targets:
                policy.add_target(action, target)
                instance.add_peer(target)
        return policy
