"""The synthetic-fediverse generator.

:class:`FediverseGenerator` builds a complete, functioning fediverse — real
:class:`~repro.fediverse.instance.Instance` objects running real MRF
pipelines, real users and posts, real federation deliveries — whose
population statistics follow the calibration in :mod:`repro.synth.config`.
The result bundles the registry with the planted
:class:`~repro.synth.ground_truth.GroundTruth` so tests can check that the
measurement pipeline recovers what was planted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.activitypub.activities import (
    Activity,
    announce_activity,
    create_activity,
    like_activity,
)
from repro.activitypub.actors import Actor
from repro.activitypub.delivery import FederationDelivery
from repro.fediverse.clock import SimulationClock
from repro.fediverse.instance import Instance, InstanceAvailability
from repro.fediverse.post import MediaAttachment, Visibility
from repro.fediverse.registry import FediverseRegistry
from repro.fediverse.software import SoftwareKind
from repro.perspective.attributes import Attribute
from repro.protocol.announce import select_hot_posts
from repro.protocol.conversation import CONVERSATION_FIELD, reply_content
from repro.synth.config import (
    PAPER_ELITE_NON_PLEROMA_INSTANCES,
    PAPER_ELITE_PLEROMA_INSTANCES,
    SynthConfig,
)
from repro.synth.ground_truth import GroundTruth, InstanceCategory
from repro.synth.names import NameGenerator
from repro.synth.policies import PolicyAssigner
from repro.synth.population import lognormal_count, geometric_count
from repro.synth.text import TextGenerator

#: Dominant category of the synthetic elite Pleroma instances, mirroring the
#: characterisation in Section 4.2 of the paper (free-speech/troll instances
#: are toxic, one is better described as "general", one is adult-content).
_ELITE_PLEROMA_CATEGORIES: tuple[InstanceCategory, ...] = (
    InstanceCategory.TOXIC,
    InstanceCategory.TOXIC,
    InstanceCategory.GENERAL,
    InstanceCategory.SEXUALLY_EXPLICIT,
    InstanceCategory.PROFANE,
)

_ELITE_NON_PLEROMA_CATEGORIES: tuple[InstanceCategory, ...] = (
    InstanceCategory.TOXIC,
    InstanceCategory.SEXUALLY_EXPLICIT,
    InstanceCategory.SEXUALLY_EXPLICIT,
    InstanceCategory.SEXUALLY_EXPLICIT,
    InstanceCategory.PROFANE,
)

#: Split of harmful categories among non-elite controversial instances.
_CONTROVERSIAL_CATEGORY_SPLIT: tuple[tuple[InstanceCategory, float], ...] = (
    (InstanceCategory.TOXIC, 0.45),
    (InstanceCategory.SEXUALLY_EXPLICIT, 0.35),
    (InstanceCategory.PROFANE, 0.20),
)

_NON_PLEROMA_SOFTWARE_MIX: tuple[tuple[SoftwareKind, float], ...] = (
    (SoftwareKind.MASTODON, 0.75),
    (SoftwareKind.MISSKEY, 0.10),
    (SoftwareKind.PEERTUBE, 0.05),
    (SoftwareKind.HUBZILLA, 0.03),
    (SoftwareKind.WRITEFREELY, 0.03),
    (SoftwareKind.OTHER, 0.04),
)

_PLEROMA_VERSIONS: tuple[tuple[str, float], ...] = (
    ("2.2.2", 0.55),
    ("2.3.0", 0.20),
    ("2.1.2", 0.15),
    ("2.0.7", 0.10),
)


@dataclass
class GenerationStats:
    """Counters describing what the generator produced."""

    pleroma_instances: int = 0
    non_pleroma_instances: int = 0
    users: int = 0
    posts: int = 0
    federated_deliveries: int = 0
    rejected_deliveries: int = 0


@dataclass
class GeneratedFediverse:
    """A generated fediverse plus its planted ground truth."""

    registry: FediverseRegistry
    ground_truth: GroundTruth
    config: SynthConfig
    delivery: FederationDelivery
    policy_assignment: dict[str, list[str]] = field(default_factory=dict)
    stats: GenerationStats = field(default_factory=GenerationStats)

    @property
    def clock(self) -> SimulationClock:
        """Return the simulation clock shared by all components."""
        return self.registry.clock

    def fault_spec(self):
        """Return the fault spec named by the config's ``fault_profile``.

        The spec draws its seed from ``config.fault_seed`` — a dedicated
        stream, so a scenario's population is bit-identical whether or not
        its campaigns are measured under faults.  Pass the result straight
        to :class:`~repro.crawler.campaign.MeasurementCampaign` (which
        compiles it against the registry), or compile it yourself via
        :func:`repro.faults.plan.compile_for_campaign`.
        """
        from repro.faults.plan import FaultSpec

        return FaultSpec.for_config(self.config)


@dataclass(frozen=True)
class FederationBatch:
    """One unit of federation work: several activities for one target.

    Batches group all activities one origin sends to one receiving instance,
    so the delivery engine can resolve the target, build the MRF context and
    validate the compiled pipeline once per batch instead of once per
    activity.
    """

    origin_domain: str
    target_domain: str
    activities: tuple[Activity, ...]


@dataclass
class PreparedFediverse:
    """A fediverse built up to (but excluding) the federation phase.

    :meth:`FediverseGenerator.prepare` returns one of these;
    :meth:`FediverseGenerator.federation_batches` then emits the federation
    work as a lazy stream of :class:`FederationBatch` es whose RNG draws and
    activity-creation order are identical to the seed's one-at-a-time loop.
    The perf harness uses this split to drive the same work stream through
    the batched engine and the seed-faithful baseline.
    """

    registry: FediverseRegistry
    ground_truth: GroundTruth
    config: SynthConfig
    rng: random.Random
    policy_assignment: dict[str, list[str]]
    stats: GenerationStats


class FediverseGenerator:
    """Generate a synthetic fediverse calibrated to the paper."""

    def __init__(self, config: SynthConfig | None = None) -> None:
        self.config = config or SynthConfig()

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def generate(self) -> GeneratedFediverse:
        """Build and return the complete synthetic fediverse.

        Federation runs through the counting path of the delivery engine:
        no per-delivery report objects are materialised (attach sinks to a
        custom :class:`FederationDelivery` and call :meth:`federate` to
        observe the report stream instead).  Ground truth, generation
        statistics and the per-instance moderation-event streams are
        identical to the seed's one-at-a-time delivery loop for a fixed
        seed — the perf harness asserts this at scale.
        """
        prepared = self.prepare()
        delivery = FederationDelivery(prepared.registry, sinks=[])
        self.federate(prepared, delivery)
        return self._finalise(prepared, delivery)

    def prepare(self) -> PreparedFediverse:
        """Build everything up to the federation phase (no deliveries yet)."""
        config = self.config
        rng = random.Random(config.seed)
        clock = SimulationClock()
        registry = FediverseRegistry(clock)
        names = NameGenerator(rng)
        text = TextGenerator(rng)
        ground_truth = GroundTruth()
        stats = GenerationStats()

        self._create_pleroma_instances(registry, names, rng, ground_truth)
        self._create_non_pleroma_instances(registry, names, rng, ground_truth)

        assigner = PolicyAssigner(config, rng, ground_truth)
        policy_assignment = assigner.assign(registry)
        # Compile every pipeline's plan table now: compilation is
        # configuration-time work (it belongs with policy assignment, not
        # with the first delivery that happens to arrive).
        for instance in registry.pleroma_instances():
            instance.mrf.compiled()

        self._populate_users_and_posts(registry, rng, text, ground_truth, stats)

        # Plant the hot-post pool boosts and likes are sampled from.  Only
        # sampled when a protocol knob is on, so Create-only populations
        # draw no extra randomness and stay bit-identical.
        if config.federation_announce_share > 0.0 or config.federation_like_share > 0.0:
            ground_truth.hot_post_uris = select_hot_posts(
                registry, rng, config.federation_hot_post_count
            )

        if config.instance_churn_rate > 0.0:
            self._apply_churn(registry, rng, ground_truth)

        if config.ua_blocking_share > 0.0:
            self._apply_ua_blocking(registry, rng, ground_truth)

        clock.advance_to(config.campaign_seconds)
        return PreparedFediverse(
            registry=registry,
            ground_truth=ground_truth,
            config=config,
            rng=rng,
            policy_assignment=policy_assignment,
            stats=stats,
        )

    def federate(
        self, prepared: PreparedFediverse, delivery: FederationDelivery
    ) -> None:
        """Consume the federation stream through the delivery engine.

        Uses the counted delivery path: with a sink-less engine no report
        objects exist at all; with sinks attached every sink still sees the
        full report stream.
        """
        stats = prepared.stats
        try:
            for batch in self.federation_batches(prepared):
                delivered, rejected = delivery.deliver_batch_counted(
                    batch.activities, batch.target_domain
                )
                stats.federated_deliveries += delivered
                stats.rejected_deliveries += rejected
        finally:
            # The shared decision caches (rewrite ledger, content columns,
            # mention counts) only pay off within one federation run;
            # dropping them here keeps finished runs' posts from being
            # retained across repeated generate() calls.
            from repro.mrf.shared import clear_shared_state

            clear_shared_state()

    def _finalise(
        self, prepared: PreparedFediverse, delivery: FederationDelivery
    ) -> GeneratedFediverse:
        """Assemble the result bundle after federation."""
        registry = prepared.registry
        stats = prepared.stats
        stats.pleroma_instances = len(registry.pleroma_instances())
        stats.non_pleroma_instances = len(registry.non_pleroma_instances())
        return GeneratedFediverse(
            registry=registry,
            ground_truth=prepared.ground_truth,
            config=prepared.config,
            delivery=delivery,
            policy_assignment=prepared.policy_assignment,
            stats=stats,
        )

    # ------------------------------------------------------------------ #
    # Instances
    # ------------------------------------------------------------------ #
    def _create_pleroma_instances(
        self,
        registry: FediverseRegistry,
        names: NameGenerator,
        rng: random.Random,
        ground_truth: GroundTruth,
    ) -> None:
        config = self.config
        n_total = config.n_pleroma_instances
        n_controversial = config.n_controversial_instances
        n_elite = config.n_elite

        # Elite instances first (named after the paper's Table 1 head, with
        # reserved example domains).
        for index in range(n_elite):
            domain = names.reserve_domain(PAPER_ELITE_PLEROMA_INSTANCES[index])
            category = _ELITE_PLEROMA_CATEGORIES[index % len(_ELITE_PLEROMA_CATEGORIES)]
            self._add_pleroma_instance(registry, rng, domain, category, elite=True)
            ground_truth.elite_domains.append(domain)
            ground_truth.controversial_domains.add(domain)
            ground_truth.instance_categories[domain] = category

        # Remaining controversial instances.
        for _ in range(n_controversial - n_elite):
            domain = names.domain()
            category = self._controversial_category(rng)
            self._add_pleroma_instance(registry, rng, domain, category, elite=False)
            ground_truth.controversial_domains.add(domain)
            ground_truth.instance_categories[domain] = category

        # Mainstream instances.
        for _ in range(n_total - n_controversial):
            domain = names.domain()
            self._add_pleroma_instance(
                registry, rng, domain, InstanceCategory.MAINSTREAM, elite=False
            )
            ground_truth.instance_categories[domain] = InstanceCategory.MAINSTREAM

        # Decide population sizes up-front so they are part of the ground truth.
        for instance in registry.pleroma_instances():
            ground_truth.users_per_instance[instance.domain] = self._instance_user_count(
                rng, instance.domain, ground_truth
            )

    def _add_pleroma_instance(
        self,
        registry: FediverseRegistry,
        rng: random.Random,
        domain: str,
        category: InstanceCategory,
        elite: bool,
    ) -> Instance:
        config = self.config
        version = self._pick_weighted(rng, _PLEROMA_VERSIONS)
        # The elite instances are the large, well-known servers of Table 1:
        # they were all crawlable in the paper, so they never draw an outage.
        availability = InstanceAvailability() if elite else self._pick_availability(rng)
        # Controversial instances keep their timelines open more often (they
        # advertise openness); mainstream instances lock them down more.
        unreachable_rate = config.timeline_unreachable_rate
        if category is not InstanceCategory.MAINSTREAM:
            unreachable_rate *= 0.9
        instance = registry.create_instance(
            domain,
            software=SoftwareKind.PLEROMA,
            version=version,
            description=f"A {category.value} community" if category else "",
            registrations_open=rng.random() < 0.7,
            availability=availability,
            expose_policies=rng.random() < config.policy_exposure_rate,
            expose_public_timeline=True if elite else rng.random() >= unreachable_rate,
            install_default_policies=False,
        )
        return instance

    def _controversial_category(self, rng: random.Random) -> InstanceCategory:
        """Pick the dominant category of a non-elite controversial instance."""
        if rng.random() >= self.config.controversial_harmful_category_share:
            return InstanceCategory.GENERAL
        roll = rng.random()
        cumulative = 0.0
        for category, share in _CONTROVERSIAL_CATEGORY_SPLIT:
            cumulative += share
            if roll < cumulative:
                return category
        return InstanceCategory.TOXIC

    def _pick_availability(self, rng: random.Random) -> InstanceAvailability:
        """Draw the crawlability of one Pleroma instance."""
        roll = rng.random()
        cumulative = 0.0
        for status, share in self.config.uncrawlable_status_shares.items():
            cumulative += share
            if roll < cumulative:
                return InstanceAvailability(status_code=status, reason="synthetic outage")
        return InstanceAvailability()

    def _instance_user_count(
        self, rng: random.Random, domain: str, ground_truth: GroundTruth
    ) -> int:
        config = self.config
        if domain in ground_truth.elite_domains:
            base = lognormal_count(rng, config.controversial_mean_users, sigma=0.5, minimum=5)
            return int(base * config.elite_user_multiplier)
        if domain in ground_truth.controversial_domains:
            if rng.random() < config.single_user_controversial_share:
                return 1
            return lognormal_count(rng, config.controversial_mean_users, sigma=0.8, minimum=2)
        return lognormal_count(rng, config.mainstream_mean_users, sigma=1.0, minimum=1)

    def _create_non_pleroma_instances(
        self,
        registry: FediverseRegistry,
        names: NameGenerator,
        rng: random.Random,
        ground_truth: GroundTruth,
    ) -> None:
        config = self.config
        n_total = config.n_non_pleroma_instances
        n_elite = min(len(PAPER_ELITE_NON_PLEROMA_INSTANCES), n_total)

        for index in range(n_elite):
            domain = names.reserve_domain(PAPER_ELITE_NON_PLEROMA_INSTANCES[index])
            category = _ELITE_NON_PLEROMA_CATEGORIES[index % len(_ELITE_NON_PLEROMA_CATEGORIES)]
            registry.create_instance(
                domain,
                software=SoftwareKind.MASTODON,
                version="3.3.0",
                expose_policies=False,
                install_default_policies=False,
            )
            ground_truth.elite_non_pleroma_domains.append(domain)
            ground_truth.blockable_non_pleroma_domains.add(domain)
            ground_truth.instance_categories[domain] = category

        for _ in range(n_total - n_elite):
            domain = names.domain()
            software = self._pick_weighted(rng, _NON_PLEROMA_SOFTWARE_MIX)
            registry.create_instance(
                domain,
                software=software,
                version="3.3.0" if software is SoftwareKind.MASTODON else "1.0.0",
                expose_policies=False,
                install_default_policies=False,
            )
            ground_truth.instance_categories[domain] = InstanceCategory.MAINSTREAM
            if rng.random() < config.non_pleroma_blockable_share:
                ground_truth.blockable_non_pleroma_domains.add(domain)
                ground_truth.instance_categories[domain] = self._controversial_category(rng)

    @staticmethod
    def _pick_weighted(rng: random.Random, table):
        """Pick one item from a (value, probability) table."""
        roll = rng.random()
        cumulative = 0.0
        for value, share in table:
            cumulative += share
            if roll < cumulative:
                return value
        return table[-1][0]

    # ------------------------------------------------------------------ #
    # Users and posts
    # ------------------------------------------------------------------ #
    def _populate_users_and_posts(
        self,
        registry: FediverseRegistry,
        rng: random.Random,
        text: TextGenerator,
        ground_truth: GroundTruth,
        stats: GenerationStats,
    ) -> None:
        config = self.config
        for instance in registry.pleroma_instances():
            category = ground_truth.category(instance.domain)
            controversial = ground_truth.is_controversial(instance.domain)
            bands = (
                config.controversial_score_band_shares
                if controversial
                else config.mainstream_score_band_shares
            )
            n_users = ground_truth.users_per_instance[instance.domain]
            posts_here = 0
            instance_has_offender = False
            for index in range(n_users):
                user = self._create_user(instance, rng)
                stats.users += 1
                band = self._pick_band(rng, bands)
                # Every multi-user controversial instance gets at least one
                # clear offender: the paper conjectures that a few posts from
                # a few users are what trigger the instance-level rejects.
                if (
                    controversial
                    and not instance_has_offender
                    and band is None
                    and n_users >= 2
                    and index == n_users - 1
                ):
                    band = 0.8
                if band is not None and band >= 0.7:
                    instance_has_offender = True
                attributes = self._pick_attributes(rng, band, category)
                ground_truth.user_attributes[user.handle] = attributes
                target_score = self._band_score(rng, band)
                if band is not None and band >= 0.8:
                    ground_truth.harmful_users[user.handle] = attributes
                posts_here += self._create_posts(
                    instance, user, rng, text, category, attributes, target_score, band
                )
            if config.reply_thread_share > 0.0 and config.reply_thread_max_depth > 0:
                posts_here += self._create_reply_threads(instance, rng, text)
            ground_truth.posts_per_instance[instance.domain] = posts_here
            stats.posts += posts_here

    def _create_user(self, instance: Instance, rng: random.Random):
        config = self.config
        username = f"user{len(instance.users) + 1}"
        created_at = rng.uniform(0.0, config.campaign_seconds * 0.8)
        return instance.register_user(
            username,
            created_at=created_at,
            bot=rng.random() < config.bot_user_share,
        )

    @staticmethod
    def _pick_band(rng: random.Random, bands: dict[float, float]) -> float | None:
        """Pick the score band of one user (``None`` means benign)."""
        roll = rng.random()
        cumulative = 0.0
        for band, share in sorted(bands.items(), reverse=True):
            cumulative += share
            if roll < cumulative:
                return band
        return None

    def _pick_attributes(
        self,
        rng: random.Random,
        band: float | None,
        category: InstanceCategory,
    ) -> tuple[str, ...]:
        """Pick the Perspective attributes a scored user expresses."""
        if band is None:
            return ()
        mix = self.config.harmful_attribute_mix
        primary = category.attribute
        attributes = set()
        for attribute, share in mix.items():
            if rng.random() < share:
                attributes.add(attribute)
        if primary is not None:
            attributes.add(primary)
        if not attributes:
            attributes.add(rng.choice(list(mix)))
        # A ~20-word post cannot carry three attributes at a 0.8+ density, so
        # cap the label set at two, always keeping the instance's primary and
        # preferring the more common attributes (toxicity first) for the
        # remaining slot.
        if len(attributes) > 2:
            secondary = sorted(
                (a for a in attributes if a != primary),
                key=lambda a: -mix.get(a, 0.0),
            )
            keep = {primary} if primary is not None else set()
            for attribute in secondary:
                if len(keep) >= 2:
                    break
                keep.add(attribute)
            attributes = keep
        return tuple(sorted(attributes))

    def _band_score(self, rng: random.Random, band: float | None) -> float:
        """Pick the target average score of a user in ``band``."""
        if band is None:
            return 0.0
        upper = min(0.97, band + 0.09)
        return rng.uniform(band, upper)

    def _create_posts(
        self,
        instance: Instance,
        user,
        rng: random.Random,
        text: TextGenerator,
        category: InstanceCategory,
        attributes: tuple[str, ...],
        target_score: float,
        band: float | None,
    ) -> int:
        config = self.config
        if rng.random() >= config.active_user_share:
            return 0
        mean_posts = config.mean_posts_per_user
        if band is not None and band >= 0.8:
            mean_posts *= config.harmful_post_multiplier
        n_posts = geometric_count(rng, mean_posts)

        media_rate = config.media_attachment_rate
        if category is InstanceCategory.SEXUALLY_EXPLICIT:
            media_rate = config.sexual_media_attachment_rate

        created = 0
        for _ in range(n_posts):
            length = max(6, int(rng.gauss(config.mean_post_length, 6)))
            if attributes:
                content = text.harmful_post(attributes, target_score, length=length)
            else:
                content = text.benign_post(length=length)
            attachments: tuple[MediaAttachment, ...] = ()
            if rng.random() < media_rate:
                attachments = (
                    MediaAttachment(
                        url=f"https://{instance.domain}/media/{rng.randrange(10**9)}.png",
                        media_type="image",
                    ),
                )
            visibility = Visibility.PUBLIC
            roll = rng.random()
            if roll > 0.95:
                visibility = Visibility.FOLLOWERS_ONLY
            elif roll > 0.90:
                visibility = Visibility.UNLISTED
            instance.publish(
                user.username,
                content,
                created_at=rng.uniform(user.created_at, config.campaign_seconds),
                visibility=visibility,
                attachments=attachments,
                sensitive=category is InstanceCategory.SEXUALLY_EXPLICIT and rng.random() < 0.4,
            )
            created += 1
        return created

    def _apply_ua_blocking(
        self,
        registry: FediverseRegistry,
        rng: random.Random,
        ground_truth: GroundTruth,
    ) -> None:
        """Mark a share of Pleroma instances as blocking the crawler's UA.

        Epicyon-style known-crawler blocking: the instance's API refuses
        requests whose ``User-Agent`` contains a blocked token with a 403,
        so coverage experiments can attribute the missing domains to UA
        blocking rather than outages.  Elite instances never block (they
        were all crawlable in the paper).
        """
        from repro.api.http import CRAWLER_UA_TOKEN

        for instance in registry.pleroma_instances():
            if instance.domain in ground_truth.elite_domains:
                continue
            if rng.random() >= self.config.ua_blocking_share:
                continue
            instance.blocked_user_agents = (CRAWLER_UA_TOKEN,)
            ground_truth.ua_blocking_domains.add(instance.domain)

    def _create_reply_threads(
        self, instance: Instance, rng: random.Random, text: TextGenerator
    ) -> int:
        """Grow reply threads under a share of the instance's public posts.

        Each reply is a real local post (it federates like any other post),
        threaded via ``in_reply_to`` and grouped under the seed post's URI
        as its conversation id.  Reply content starts with the accumulated
        participant mentions — the client convention the Hellthread policy
        keys on — so threads on large instances cross the mention floors at
        realistic depth while small instances stay under them.
        """
        config = self.config
        seeds = [
            post
            for post in instance.local_posts()
            if post.visibility is Visibility.PUBLIC
        ]
        usernames = sorted(instance.users)
        created = 0
        for seed_post in seeds:
            if rng.random() >= config.reply_thread_share:
                continue
            depth = rng.randint(1, config.reply_thread_max_depth)
            thread_id = seed_post.uri
            parent = seed_post
            participants: list[str] = [seed_post.author]
            for _ in range(depth):
                username = rng.choice(usernames)
                replier = instance.users[username]
                body = text.benign_post(length=max(4, int(rng.gauss(10.0, 3.0))))
                reply = instance.publish(
                    username,
                    reply_content(participants, body),
                    created_at=rng.uniform(parent.created_at, config.campaign_seconds),
                    in_reply_to=parent.uri,
                )
                reply.extra[CONVERSATION_FIELD] = thread_id
                created += 1
                if replier.handle not in participants:
                    participants.append(replier.handle)
                parent = reply
        return created

    # ------------------------------------------------------------------ #
    # Churn
    # ------------------------------------------------------------------ #
    def _apply_churn(
        self,
        registry: FediverseRegistry,
        rng: random.Random,
        ground_truth: GroundTruth,
    ) -> None:
        """Mark a share of Pleroma instances as going down mid-campaign.

        Elite instances never churn (they were all crawlable in the paper);
        affected instances keep answering until a random point inside the
        churn window, then fail with a 503 — so a measurement campaign sees
        them in early snapshot rounds and loses them later.
        """
        config = self.config
        window = config.churn_window_days * 24 * 3600.0
        for instance in registry.pleroma_instances():
            if instance.domain in ground_truth.elite_domains:
                continue
            if rng.random() >= config.instance_churn_rate:
                continue
            down_after = config.campaign_seconds + rng.random() * window
            availability = instance.availability
            instance.availability = InstanceAvailability(
                status_code=availability.status_code,
                reason=availability.reason,
                down_after=down_after,
            )
            ground_truth.churned_domains.add(instance.domain)

    # ------------------------------------------------------------------ #
    # Federation
    # ------------------------------------------------------------------ #
    def federation_batches(
        self, prepared: PreparedFediverse
    ) -> Iterator[FederationBatch]:
        """Emit the federation work as a lazy stream of per-target batches.

        The RNG draws, activity-creation order and peer-list side effects are
        identical to the seed's one-activity-at-a-time loop: batches simply
        group the (receiver, posts) inner loop, so consuming the stream in
        order reproduces the seed behaviour exactly.
        """
        config = self.config
        registry = prepared.registry
        rng = prepared.rng
        ground_truth = prepared.ground_truth
        pleroma = registry.pleroma_instances()
        if len(pleroma) < 2:
            return

        # Who moderates whom: origin domain -> instances that target it with
        # any SimplePolicy action, so deliveries actually exercise the
        # moderation pipelines.
        targeted_by: dict[str, list[Instance]] = {}
        for instance in pleroma:
            policy = instance.mrf.get_policy("SimplePolicy")
            if policy is None:
                continue
            # Sorted so the receiver choice is independent of set hash order.
            for target in sorted(policy.all_targets()):  # type: ignore[union-attr]
                targeted_by.setdefault(target, []).append(instance)

        weights = [
            max(1, ground_truth.users_per_instance.get(candidate.domain, 1))
            for candidate in pleroma
        ]
        non_pleroma_domains = [inst.domain for inst in registry.non_pleroma_instances()]

        for origin in pleroma:
            local_posts = origin.local_posts()
            if not local_posts:
                continue
            receivers: list[Instance] = []
            receivers.extend(targeted_by.get(origin.domain, [])[:3])
            fanout_size = config.federation_fanout
            # Hot origins (the ``burst`` scenario) fan out much more widely;
            # the share defaults to 0 so no extra randomness is drawn and
            # existing scenarios stay bit-identical.
            if config.federation_hot_origin_share > 0.0:
                if rng.random() < config.federation_hot_origin_share:
                    fanout_size = max(
                        1,
                        int(round(fanout_size * config.federation_hot_fanout_multiplier)),
                    )
            fanout = rng.choices(pleroma, weights=weights, k=fanout_size)
            receivers.extend(fanout)

            sample_size = min(config.federation_posts_per_peer, len(local_posts))
            sample = rng.sample(local_posts, sample_size)

            # Boost / favourite participation (the ``viral`` scenario): a
            # participating origin re-fans the same hot-post sample to every
            # peer it federates with, concentrating engagement on the pool.
            # The shares default to 0 so no extra randomness is drawn and
            # existing scenarios stay bit-identical.
            hot_uris = ground_truth.hot_post_uris
            booster: Actor | None = None
            boosts: list[str] = []
            if hot_uris and config.federation_announce_share > 0.0:
                if rng.random() < config.federation_announce_share:
                    booster = Actor.from_user(
                        origin.get_user(rng.choice(sorted(origin.users)))
                    )
                    boosts = rng.sample(
                        hot_uris,
                        min(config.federation_announces_per_peer, len(hot_uris)),
                    )
            liker: Actor | None = None
            likes: list[str] = []
            if hot_uris and config.federation_like_share > 0.0:
                if rng.random() < config.federation_like_share:
                    liker = Actor.from_user(
                        origin.get_user(rng.choice(sorted(origin.users)))
                    )
                    likes = rng.sample(
                        hot_uris,
                        min(config.federation_likes_per_peer, len(hot_uris)),
                    )
            now = registry.clock.now()

            seen_domains: set[str] = set()
            for receiver in receivers:
                if receiver.domain == origin.domain or receiver.domain in seen_domains:
                    continue
                seen_domains.add(receiver.domain)
                activities = tuple(
                    create_activity(
                        post,
                        actor=Actor.from_user(
                            origin.get_user(post.author.split("@", 1)[0])
                        ),
                    )
                    for post in sample
                )
                yield FederationBatch(
                    origin_domain=origin.domain,
                    target_domain=receiver.domain,
                    activities=activities,
                )
                # Boosts and favourites ship as their own type-homogeneous
                # batches so the delivery engine can run the per-type batch
                # programs; yielding them after the Create batch keeps the
                # per-receiver moderation-event order deterministic.
                if booster is not None:
                    yield FederationBatch(
                        origin_domain=origin.domain,
                        target_domain=receiver.domain,
                        activities=tuple(
                            announce_activity(uri, booster, now) for uri in boosts
                        ),
                    )
                if liker is not None:
                    yield FederationBatch(
                        origin_domain=origin.domain,
                        target_domain=receiver.domain,
                        activities=tuple(
                            like_activity(uri, liker, now) for uri in likes
                        ),
                    )

            # Peers lists are much wider than actual deliveries: instances
            # remember every domain they ever saw.
            if non_pleroma_domains:
                for domain in rng.sample(
                    non_pleroma_domains, min(10, len(non_pleroma_domains))
                ):
                    origin.add_peer(domain)
