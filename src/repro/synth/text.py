"""Synthetic post text with controlled harmful-term density.

The generator and the Perspective substitute share a contract: the scorer
maps the weighted density of lexicon terms to a score, and this module's
:class:`TextGenerator` plants exactly the density needed for a target score.
That is what lets the collateral-damage analysis recover the planted
harmful-user ground truth the same way the paper recovered it with the real
Perspective API.
"""

from __future__ import annotations

import random

from repro.perspective.attributes import Attribute
from repro.perspective.lexicon import Lexicon, default_lexicon
from repro.perspective.scorer import density_for_score

#: Benign vocabulary used for filler text.  Deliberately disjoint from the
#: harmful lexicons.
_BENIGN_WORDS = (
    "coffee", "garden", "bicycle", "weather", "sunset", "music", "album",
    "recipe", "keyboard", "terminal", "kernel", "compile", "release", "patch",
    "birds", "hiking", "train", "photo", "camera", "paint", "sketch",
    "novel", "poem", "library", "server", "instance", "federation", "post",
    "timeline", "friday", "weekend", "morning", "evening", "dinner", "bread",
    "cheese", "tomato", "garlic", "soup", "tea", "walk", "river", "mountain",
    "cloud", "rain", "snow", "spring", "autumn", "project", "update",
    "today", "tomorrow", "yesterday", "thanks", "great", "lovely", "happy",
    "excited", "curious", "reading", "writing", "playing", "building",
)

_HASHTAG_POOL = (
    "introductions", "photography", "caturday", "fediverse", "floss",
    "gardening", "music", "art", "linux", "selfhosting", "cooking", "books",
)


class TextGenerator:
    """Generate benign and harmful post bodies with a controlled score."""

    def __init__(self, rng: random.Random, lexicon: Lexicon | None = None) -> None:
        self._rng = rng
        self.lexicon = lexicon or default_lexicon()
        # Pre-compute, per attribute, the terms usable for planting together
        # with their weights (descending weight so strong terms come first).
        self._planting_terms: dict[Attribute, list[tuple[str, float]]] = {}
        for attribute in Attribute:
            terms = sorted(
                self.lexicon.attribute_terms(attribute).items(),
                key=lambda item: (-item[1], item[0]),
            )
            self._planting_terms[attribute] = [
                (term, weight) for term, weight in terms if weight >= 0.7
            ]

    # ------------------------------------------------------------------ #
    # Benign text
    # ------------------------------------------------------------------ #
    def benign_words(self, count: int) -> list[str]:
        """Return ``count`` benign filler words."""
        return [self._rng.choice(_BENIGN_WORDS) for _ in range(max(1, count))]

    def benign_post(self, length: int = 20, with_hashtag_probability: float = 0.15) -> str:
        """Return a benign post body of roughly ``length`` words."""
        words = self.benign_words(length)
        if self._rng.random() < with_hashtag_probability:
            words.append(f"#{self._rng.choice(_HASHTAG_POOL)}")
        return " ".join(words)

    # ------------------------------------------------------------------ #
    # Harmful text
    # ------------------------------------------------------------------ #
    def harmful_post(
        self,
        attributes: tuple[str, ...],
        target_score: float,
        length: int = 20,
    ) -> str:
        """Return a post whose score reaches ``target_score`` on ``attributes``.

        The post mixes benign filler with lexicon terms of each requested
        attribute at the density required by the scorer's inverse mapping.
        """
        if not attributes:
            return self.benign_post(length)
        length = max(6, length)
        words = self.benign_words(length)
        # Attributes are planted into disjoint regions of the word list so a
        # later attribute never erodes the density of an earlier one.
        next_free = 0
        for attribute_name in attributes:
            attribute = Attribute(attribute_name)
            next_free = self._plant(words, attribute, target_score, start=next_free)
        self._rng.shuffle(words)
        return " ".join(words)

    def _plant(
        self, words: list[str], attribute: Attribute, target_score: float, start: int = 0
    ) -> int:
        """Replace benign words from ``start`` until the target density is reached.

        Returns the index after the last planted word, so callers can plant
        further attributes without overwriting this one.
        """
        candidates = self._planting_terms[attribute]
        if not candidates:
            return start
        needed_weight = density_for_score(target_score) * len(words)
        planted_weight = 0.0
        index = start
        pick = 0
        while index < len(words):
            term, weight = candidates[pick % len(candidates)]
            remaining = needed_weight - planted_weight
            if remaining <= 0:
                break
            if remaining < weight:
                # Probabilistic rounding keeps the *expected* planted weight
                # equal to the target, so user averages are unbiased even
                # though individual posts overshoot or undershoot slightly.
                if self._rng.random() >= remaining / weight:
                    break
            words[index] = term
            planted_weight += weight
            index += 1
            pick += 1
        return index

    # ------------------------------------------------------------------ #
    # Special-purpose text
    # ------------------------------------------------------------------ #
    def spam_post(self, length: int = 12) -> str:
        """Return a link-spam post (exercises AntiLinkSpamPolicy)."""
        words = self.benign_words(length)
        words.append(f"https://spam-{self._rng.randrange(10_000)}.example/offer")
        return " ".join(words)

    def hellthread_post(self, mention_count: int = 15, length: int = 10) -> str:
        """Return a post mentioning ``mention_count`` users (a hellthread)."""
        words = self.benign_words(length)
        for index in range(mention_count):
            words.append(f"@victim{index}@mentions.example")
        return " ".join(words)
