"""Sampling helpers for heavy-tailed population sizes.

The fediverse is strongly heavy-tailed: a small number of instances hold
most users and posts (the paper: 15.5% of Pleroma instances hold 86.2% of
users).  These helpers wrap the log-normal / geometric draws the generator
uses so their parametrisation (mean-preserving) is in one place and can be
tested in isolation.
"""

from __future__ import annotations

import math
import random


def lognormal_count(rng: random.Random, mean: float, sigma: float = 1.0, minimum: int = 1) -> int:
    """Draw an integer from a log-normal distribution with the given mean.

    The underlying normal's ``mu`` is chosen so the distribution's mean is
    ``mean`` regardless of ``sigma`` (mean-preserving heavy tail).
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return max(minimum, int(round(mean)))
    mu = math.log(mean) - (sigma ** 2) / 2
    value = rng.lognormvariate(mu, sigma)
    return max(minimum, int(round(value)))


def geometric_count(rng: random.Random, mean: float, minimum: int = 1) -> int:
    """Draw an integer from a geometric distribution with the given mean."""
    if mean < 1:
        raise ValueError("mean must be at least 1")
    # A geometric distribution on {1, 2, ...} with success probability p has
    # mean 1/p.
    p = 1.0 / mean
    value = 1
    while rng.random() > p:
        value += 1
        if value > 100 * mean:  # hard cap against pathological draws
            break
    return max(minimum, value)


def bounded_zipf_weights(count: int, exponent: float = 1.1) -> list[float]:
    """Return Zipf-like weights ``1/rank**exponent`` for ``count`` items."""
    if count <= 0:
        return []
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    return [1.0 / ((rank + 1) ** exponent) for rank in range(count)]


def weighted_sample_without_replacement(
    rng: random.Random,
    items: list[str],
    weights: list[float],
    k: int,
) -> list[str]:
    """Sample up to ``k`` distinct items with probability proportional to weight.

    Uses the exponential-sort trick (Efraimidis–Spirakis), which is exact and
    avoids repeatedly renormalising after each draw.
    """
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if k <= 0 or not items:
        return []
    keyed = []
    for item, weight in zip(items, weights):
        if weight <= 0:
            continue
        keyed.append((rng.expovariate(1.0) / weight, item))
    keyed.sort(key=lambda pair: pair[0])
    return [item for _, item in keyed[: min(k, len(keyed))]]


def split_count(total: int, share: float) -> tuple[int, int]:
    """Split ``total`` into ``(matching, remaining)`` by ``share`` (rounded)."""
    if not 0 <= share <= 1:
        raise ValueError("share must be within [0, 1]")
    matching = int(round(total * share))
    matching = min(total, matching)
    return matching, total - matching
