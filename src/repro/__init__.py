"""Reproduction of "Exploring Content Moderation in the Decentralised Web:
The Pleroma Case" (ACM CoNEXT 2021).

The package is organised in layers:

* substrates — :mod:`repro.fediverse` (instances, users, posts),
  :mod:`repro.activitypub` (federation delivery), :mod:`repro.mrf`
  (Pleroma's moderation policies), :mod:`repro.api` (the public HTTP API the
  crawler consumes) and :mod:`repro.perspective` (an offline Perspective-API
  substitute);
* workload — :mod:`repro.synth`, a synthetic fediverse calibrated to the
  paper's population statistics;
* measurement — :mod:`repro.crawler` (the Section 3 campaign) and
  :mod:`repro.datasets` (the crawled dataset);
* analysis — :mod:`repro.core` (policy prevalence, rejects, collateral
  damage, strawman solutions); and
* experiments — :mod:`repro.experiments`, one module per paper
  figure/table, with the ``pleroma-repro`` CLI.

Quickstart::

    from repro import ReproPipeline, run_all

    pipeline = ReproPipeline(scenario="small")
    for result in run_all(pipeline):
        print(result.to_text())
"""

from repro.experiments.pipeline import ReproPipeline, get_pipeline
from repro.experiments.registry import run_all, run_experiment
from repro.synth.config import SynthConfig
from repro.synth.generator import FediverseGenerator, GeneratedFediverse
from repro.synth.scenario import build_scenario, scenario_config
from repro.crawler.campaign import CampaignConfig, MeasurementCampaign
from repro.datasets.store import Dataset

__version__ = "1.0.0"

__all__ = [
    "ReproPipeline",
    "get_pipeline",
    "run_all",
    "run_experiment",
    "SynthConfig",
    "FediverseGenerator",
    "GeneratedFediverse",
    "build_scenario",
    "scenario_config",
    "CampaignConfig",
    "MeasurementCampaign",
    "Dataset",
    "__version__",
]
