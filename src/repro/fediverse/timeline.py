"""Timelines maintained by an instance.

The paper distinguishes three timelines (Section 3):

* the *home* timeline of a user (posts from accounts they follow),
* the *public* timeline of an instance (all posts generated locally), and
* the *whole known network* timeline (the union of remote posts retrieved
  by all local users — a consequence of federation).

The public and whole-known-network timelines belong to the instance and are
the ones exposed through the public Timeline API that the paper crawls.
"""

from __future__ import annotations

from collections.abc import Iterator


class Timeline:
    """An ordered collection of post ids (newest last)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._post_ids: list[str] = []
        self._seen: set[str] = set()

    def add(self, post_id: str) -> bool:
        """Append ``post_id`` if not already present; return ``True`` if added."""
        if post_id in self._seen:
            return False
        self._post_ids.append(post_id)
        self._seen.add(post_id)
        return True

    def remove(self, post_id: str) -> bool:
        """Remove ``post_id`` from the timeline; return ``True`` if removed."""
        if post_id not in self._seen:
            return False
        self._seen.remove(post_id)
        self._post_ids.remove(post_id)
        return True

    def __contains__(self, post_id: str) -> bool:
        return post_id in self._seen

    def __len__(self) -> int:
        return len(self._post_ids)

    def __iter__(self) -> Iterator[str]:
        return iter(self._post_ids)

    def latest(self, limit: int = 20, max_id: str | None = None) -> list[str]:
        """Return up to ``limit`` post ids, newest first.

        When ``max_id`` is given, only posts strictly older than it are
        returned — this mirrors the pagination scheme of the Mastodon API
        that the crawler uses.
        """
        ids = self._post_ids
        if max_id is not None:
            try:
                cutoff = ids.index(max_id)
            except ValueError:
                cutoff = len(ids)
            ids = ids[:cutoff]
        return list(reversed(ids[-limit:])) if limit else list(reversed(ids))

    def clear(self) -> None:
        """Remove all posts from the timeline."""
        self._post_ids.clear()
        self._seen.clear()


class InstanceTimelines:
    """The instance-level timelines (public/local and whole-known-network)."""

    def __init__(self) -> None:
        self.public = Timeline("public")
        self.whole_known_network = Timeline("whole_known_network")

    def add_local(self, post_id: str) -> None:
        """Record a locally published post on both instance timelines."""
        self.public.add(post_id)
        self.whole_known_network.add(post_id)

    def add_remote(self, post_id: str) -> None:
        """Record a federated (remote) post on the whole-known-network timeline."""
        self.whole_known_network.add(post_id)

    def remove_everywhere(self, post_id: str) -> None:
        """Remove a post from every instance timeline."""
        self.public.remove(post_id)
        self.whole_known_network.remove(post_id)
