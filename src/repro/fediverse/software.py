"""Software kinds running fediverse instances.

The paper studies Pleroma instances but collects the set of *all* instances
they federate with, most of which run Mastodon.  The software kind matters
because only Pleroma exposes its moderation (MRF) configuration through the
public instance API.
"""

from __future__ import annotations

from enum import Enum


class SoftwareKind(str, Enum):
    """The server software an instance runs."""

    PLEROMA = "pleroma"
    MASTODON = "mastodon"
    MISSKEY = "misskey"
    PEERTUBE = "peertube"
    HUBZILLA = "hubzilla"
    WRITEFREELY = "writefreely"
    OTHER = "other"

    @property
    def is_pleroma(self) -> bool:
        """Return ``True`` for Pleroma instances."""
        return self is SoftwareKind.PLEROMA

    @property
    def exposes_mrf(self) -> bool:
        """Return ``True`` when the software exposes MRF policies publicly."""
        return self is SoftwareKind.PLEROMA

    @classmethod
    def from_string(cls, value: str) -> "SoftwareKind":
        """Parse a software name leniently, defaulting to ``OTHER``."""
        try:
            return cls(value.strip().lower())
        except ValueError:
            return cls.OTHER


#: Pleroma versions that enable ObjectAgePolicy and NoOpPolicy by default.
DEFAULT_POLICY_MIN_VERSION = (2, 1, 0)


def parse_version(version: str) -> tuple[int, ...]:
    """Parse a dotted version string into a comparable tuple.

    Non-numeric suffixes (``2.2.1-develop``) are ignored.
    """
    parts: list[int] = []
    for chunk in version.split("."):
        digits = ""
        for char in chunk:
            if char.isdigit():
                digits += char
            else:
                break
        if not digits:
            break
        parts.append(int(digits))
    return tuple(parts) if parts else (0,)


def version_has_default_policies(version: str) -> bool:
    """Return ``True`` when a Pleroma version ships default-enabled policies."""
    return parse_version(version) >= DEFAULT_POLICY_MIN_VERSION
