"""Fediverse substrate: instances, users, posts, timelines and the registry.

This package models the *data plane* of the decentralised web as studied in
the paper: a set of independently operated instances (Pleroma, Mastodon and
other software), the users registered on them, the posts they publish, and
the per-instance timelines (public/local and "whole known network").

The federation *control plane* (ActivityPub-like delivery) lives in
:mod:`repro.activitypub`, and the moderation machinery (Pleroma's MRF
policies) lives in :mod:`repro.mrf`.
"""

from repro.fediverse.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimulationClock
from repro.fediverse.errors import (
    FederationError,
    FediverseError,
    PostNotFoundError,
    UnknownInstanceError,
    UnknownUserError,
)
from repro.fediverse.identifiers import (
    make_handle,
    make_post_uri,
    normalise_domain,
    parse_handle,
)
from repro.fediverse.instance import Instance, InstanceAvailability
from repro.fediverse.post import MediaAttachment, Post, Visibility
from repro.fediverse.registry import FediverseRegistry
from repro.fediverse.software import SoftwareKind
from repro.fediverse.timeline import InstanceTimelines, Timeline
from repro.fediverse.user import User

__all__ = [
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SimulationClock",
    "FediverseError",
    "FederationError",
    "PostNotFoundError",
    "UnknownInstanceError",
    "UnknownUserError",
    "make_handle",
    "make_post_uri",
    "normalise_domain",
    "parse_handle",
    "Instance",
    "InstanceAvailability",
    "MediaAttachment",
    "Post",
    "Visibility",
    "FediverseRegistry",
    "SoftwareKind",
    "InstanceTimelines",
    "Timeline",
    "User",
]
