"""Posts (statuses/notes) and media attachments."""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

from repro.fediverse.identifiers import make_post_uri, normalise_domain

_HASHTAG_RE = re.compile(r"(?<!\w)#([A-Za-z0-9_]+)")
_MENTION_RE = re.compile(r"(?<!\w)@([A-Za-z0-9_.\-]+@[A-Za-z0-9_.\-]+)")
_URL_RE = re.compile(r"https?://[^\s]+")


def mentions_in(content: str) -> list[str]:
    """Return the handles mentioned in ``content`` (list form, for serialisers)."""
    return _MENTION_RE.findall(content)


class Visibility(str, Enum):
    """Post visibility levels used across the fediverse."""

    PUBLIC = "public"
    UNLISTED = "unlisted"
    FOLLOWERS_ONLY = "private"
    DIRECT = "direct"

    @property
    def is_public(self) -> bool:
        """Return ``True`` for posts shown on public timelines."""
        return self is Visibility.PUBLIC


@dataclass(frozen=True)
class MediaAttachment:
    """A media file attached to a post."""

    url: str
    media_type: str = "image"
    description: str = ""
    sensitive: bool = False


@dataclass
class Post:
    """A single post (a "status" in Mastodon terms, a "note" in ActivityPub).

    ``domain`` is always the *origin* instance of the post; when a post is
    federated to another instance, the receiving instance stores a copy but
    the origin domain never changes.
    """

    post_id: str
    author: str  # handle, user@domain
    domain: str  # origin domain
    content: str
    created_at: float
    visibility: Visibility = Visibility.PUBLIC
    attachments: tuple[MediaAttachment, ...] = ()
    subject: str | None = None
    in_reply_to: str | None = None
    sensitive: bool = False
    is_bot: bool = False
    language: str = "en"
    tags: tuple[str, ...] = ()
    expires_at: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.domain = normalise_domain(self.domain)

    @property
    def uri(self) -> str:
        """Return the canonical object URI of the post."""
        return make_post_uri(self.domain, self.post_id)

    @property
    def mentions(self) -> tuple[str, ...]:
        """Return the handles mentioned in the post content."""
        return tuple(mentions_in(self.content))

    @property
    def mention_count(self) -> int:
        """Return the number of distinct users mentioned in the content."""
        return len(set(self.mentions))

    @property
    def hashtags(self) -> tuple[str, ...]:
        """Return hashtags used in the content, lowercased."""
        return tuple(tag.lower() for tag in _HASHTAG_RE.findall(self.content))

    @property
    def links(self) -> tuple[str, ...]:
        """Return URLs embedded in the post content."""
        return tuple(_URL_RE.findall(self.content))

    @property
    def has_media(self) -> bool:
        """Return ``True`` when the post carries at least one attachment."""
        return len(self.attachments) > 0

    @property
    def is_public(self) -> bool:
        """Return ``True`` when the post is publicly visible."""
        return self.visibility.is_public

    def age(self, now: float) -> float:
        """Return the post age in seconds at time ``now``."""
        return max(0.0, now - self.created_at)

    def with_changes(self, **changes: Any) -> "Post":
        """Return a shallow copy of the post with the given fields replaced."""
        copy = replace(self, **changes)
        copy.extra = dict(self.extra)
        copy.extra.update(changes.get("extra", {}))
        return copy

    def to_dict(self) -> dict[str, Any]:
        """Serialise the post to a plain dictionary (for the API layer)."""
        return {
            "id": self.post_id,
            "uri": self.uri,
            "account": self.author,
            "content": self.content,
            "created_at": self.created_at,
            "visibility": self.visibility.value,
            "sensitive": self.sensitive,
            "spoiler_text": self.subject or "",
            "in_reply_to_id": self.in_reply_to,
            "language": self.language,
            "tags": list(self.tags),
            "media_attachments": [
                {
                    "url": att.url,
                    "type": att.media_type,
                    "description": att.description,
                }
                for att in self.attachments
            ],
            "mentions": list(self.mentions),
            "bot": self.is_bot,
        }
