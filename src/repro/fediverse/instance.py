"""A single fediverse instance (server)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.fediverse.errors import PostNotFoundError, UnknownUserError
from repro.fediverse.identifiers import make_handle, normalise_domain
from repro.fediverse.post import MediaAttachment, Post, Visibility
from repro.fediverse.software import SoftwareKind, version_has_default_policies
from repro.fediverse.timeline import InstanceTimelines
from repro.fediverse.user import User

if TYPE_CHECKING:  # pragma: no cover - import only for type checking
    from repro.mrf.pipeline import MRFPipeline


@dataclass(frozen=True)
class InstanceAvailability:
    """How the instance responds to crawler requests.

    The paper reports that 236 of the 1,534 Pleroma instances could not be
    crawled, broken down by HTTP status (404, 403, 502, 503, 410).  An
    availability of status 200 means the instance answers normally.

    ``down_after`` models churn: the instance answers with ``status_code``
    until that simulation time, then fails with ``down_status_code`` — so a
    measurement campaign can lose instances mid-crawl (the ``churn``
    scenario).  ``None`` (the default) keeps availability constant.
    """

    status_code: int = 200
    reason: str = ""
    down_after: float | None = None
    down_status_code: int = 503
    down_reason: str = "instance went offline mid-campaign"

    def status_at(self, now: float) -> int:
        """Return the HTTP status the instance answers with at ``now``."""
        if self.down_after is not None and now >= self.down_after:
            return self.down_status_code
        return self.status_code

    def reason_at(self, now: float) -> str:
        """Return the failure reason in effect at ``now``."""
        if self.down_after is not None and now >= self.down_after:
            return self.down_reason
        return self.reason

    def ok_at(self, now: float) -> bool:
        """Return ``True`` when the instance answers API requests at ``now``."""
        return self.status_at(now) == 200

    @property
    def ok(self) -> bool:
        """Return ``True`` when the instance answers API requests (ignoring churn)."""
        return self.status_code == 200

    @property
    def timeline_reachable(self) -> bool:
        """Return ``True`` when the public timeline can be fetched."""
        return self.ok


class Instance:
    """A fediverse instance: a server hosting users, posts and timelines.

    Pleroma instances additionally run an MRF (Message Rewrite Facility)
    pipeline which filters or rewrites incoming federated activities; this is
    the moderation machinery the paper studies.
    """

    def __init__(
        self,
        domain: str,
        software: SoftwareKind = SoftwareKind.PLEROMA,
        version: str = "2.2.2",
        title: str = "",
        description: str = "",
        registrations_open: bool = True,
        created_at: float = 0.0,
        availability: InstanceAvailability | None = None,
        expose_policies: bool = True,
        expose_public_timeline: bool = True,
        expose_nodeinfo: bool = True,
        install_default_policies: bool = True,
        blocked_user_agents: tuple[str, ...] = (),
    ) -> None:
        self.domain = normalise_domain(domain)
        self.software = software
        self.version = version
        self.title = title or self.domain
        self.description = description
        self.registrations_open = registrations_open
        self.created_at = created_at
        self.availability = availability or InstanceAvailability()
        self.expose_policies = expose_policies
        # The paper finds the public timeline of 38.7% of crawlable instances
        # unreachable; this flag models instances that serve metadata but
        # refuse timeline requests.
        self.expose_public_timeline = expose_public_timeline
        # Some instances answer the Mastodon API but never publish nodeinfo;
        # crawlers then cannot classify their software.
        self.expose_nodeinfo = expose_nodeinfo
        # Epicyon-style known-crawler blocking: API requests whose
        # User-Agent contains any of these tokens (case-insensitive) are
        # refused with a 403.
        self.blocked_user_agents = blocked_user_agents

        self.users: dict[str, User] = {}
        self.posts: dict[str, Post] = {}
        self.remote_posts: dict[str, Post] = {}
        # Engagement received through federation: object URI -> count of
        # accepted Announce (boosts) / Like (favourites) deliveries.
        self.boosts: dict[str, int] = {}
        self.favourites: dict[str, int] = {}
        self.peers: set[str] = set()
        self.timelines = InstanceTimelines()
        self._post_counter = itertools.count(1)

        # Imported lazily to keep the fediverse package importable without
        # pulling in the moderation machinery at module-load time.
        from repro.mrf.pipeline import MRFPipeline

        self.mrf: MRFPipeline = MRFPipeline(local_domain=self.domain)
        if (
            install_default_policies
            and software.is_pleroma
            and version_has_default_policies(version)
        ):
            from repro.mrf.registry import default_policies

            for policy in default_policies():
                self.mrf.add_policy(policy)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def is_pleroma(self) -> bool:
        """Return ``True`` when the instance runs Pleroma."""
        return self.software.is_pleroma

    @property
    def user_count(self) -> int:
        """Return the number of registered (local) users."""
        return len(self.users)

    @property
    def local_post_count(self) -> int:
        """Return the number of posts published locally."""
        return len(self.posts)

    @property
    def statuses_count(self) -> int:
        """Return the status count reported by the instance API.

        Like real instances, this counts local posts plus federated posts
        known to the instance.
        """
        return len(self.posts) + len(self.remote_posts)

    @property
    def peer_count(self) -> int:
        """Return the number of instances this one has ever federated with."""
        return len(self.peers)

    @property
    def enabled_policy_names(self) -> list[str]:
        """Return the names of MRF policies enabled on this instance."""
        return self.mrf.policy_names

    # ------------------------------------------------------------------ #
    # Users
    # ------------------------------------------------------------------ #
    def register_user(
        self,
        username: str,
        created_at: float | None = None,
        bot: bool = False,
        **kwargs: Any,
    ) -> User:
        """Register a new local account and return it."""
        if username in self.users:
            raise ValueError(f"user already exists: {username}@{self.domain}")
        user = User(
            username=username,
            domain=self.domain,
            created_at=self.created_at if created_at is None else created_at,
            bot=bot,
            **kwargs,
        )
        self.users[username] = user
        return user

    def get_user(self, username: str) -> User:
        """Return a local user by username, raising if unknown."""
        try:
            return self.users[username]
        except KeyError:
            raise UnknownUserError(make_handle(username, self.domain)) from None

    def has_user(self, username: str) -> bool:
        """Return ``True`` when ``username`` is registered locally."""
        return username in self.users

    # ------------------------------------------------------------------ #
    # Posts
    # ------------------------------------------------------------------ #
    def publish(
        self,
        username: str,
        content: str,
        created_at: float | None = None,
        visibility: Visibility = Visibility.PUBLIC,
        attachments: tuple[MediaAttachment, ...] = (),
        subject: str | None = None,
        in_reply_to: str | None = None,
        sensitive: bool = False,
        tags: tuple[str, ...] = (),
    ) -> Post:
        """Publish a new local post by ``username`` and return it."""
        user = self.get_user(username)
        post_id = f"{self.domain}-{next(self._post_counter)}"
        post = Post(
            post_id=post_id,
            author=user.handle,
            domain=self.domain,
            content=content,
            created_at=self.created_at if created_at is None else created_at,
            visibility=visibility,
            attachments=attachments,
            subject=subject,
            in_reply_to=in_reply_to,
            sensitive=sensitive,
            is_bot=user.bot,
            tags=tags,
        )
        self.posts[post_id] = post
        user.post_ids.append(post_id)
        if post.is_public:
            self.timelines.add_local(post_id)
        return post

    def receive_remote_post(self, post: Post) -> None:
        """Store a federated post accepted by the MRF pipeline."""
        if post.domain == self.domain:
            raise ValueError("receive_remote_post called with a local post")
        post_id = post.post_id
        self.remote_posts[post_id] = post
        if post.visibility is Visibility.PUBLIC and not post.extra.get(
            "federated_timeline_removal", False
        ):
            self.timelines.whole_known_network.add(post_id)

    def receive_announce(self, object_uri: str) -> None:
        """Count a boost (``Announce``) of ``object_uri`` accepted by the MRF."""
        self.boosts[object_uri] = self.boosts.get(object_uri, 0) + 1

    def receive_like(self, object_uri: str) -> None:
        """Count a favourite (``Like``) of ``object_uri`` accepted by the MRF."""
        self.favourites[object_uri] = self.favourites.get(object_uri, 0) + 1

    def delete_post(self, post_id: str) -> None:
        """Delete a local or remote post and drop it from timelines."""
        if post_id in self.posts:
            post = self.posts.pop(post_id)
            username = post.author.split("@", 1)[0]
            if username in self.users and post_id in self.users[username].post_ids:
                self.users[username].post_ids.remove(post_id)
        elif post_id in self.remote_posts:
            del self.remote_posts[post_id]
        else:
            raise PostNotFoundError(post_id)
        self.timelines.remove_everywhere(post_id)

    def get_post(self, post_id: str) -> Post:
        """Return a post known to this instance (local or remote)."""
        if post_id in self.posts:
            return self.posts[post_id]
        if post_id in self.remote_posts:
            return self.remote_posts[post_id]
        raise PostNotFoundError(post_id)

    def local_posts(self) -> list[Post]:
        """Return all local posts."""
        return list(self.posts.values())

    def all_known_posts(self) -> list[Post]:
        """Return all posts known to the instance (local and federated)."""
        return list(self.posts.values()) + list(self.remote_posts.values())

    # ------------------------------------------------------------------ #
    # Federation
    # ------------------------------------------------------------------ #
    def add_peer(self, domain: str) -> None:
        """Record that this instance has federated with ``domain``."""
        domain = normalise_domain(domain)
        if domain != self.domain:
            self.peers.add(domain)

    # ------------------------------------------------------------------ #
    # API serialisation
    # ------------------------------------------------------------------ #
    def describe_mrf(self) -> dict[str, Any]:
        """Return the MRF configuration as exposed by the instance API.

        Mirrors the ``pleroma.metadata.federation`` block of the Pleroma
        instance API, which is what makes this measurement study possible.
        """
        if not self.expose_policies:
            return {"exposable": False}
        return {
            "exposable": True,
            "enabled": True,
            "mrf_policies": self.mrf.policy_names,
            "mrf_simple": self.mrf.simple_policy_config(),
            "mrf_object_age": self.mrf.object_age_config(),
            "quarantined_instances": [],
        }

    def to_api_dict(self) -> dict[str, Any]:
        """Serialise the instance metadata as returned by ``/api/v1/instance``."""
        payload: dict[str, Any] = {
            "uri": self.domain,
            "title": self.title,
            "description": self.description,
            "version": self.version_string(),
            "registrations": self.registrations_open,
            "stats": {
                "user_count": self.user_count,
                "status_count": self.statuses_count,
                "domain_count": self.peer_count,
            },
        }
        if self.is_pleroma:
            payload["pleroma"] = {
                "metadata": {
                    "features": ["pleroma_api", "mastodon_api"],
                    "federation": self.describe_mrf(),
                }
            }
        return payload

    def metadata_fingerprint(self) -> tuple:
        """Return a cheap fingerprint of everything :meth:`to_api_dict` reads.

        The API server's batch engine serves a cached metadata payload as
        long as this fingerprint is unchanged, so it covers every mutable
        input of the payload: the descriptive fields, the usage counters and
        the MRF configuration (via the pipeline's own fingerprint).
        """
        return (
            self.title,
            self.description,
            self.version,
            self.registrations_open,
            self.expose_policies,
            len(self.users),
            len(self.posts),
            len(self.remote_posts),
            len(self.peers),
            self.mrf.config_fingerprint(),
        )

    def version_string(self) -> str:
        """Return the version string reported through the API."""
        if self.is_pleroma:
            return f"2.7.2 (compatible; Pleroma {self.version})"
        return self.version

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Instance({self.domain!r}, software={self.software.value}, "
            f"users={self.user_count}, posts={self.local_post_count})"
        )
