"""Exception hierarchy for the fediverse substrate."""

from __future__ import annotations


class FediverseError(Exception):
    """Base class for all errors raised by the fediverse substrate."""


class UnknownInstanceError(FediverseError):
    """Raised when an operation references a domain that is not registered."""

    def __init__(self, domain: str) -> None:
        super().__init__(f"unknown instance: {domain}")
        self.domain = domain


class UnknownUserError(FediverseError):
    """Raised when an operation references a user that does not exist."""

    def __init__(self, handle: str) -> None:
        super().__init__(f"unknown user: {handle}")
        self.handle = handle


class PostNotFoundError(FediverseError):
    """Raised when a post id cannot be resolved on an instance."""

    def __init__(self, post_id: str) -> None:
        super().__init__(f"post not found: {post_id}")
        self.post_id = post_id


class FederationError(FediverseError):
    """Raised when a federation operation cannot be completed."""
