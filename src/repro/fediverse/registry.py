"""The global registry of instances: the simulated fediverse."""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.fediverse.clock import SimulationClock
from repro.fediverse.errors import UnknownInstanceError, UnknownUserError
from repro.fediverse.identifiers import normalise_domain, parse_handle
from repro.fediverse.instance import Instance, InstanceAvailability
from repro.fediverse.software import SoftwareKind
from repro.fediverse.user import User


class FediverseRegistry:
    """All instances participating in the simulated fediverse.

    The registry plays the role of "the Internet": it is the namespace in
    which instance domains resolve, and the place where cross-instance
    operations (federation, delivery, crawling) look up their targets.
    """

    def __init__(self, clock: SimulationClock | None = None) -> None:
        self.clock = clock or SimulationClock()
        self._instances: dict[str, Instance] = {}

    # ------------------------------------------------------------------ #
    # Instance management
    # ------------------------------------------------------------------ #
    def create_instance(
        self,
        domain: str,
        software: SoftwareKind = SoftwareKind.PLEROMA,
        **kwargs: Any,
    ) -> Instance:
        """Create, register and return a new instance."""
        domain = normalise_domain(domain)
        if domain in self._instances:
            raise ValueError(f"instance already registered: {domain}")
        kwargs.setdefault("created_at", self.clock.now())
        instance = Instance(domain=domain, software=software, **kwargs)
        self._instances[domain] = instance
        return instance

    def add_instance(self, instance: Instance) -> None:
        """Register an externally constructed instance."""
        if instance.domain in self._instances:
            raise ValueError(f"instance already registered: {instance.domain}")
        self._instances[instance.domain] = instance

    def get(self, domain: str) -> Instance:
        """Return the instance at ``domain``, raising if unknown."""
        domain = normalise_domain(domain)
        try:
            return self._instances[domain]
        except KeyError:
            raise UnknownInstanceError(domain) from None

    def get_normalised(self, domain: str) -> Instance:
        """:meth:`get` for domains known to be normalised already.

        The API server's batch paths resolve one domain per request group
        with domains that came out of instance records or directory
        listings, so the generic path's re-normalisation is skipped —
        mirroring :meth:`federate_normalised`.
        """
        try:
            return self._instances[domain]
        except KeyError:
            raise UnknownInstanceError(domain) from None

    def __contains__(self, domain: str) -> bool:
        return normalise_domain(domain) in self._instances

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._instances.values())

    @property
    def domains(self) -> list[str]:
        """Return all registered domains."""
        return list(self._instances)

    def instances(self) -> list[Instance]:
        """Return all registered instances."""
        return list(self._instances.values())

    def pleroma_instances(self) -> list[Instance]:
        """Return only the Pleroma instances."""
        return [inst for inst in self._instances.values() if inst.is_pleroma]

    def non_pleroma_instances(self) -> list[Instance]:
        """Return the instances running software other than Pleroma."""
        return [inst for inst in self._instances.values() if not inst.is_pleroma]

    # ------------------------------------------------------------------ #
    # Shard views
    # ------------------------------------------------------------------ #
    def shard_domains(self, shard: int, n_shards: int) -> list[str]:
        """Return the domains owned by ``shard`` of ``n_shards`` shards.

        Ownership follows the deterministic domain-hash partitioner of the
        sharded federation engine (:func:`repro.shard.partition.shard_of`),
        in registration order — every domain belongs to exactly one shard.
        """
        from repro.shard.partition import shard_of

        return [
            domain
            for domain in self._instances
            if shard_of(domain, n_shards) == shard
        ]

    def shard_instances(self, shard: int, n_shards: int) -> list[Instance]:
        """Return the instances owned by ``shard`` of ``n_shards`` shards."""
        from repro.shard.partition import shard_of

        return [
            instance
            for domain, instance in self._instances.items()
            if shard_of(domain, n_shards) == shard
        ]

    # ------------------------------------------------------------------ #
    # Federation bookkeeping
    # ------------------------------------------------------------------ #
    def federate(self, domain_a: str, domain_b: str) -> None:
        """Record that two instances have federated (both learn of the other)."""
        inst_a = self.get(domain_a)
        inst_b = self.get(domain_b)
        inst_a.add_peer(inst_b.domain)
        inst_b.add_peer(inst_a.domain)

    def federate_normalised(self, domain_a: str, domain_b: str) -> None:
        """:meth:`federate` for domains known to be normalised already.

        The delivery engine's batch path calls this once per (origin,
        target) pair with domains that came out of instance records, so the
        four re-normalisations of the generic path are skipped.
        """
        instances = self._instances
        try:
            inst_a = instances[domain_a]
            inst_b = instances[domain_b]
        except KeyError as exc:
            raise UnknownInstanceError(str(exc.args[0])) from None
        if domain_a != domain_b:
            inst_a.peers.add(domain_b)
            inst_b.peers.add(domain_a)

    def follow(self, follower_handle: str, followee_handle: str) -> None:
        """Create a follow relationship between two users (possibly remote).

        The instances involved federate as a side effect, mirroring how a
        subscription causes two instances to learn about each other.
        """
        follower = self.find_user(follower_handle)
        followee = self.find_user(followee_handle)
        follower.add_following(followee.handle)
        followee.add_follower(follower.handle)
        if follower.domain != followee.domain:
            self.federate(follower.domain, followee.domain)

    def find_user(self, handle: str) -> User:
        """Resolve a ``user@domain`` handle to a :class:`User`."""
        username, domain = parse_handle(handle)
        instance = self.get(domain)
        if not instance.has_user(username):
            raise UnknownUserError(handle)
        return instance.get_user(username)

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #
    def total_users(self, pleroma_only: bool = False) -> int:
        """Return the total number of registered users."""
        instances = self.pleroma_instances() if pleroma_only else self.instances()
        return sum(inst.user_count for inst in instances)

    def total_local_posts(self, pleroma_only: bool = False) -> int:
        """Return the total number of locally published posts."""
        instances = self.pleroma_instances() if pleroma_only else self.instances()
        return sum(inst.local_post_count for inst in instances)

    def stats(self) -> dict[str, int]:
        """Return headline counts for the whole registry."""
        pleroma = self.pleroma_instances()
        return {
            "instances": len(self._instances),
            "pleroma_instances": len(pleroma),
            "non_pleroma_instances": len(self._instances) - len(pleroma),
            "users": self.total_users(),
            "pleroma_users": self.total_users(pleroma_only=True),
            "local_posts": self.total_local_posts(),
            "pleroma_local_posts": self.total_local_posts(pleroma_only=True),
        }

    def set_availability(self, domain: str, status_code: int, reason: str = "") -> None:
        """Mark an instance as (un)available to crawler requests."""
        self.get(domain).availability = InstanceAvailability(status_code, reason)
