"""A deterministic simulation clock.

The measurement campaign in the paper spans five months with snapshots every
four hours.  To reproduce that behaviour without waiting wall-clock time, all
components share a :class:`SimulationClock` whose time only moves when the
simulation advances it.
"""

from __future__ import annotations

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


class SimulationClock:
    """A monotonically increasing simulated clock.

    Time is measured in seconds since an arbitrary epoch (the start of the
    simulated measurement campaign, unless configured otherwise).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock start must be non-negative")
        self._now = float(start)
        self._start = float(start)

    @property
    def start(self) -> float:
        """Return the epoch the clock was created with."""
        return self._start

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute ``timestamp`` (never backwards)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def elapsed(self) -> float:
        """Return seconds elapsed since the clock epoch."""
        return self._now - self._start

    def elapsed_days(self) -> float:
        """Return days elapsed since the clock epoch."""
        return self.elapsed() / SECONDS_PER_DAY

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SimulationClock(now={self._now:.0f}s, elapsed={self.elapsed_days():.2f}d)"
