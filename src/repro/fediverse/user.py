"""Users (accounts) registered on fediverse instances."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.fediverse.identifiers import make_actor_uri, make_handle, normalise_domain


@dataclass
class User:
    """An account registered on a single instance.

    A user is *local* to the instance it registered with; the same person
    never has accounts merged across instances (the paper counts users per
    instance the same way).
    """

    username: str
    domain: str
    created_at: float = 0.0
    display_name: str = ""
    bot: bool = False
    locked: bool = False
    avatar_url: str | None = None
    banner_url: str | None = None
    followers: set[str] = field(default_factory=set)
    following: set[str] = field(default_factory=set)
    post_ids: list[str] = field(default_factory=list)
    tags: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.domain = normalise_domain(self.domain)
        if not self.display_name:
            self.display_name = self.username

    @property
    def handle(self) -> str:
        """Return the fully qualified ``username@domain`` handle."""
        return make_handle(self.username, self.domain)

    @property
    def actor_uri(self) -> str:
        """Return the ActivityPub actor URI."""
        return make_actor_uri(self.domain, self.username)

    @property
    def follower_count(self) -> int:
        """Return how many accounts follow this user."""
        return len(self.followers)

    @property
    def following_count(self) -> int:
        """Return how many accounts this user follows."""
        return len(self.following)

    @property
    def post_count(self) -> int:
        """Return the number of posts this user has published."""
        return len(self.post_ids)

    def add_follower(self, handle: str) -> None:
        """Record that ``handle`` follows this user."""
        if handle == self.handle:
            raise ValueError("a user cannot follow themselves")
        self.followers.add(handle)

    def add_following(self, handle: str) -> None:
        """Record that this user follows ``handle``."""
        if handle == self.handle:
            raise ValueError("a user cannot follow themselves")
        self.following.add(handle)

    def account_age(self, now: float) -> float:
        """Return the account age in seconds at ``now``."""
        return max(0.0, now - self.created_at)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the account for the API layer."""
        return {
            "acct": self.handle,
            "username": self.username,
            "display_name": self.display_name,
            "bot": self.bot,
            "locked": self.locked,
            "created_at": self.created_at,
            "followers_count": self.follower_count,
            "following_count": self.following_count,
            "statuses_count": self.post_count,
            "avatar": self.avatar_url,
            "header": self.banner_url,
        }
