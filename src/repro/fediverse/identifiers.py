"""Helpers for fediverse identifiers: handles, domains and object URIs.

The fediverse identifies users with ``user@domain`` handles and objects
(posts) with HTTPS URIs rooted at the origin instance.  These helpers keep
the formats consistent across the code base.
"""

from __future__ import annotations

import re

_HANDLE_RE = re.compile(r"^@?(?P<username>[A-Za-z0-9_.\-]+)@(?P<domain>[A-Za-z0-9_.\-]+)$")
_DOMAIN_RE = re.compile(r"^[a-z0-9]([a-z0-9\-]*[a-z0-9])?(\.[a-z0-9]([a-z0-9\-]*[a-z0-9])?)+$")


def normalise_domain(domain: str) -> str:
    """Return a canonical lowercase form of ``domain``.

    Strips a scheme prefix, trailing slashes and surrounding whitespace so
    that ``https://Example.Social/`` and ``example.social`` compare equal.
    """
    cleaned = domain.strip().lower()
    for prefix in ("https://", "http://"):
        if cleaned.startswith(prefix):
            cleaned = cleaned[len(prefix):]
    cleaned = cleaned.rstrip("/")
    if not cleaned:
        raise ValueError("empty domain")
    return cleaned


def is_valid_domain(domain: str) -> bool:
    """Return ``True`` when ``domain`` looks like a valid hostname."""
    try:
        cleaned = normalise_domain(domain)
    except ValueError:
        return False
    return bool(_DOMAIN_RE.match(cleaned))


def make_handle(username: str, domain: str) -> str:
    """Build a ``username@domain`` handle."""
    if not username:
        raise ValueError("empty username")
    return f"{username}@{normalise_domain(domain)}"


def parse_handle(handle: str) -> tuple[str, str]:
    """Split a handle into ``(username, domain)``.

    Accepts an optional leading ``@`` (as commonly written by users).
    """
    match = _HANDLE_RE.match(handle.strip())
    if not match:
        raise ValueError(f"invalid handle: {handle!r}")
    return match.group("username"), normalise_domain(match.group("domain"))


def handle_domain(handle: str) -> str:
    """Return only the domain part of a handle."""
    return parse_handle(handle)[1]


def make_post_uri(domain: str, post_id: str) -> str:
    """Build the canonical object URI for a post."""
    return f"https://{normalise_domain(domain)}/objects/{post_id}"


def make_actor_uri(domain: str, username: str) -> str:
    """Build the canonical actor URI for a user."""
    return f"https://{normalise_domain(domain)}/users/{username}"


def domain_matches(domain: str, pattern: str) -> bool:
    """Return ``True`` when ``domain`` matches ``pattern``.

    Patterns are either exact domains or wildcard patterns of the form
    ``*.example.social`` which match the apex domain and all subdomains.
    This mirrors how Pleroma's SimplePolicy matches instance patterns.
    """
    domain = normalise_domain(domain)
    pattern = pattern.strip().lower()
    if pattern.startswith("*."):
        suffix = pattern[2:]
        return domain == suffix or domain.endswith("." + suffix)
    return domain == normalise_domain(pattern)
