"""Flat record types forming the crawled dataset.

Records deliberately mirror what the *crawler can observe through the public
APIs* rather than the full simulator state: software kind, user/post counts,
policy names and SimplePolicy target lists for instances; author/content/
timestamps for posts; and so on.  The analysis layer only ever sees these
records, which keeps the measurement honest — it cannot peek at ground truth
the paper's authors could not see either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.fediverse.identifiers import normalise_domain


@dataclass
class InstanceRecord:
    """One crawled instance (the latest snapshot of its metadata)."""

    domain: str
    software: str
    version: str = ""
    reachable: bool = True
    status_code: int = 200
    user_count: int = 0
    status_count: int = 0
    peer_count: int = 0
    registrations_open: bool = True
    policies_exposed: bool = True
    timeline_reachable: bool = False
    enabled_policies: tuple[str, ...] = ()
    peers: tuple[str, ...] = ()
    first_seen: float = 0.0
    last_seen: float = 0.0
    snapshots: int = 0

    def __post_init__(self) -> None:
        self.domain = normalise_domain(self.domain)

    @property
    def is_pleroma(self) -> bool:
        """Return ``True`` when the instance runs Pleroma."""
        return self.software == "pleroma"

    def to_dict(self) -> dict[str, Any]:
        """Serialise the record."""
        return {
            "domain": self.domain,
            "software": self.software,
            "version": self.version,
            "reachable": self.reachable,
            "status_code": self.status_code,
            "user_count": self.user_count,
            "status_count": self.status_count,
            "peer_count": self.peer_count,
            "registrations_open": self.registrations_open,
            "policies_exposed": self.policies_exposed,
            "timeline_reachable": self.timeline_reachable,
            "enabled_policies": list(self.enabled_policies),
            "peers": list(self.peers),
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "snapshots": self.snapshots,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "InstanceRecord":
        """Deserialise a record."""
        data = dict(payload)
        data["enabled_policies"] = tuple(data.get("enabled_policies", ()))
        data["peers"] = tuple(data.get("peers", ()))
        return cls(**data)


@dataclass
class PolicySettingRecord:
    """One policy enabled on one instance, with its observable configuration.

    For the SimplePolicy the configuration holds the per-action target lists
    (the ``mrf_simple`` block); for other policies whatever the instance API
    exposes.
    """

    domain: str
    policy: str
    config: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.domain = normalise_domain(self.domain)

    def simple_targets(self, action: str) -> tuple[str, ...]:
        """Return the SimplePolicy target list for ``action`` (empty otherwise)."""
        targets = self.config.get(action, [])
        if isinstance(targets, (list, tuple)):
            return tuple(targets)
        return ()

    def to_dict(self) -> dict[str, Any]:
        """Serialise the record."""
        return {"domain": self.domain, "policy": self.policy, "config": self.config}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PolicySettingRecord":
        """Deserialise a record."""
        return cls(
            domain=payload["domain"],
            policy=payload["policy"],
            config=dict(payload.get("config", {})),
        )


@dataclass(frozen=True)
class RejectEdge:
    """One instance applying one SimplePolicy action against another.

    ``source`` is the moderating instance, ``target`` the moderated one.
    The reject analysis of the paper works entirely on these edges.
    """

    source: str
    target: str
    action: str

    def to_dict(self) -> dict[str, Any]:
        """Serialise the edge."""
        return {"source": self.source, "target": self.target, "action": self.action}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RejectEdge":
        """Deserialise an edge."""
        return cls(source=payload["source"], target=payload["target"], action=payload["action"])


@dataclass
class UserRecord:
    """One user account observed through the crawled timelines."""

    handle: str
    domain: str
    bot: bool = False
    post_count: int = 0
    follower_count: int = 0
    following_count: int = 0
    created_at: float = 0.0

    def __post_init__(self) -> None:
        self.domain = normalise_domain(self.domain)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the record."""
        return {
            "handle": self.handle,
            "domain": self.domain,
            "bot": self.bot,
            "post_count": self.post_count,
            "follower_count": self.follower_count,
            "following_count": self.following_count,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "UserRecord":
        """Deserialise a record."""
        return cls(**payload)


@dataclass
class PostRecord:
    """One public post collected from an instance timeline."""

    post_id: str
    author: str
    domain: str
    content: str
    created_at: float
    collected_from: str = ""
    sensitive: bool = False
    has_media: bool = False
    visibility: str = "public"

    def __post_init__(self) -> None:
        self.domain = normalise_domain(self.domain)
        if self.collected_from:
            self.collected_from = normalise_domain(self.collected_from)

    @property
    def is_local(self) -> bool:
        """Return ``True`` when the post was collected from its origin instance."""
        return not self.collected_from or self.collected_from == self.domain

    def to_dict(self) -> dict[str, Any]:
        """Serialise the record."""
        return {
            "post_id": self.post_id,
            "author": self.author,
            "domain": self.domain,
            "content": self.content,
            "created_at": self.created_at,
            "collected_from": self.collected_from,
            "sensitive": self.sensitive,
            "has_media": self.has_media,
            "visibility": self.visibility,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PostRecord":
        """Deserialise a record."""
        return cls(**payload)
