"""The dataset container holding one complete crawl."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.datasets.schema import (
    InstanceRecord,
    PolicySettingRecord,
    PostRecord,
    RejectEdge,
    UserRecord,
)
from repro.fediverse.identifiers import normalise_domain


class Dataset:
    """All records produced by one measurement campaign.

    The container offers the indexed lookups the analysis layer needs
    (instances by domain, posts by author/origin, policy settings by policy
    name, moderation edges by source/target) while keeping the underlying
    data as flat record lists that can be exported and reloaded.

    Every secondary index is maintained incrementally at ingestion time, so
    all lookups are O(result) instead of O(records).  The flat lists remain
    the source of truth for iteration order and serialisation; the indices
    preserve that order (records are appended to their buckets in flat-list
    order), which keeps every accessor's result identical to a naive scan.
    """

    def __init__(self) -> None:
        self.instances: dict[str, InstanceRecord] = {}
        self.policy_settings: list[PolicySettingRecord] = []
        self.reject_edges: list[RejectEdge] = []
        self.users: dict[str, UserRecord] = {}
        self.posts: list[PostRecord] = []
        self._posts_by_author: dict[str, list[PostRecord]] = defaultdict(list)
        self._posts_by_origin: dict[str, list[PostRecord]] = defaultdict(list)
        self._seen_post_keys: set[tuple[str, str]] = set()
        self._local_post_count = 0
        # Moderation-edge indices.
        self._edge_set: set[RejectEdge] = set()
        self._edges_by_source: dict[str, list[RejectEdge]] = defaultdict(list)
        self._edges_by_target: dict[str, list[RejectEdge]] = defaultdict(list)
        self._edges_by_action: dict[str, list[RejectEdge]] = defaultdict(list)
        self._rejects_received: dict[str, int] = defaultdict(int)
        self._rejects_applied: dict[str, int] = defaultdict(int)
        self._moderated_targets: set[str] = set()
        self._reject_targets: set[str] = set()
        # Policy-setting indices.
        self._policies_by_domain: dict[str, list[PolicySettingRecord]] = defaultdict(list)
        self._policies_by_name: dict[str, list[PolicySettingRecord]] = defaultdict(list)
        # User index (bucket order mirrors ``users`` dict insertion order).
        self._users_by_domain: dict[str, list[UserRecord]] = defaultdict(list)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def add_instance(self, record: InstanceRecord) -> None:
        """Add or replace the record of one instance."""
        self.instances[record.domain] = record

    def add_policy_setting(self, record: PolicySettingRecord) -> None:
        """Add one policy-setting record."""
        self.policy_settings.append(record)
        self._policies_by_domain[record.domain].append(record)
        self._policies_by_name[record.policy].append(record)

    def add_reject_edge(self, edge: RejectEdge) -> None:
        """Add one moderation edge (deduplicated)."""
        if edge in self._edge_set:
            return
        self._edge_set.add(edge)
        self.reject_edges.append(edge)
        self._edges_by_source[edge.source].append(edge)
        self._edges_by_target[edge.target].append(edge)
        self._edges_by_action[edge.action].append(edge)
        self._moderated_targets.add(edge.target)
        if edge.action == "reject":
            self._reject_targets.add(edge.target)
            self._rejects_received[edge.target] += 1
            self._rejects_applied[edge.source] += 1

    def add_reject_edges(self, edges: Iterable[RejectEdge]) -> None:
        """Add several moderation edges."""
        for edge in edges:
            self.add_reject_edge(edge)

    def add_user(self, record: UserRecord) -> None:
        """Add or replace one user record."""
        old = self.users.get(record.handle)
        self.users[record.handle] = record
        if old is None:
            self._users_by_domain[record.domain].append(record)
        elif old.domain == record.domain:
            bucket = self._users_by_domain[record.domain]
            bucket[bucket.index(old)] = record
        else:
            # Replacement moved the user between domains: rebuild the index
            # so bucket order keeps mirroring the ``users`` dict order.
            self._rebuild_user_index()

    def _rebuild_user_index(self) -> None:
        index: dict[str, list[UserRecord]] = defaultdict(list)
        for user in self.users.values():
            index[user.domain].append(user)
        self._users_by_domain = index

    def add_post(self, record: PostRecord) -> None:
        """Add one post record (deduplicated on (origin, post id))."""
        key = (record.domain, record.post_id)
        if key in self._seen_post_keys:
            return
        self._seen_post_keys.add(key)
        self.posts.append(record)
        self._posts_by_author[record.author].append(record)
        self._posts_by_origin[record.domain].append(record)
        if record.is_local:
            self._local_post_count += 1

    # ------------------------------------------------------------------ #
    # Instance-level lookups
    # ------------------------------------------------------------------ #
    def instance(self, domain: str) -> InstanceRecord | None:
        """Return the record of ``domain`` when crawled, else ``None``."""
        return self.instances.get(normalise_domain(domain))

    def all_instances(self) -> list[InstanceRecord]:
        """Return every known instance record."""
        return list(self.instances.values())

    def pleroma_instances(self, reachable_only: bool = False) -> list[InstanceRecord]:
        """Return the Pleroma instance records."""
        records = [r for r in self.instances.values() if r.is_pleroma]
        if reachable_only:
            records = [r for r in records if r.reachable]
        return records

    def non_pleroma_instances(self) -> list[InstanceRecord]:
        """Return records of instances not running Pleroma."""
        return [r for r in self.instances.values() if not r.is_pleroma]

    def reachable_pleroma_instances(self) -> list[InstanceRecord]:
        """Return Pleroma instances the crawler could read."""
        return self.pleroma_instances(reachable_only=True)

    def unreachable_status_breakdown(self) -> dict[int, int]:
        """Return status-code counts for uncrawlable Pleroma instances."""
        breakdown: dict[int, int] = {}
        for record in self.pleroma_instances():
            if not record.reachable:
                breakdown[record.status_code] = breakdown.get(record.status_code, 0) + 1
        return breakdown

    # ------------------------------------------------------------------ #
    # Policy lookups
    # ------------------------------------------------------------------ #
    def policy_settings_for(self, domain: str) -> list[PolicySettingRecord]:
        """Return the policy settings observed on ``domain``."""
        domain = normalise_domain(domain)
        return list(self._policies_by_domain.get(domain, ()))

    def instances_with_policy(self, policy: str) -> list[str]:
        """Return the domains that enable ``policy``."""
        return sorted(
            {record.domain for record in self._policies_by_name.get(policy, ())}
        )

    def policy_names(self) -> list[str]:
        """Return every distinct policy name observed."""
        return sorted(self._policies_by_name)

    def simple_policy_settings(self) -> list[PolicySettingRecord]:
        """Return only the SimplePolicy settings."""
        return list(self._policies_by_name.get("SimplePolicy", ()))

    # ------------------------------------------------------------------ #
    # Moderation-edge lookups
    # ------------------------------------------------------------------ #
    def edges_by_action(self, action: str) -> list[RejectEdge]:
        """Return the moderation edges carrying ``action``."""
        return list(self._edges_by_action.get(action, ()))

    def edges_targeting(self, domain: str) -> list[RejectEdge]:
        """Return the moderation edges whose target is ``domain``."""
        domain = normalise_domain(domain)
        return list(self._edges_by_target.get(domain, ()))

    def edges_from(self, domain: str) -> list[RejectEdge]:
        """Return the moderation edges applied by ``domain``."""
        domain = normalise_domain(domain)
        return list(self._edges_by_source.get(domain, ()))

    def rejects_received(self, domain: str) -> int:
        """Return how many reject actions target ``domain``."""
        return self._rejects_received.get(normalise_domain(domain), 0)

    def rejects_applied(self, domain: str) -> int:
        """Return how many reject actions ``domain`` applies to others."""
        return self._rejects_applied.get(normalise_domain(domain), 0)

    def rejected_domains(self) -> list[str]:
        """Return every domain targeted by at least one reject action."""
        return sorted(self._reject_targets)

    def moderated_domains(self) -> list[str]:
        """Return every domain targeted by at least one action of any kind."""
        return sorted(self._moderated_targets)

    # ------------------------------------------------------------------ #
    # User and post lookups
    # ------------------------------------------------------------------ #
    def users_on(self, domain: str) -> list[UserRecord]:
        """Return the user records registered on ``domain``."""
        domain = normalise_domain(domain)
        return list(self._users_by_domain.get(domain, ()))

    def posts_by(self, handle: str) -> list[PostRecord]:
        """Return the posts authored by ``handle``."""
        return list(self._posts_by_author.get(handle, []))

    def posts_from(self, domain: str) -> list[PostRecord]:
        """Return the posts originating on ``domain``."""
        return list(self._posts_by_origin.get(normalise_domain(domain), []))

    def local_posts(self) -> list[PostRecord]:
        """Return the posts collected from their origin instance."""
        return [post for post in self.posts if post.is_local]

    def users_with_posts(self) -> list[UserRecord]:
        """Return users for whom at least one post was collected."""
        return [
            user for user in self.users.values() if self._posts_by_author.get(user.handle)
        ]

    # ------------------------------------------------------------------ #
    # Headline statistics (Section 3 of the paper)
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, float]:
        """Return the headline dataset statistics (one pass over the indices)."""
        pleroma_count = 0
        reachable_count = 0
        total_users = 0
        total_statuses = 0
        for record in self.instances.values():
            if not record.is_pleroma:
                continue
            pleroma_count += 1
            if record.reachable:
                reachable_count += 1
                total_users += record.user_count
                total_statuses += record.status_count
        users_observed = len(self.users)
        users_with_posts = sum(
            1 for user in self.users.values() if self._posts_by_author.get(user.handle)
        )
        return {
            "instances_total": len(self.instances),
            "pleroma_instances": pleroma_count,
            "non_pleroma_instances": len(self.instances) - pleroma_count,
            "crawlable_pleroma_instances": reachable_count,
            "uncrawlable_pleroma_instances": pleroma_count - reachable_count,
            "pleroma_users": total_users,
            "observed_users": users_observed,
            "users_with_posts": users_with_posts,
            "active_user_share": (users_with_posts / users_observed) if users_observed else 0.0,
            "total_status_count": total_statuses,
            "collected_posts": len(self.posts),
            "collected_local_posts": self._local_post_count,
            "policy_settings": len(self.policy_settings),
            "reject_edges": len(self._edges_by_action.get("reject", ())),
            "moderation_edges": len(self.reject_edges),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Dataset(instances={len(self.instances)}, users={len(self.users)}, "
            f"posts={len(self.posts)}, edges={len(self.reject_edges)})"
        )
