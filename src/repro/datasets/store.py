"""The dataset container holding one complete crawl."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.datasets.schema import (
    InstanceRecord,
    PolicySettingRecord,
    PostRecord,
    RejectEdge,
    UserRecord,
)
from repro.fediverse.identifiers import normalise_domain


class Dataset:
    """All records produced by one measurement campaign.

    The container offers the indexed lookups the analysis layer needs
    (instances by domain, posts by author/origin, policy settings by policy
    name, moderation edges by source/target) while keeping the underlying
    data as flat record lists that can be exported and reloaded.
    """

    def __init__(self) -> None:
        self.instances: dict[str, InstanceRecord] = {}
        self.policy_settings: list[PolicySettingRecord] = []
        self.reject_edges: list[RejectEdge] = []
        self.users: dict[str, UserRecord] = {}
        self.posts: list[PostRecord] = []
        self._posts_by_author: dict[str, list[PostRecord]] = defaultdict(list)
        self._posts_by_origin: dict[str, list[PostRecord]] = defaultdict(list)
        self._seen_post_keys: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def add_instance(self, record: InstanceRecord) -> None:
        """Add or replace the record of one instance."""
        self.instances[record.domain] = record

    def add_policy_setting(self, record: PolicySettingRecord) -> None:
        """Add one policy-setting record."""
        self.policy_settings.append(record)

    def add_reject_edge(self, edge: RejectEdge) -> None:
        """Add one moderation edge (deduplicated)."""
        if edge not in self.reject_edges:
            self.reject_edges.append(edge)

    def add_reject_edges(self, edges: Iterable[RejectEdge]) -> None:
        """Add several moderation edges."""
        existing = set(self.reject_edges)
        for edge in edges:
            if edge not in existing:
                self.reject_edges.append(edge)
                existing.add(edge)

    def add_user(self, record: UserRecord) -> None:
        """Add or replace one user record."""
        self.users[record.handle] = record

    def add_post(self, record: PostRecord) -> None:
        """Add one post record (deduplicated on (origin, post id))."""
        key = (record.domain, record.post_id)
        if key in self._seen_post_keys:
            return
        self._seen_post_keys.add(key)
        self.posts.append(record)
        self._posts_by_author[record.author].append(record)
        self._posts_by_origin[record.domain].append(record)

    # ------------------------------------------------------------------ #
    # Instance-level lookups
    # ------------------------------------------------------------------ #
    def instance(self, domain: str) -> InstanceRecord | None:
        """Return the record of ``domain`` when crawled, else ``None``."""
        return self.instances.get(normalise_domain(domain))

    def all_instances(self) -> list[InstanceRecord]:
        """Return every known instance record."""
        return list(self.instances.values())

    def pleroma_instances(self, reachable_only: bool = False) -> list[InstanceRecord]:
        """Return the Pleroma instance records."""
        records = [r for r in self.instances.values() if r.is_pleroma]
        if reachable_only:
            records = [r for r in records if r.reachable]
        return records

    def non_pleroma_instances(self) -> list[InstanceRecord]:
        """Return records of instances not running Pleroma."""
        return [r for r in self.instances.values() if not r.is_pleroma]

    def reachable_pleroma_instances(self) -> list[InstanceRecord]:
        """Return Pleroma instances the crawler could read."""
        return self.pleroma_instances(reachable_only=True)

    def unreachable_status_breakdown(self) -> dict[int, int]:
        """Return status-code counts for uncrawlable Pleroma instances."""
        breakdown: dict[int, int] = {}
        for record in self.pleroma_instances():
            if not record.reachable:
                breakdown[record.status_code] = breakdown.get(record.status_code, 0) + 1
        return breakdown

    # ------------------------------------------------------------------ #
    # Policy lookups
    # ------------------------------------------------------------------ #
    def policy_settings_for(self, domain: str) -> list[PolicySettingRecord]:
        """Return the policy settings observed on ``domain``."""
        domain = normalise_domain(domain)
        return [record for record in self.policy_settings if record.domain == domain]

    def instances_with_policy(self, policy: str) -> list[str]:
        """Return the domains that enable ``policy``."""
        return sorted(
            {record.domain for record in self.policy_settings if record.policy == policy}
        )

    def policy_names(self) -> list[str]:
        """Return every distinct policy name observed."""
        return sorted({record.policy for record in self.policy_settings})

    def simple_policy_settings(self) -> list[PolicySettingRecord]:
        """Return only the SimplePolicy settings."""
        return [record for record in self.policy_settings if record.policy == "SimplePolicy"]

    # ------------------------------------------------------------------ #
    # Moderation-edge lookups
    # ------------------------------------------------------------------ #
    def edges_by_action(self, action: str) -> list[RejectEdge]:
        """Return the moderation edges carrying ``action``."""
        return [edge for edge in self.reject_edges if edge.action == action]

    def edges_targeting(self, domain: str) -> list[RejectEdge]:
        """Return the moderation edges whose target is ``domain``."""
        domain = normalise_domain(domain)
        return [edge for edge in self.reject_edges if edge.target == domain]

    def edges_from(self, domain: str) -> list[RejectEdge]:
        """Return the moderation edges applied by ``domain``."""
        domain = normalise_domain(domain)
        return [edge for edge in self.reject_edges if edge.source == domain]

    def rejects_received(self, domain: str) -> int:
        """Return how many reject actions target ``domain``."""
        domain = normalise_domain(domain)
        return sum(
            1
            for edge in self.reject_edges
            if edge.target == domain and edge.action == "reject"
        )

    def rejects_applied(self, domain: str) -> int:
        """Return how many reject actions ``domain`` applies to others."""
        domain = normalise_domain(domain)
        return sum(
            1
            for edge in self.reject_edges
            if edge.source == domain and edge.action == "reject"
        )

    def rejected_domains(self) -> list[str]:
        """Return every domain targeted by at least one reject action."""
        return sorted(
            {edge.target for edge in self.reject_edges if edge.action == "reject"}
        )

    def moderated_domains(self) -> list[str]:
        """Return every domain targeted by at least one action of any kind."""
        return sorted({edge.target for edge in self.reject_edges})

    # ------------------------------------------------------------------ #
    # User and post lookups
    # ------------------------------------------------------------------ #
    def users_on(self, domain: str) -> list[UserRecord]:
        """Return the user records registered on ``domain``."""
        domain = normalise_domain(domain)
        return [user for user in self.users.values() if user.domain == domain]

    def posts_by(self, handle: str) -> list[PostRecord]:
        """Return the posts authored by ``handle``."""
        return list(self._posts_by_author.get(handle, []))

    def posts_from(self, domain: str) -> list[PostRecord]:
        """Return the posts originating on ``domain``."""
        return list(self._posts_by_origin.get(normalise_domain(domain), []))

    def local_posts(self) -> list[PostRecord]:
        """Return the posts collected from their origin instance."""
        return [post for post in self.posts if post.is_local]

    def users_with_posts(self) -> list[UserRecord]:
        """Return users for whom at least one post was collected."""
        return [
            user for user in self.users.values() if self._posts_by_author.get(user.handle)
        ]

    # ------------------------------------------------------------------ #
    # Headline statistics (Section 3 of the paper)
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, float]:
        """Return the headline dataset statistics."""
        pleroma = self.pleroma_instances()
        reachable = [r for r in pleroma if r.reachable]
        total_users = sum(r.user_count for r in reachable)
        users_observed = len(self.users)
        users_with_posts = len(self.users_with_posts())
        return {
            "instances_total": len(self.instances),
            "pleroma_instances": len(pleroma),
            "non_pleroma_instances": len(self.instances) - len(pleroma),
            "crawlable_pleroma_instances": len(reachable),
            "uncrawlable_pleroma_instances": len(pleroma) - len(reachable),
            "pleroma_users": total_users,
            "observed_users": users_observed,
            "users_with_posts": users_with_posts,
            "active_user_share": (users_with_posts / users_observed) if users_observed else 0.0,
            "total_status_count": sum(r.status_count for r in reachable),
            "collected_posts": len(self.posts),
            "collected_local_posts": len(self.local_posts()),
            "policy_settings": len(self.policy_settings),
            "reject_edges": len(self.edges_by_action("reject")),
            "moderation_edges": len(self.reject_edges),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Dataset(instances={len(self.instances)}, users={len(self.users)}, "
            f"posts={len(self.posts)}, edges={len(self.reject_edges)})"
        )
