"""Dataset schema and storage shared by the crawler and the analysis.

The paper's analysis works on a crawled dataset: instance metadata snapshots
(including MRF policy settings), the peer graph, user accounts and public
posts.  This package defines flat record types for each of those, a
:class:`~repro.datasets.store.Dataset` container with the lookups the
analysis needs, and JSON/CSV import/export so a crawl can be saved and
reloaded.
"""

from repro.datasets.schema import (
    InstanceRecord,
    PolicySettingRecord,
    PostRecord,
    RejectEdge,
    UserRecord,
)
from repro.datasets.store import Dataset
from repro.datasets.export import (
    dataset_from_dict,
    dataset_from_json,
    dataset_to_dict,
    dataset_to_json,
    load_dataset,
    save_dataset,
    write_csv_tables,
)

__all__ = [
    "InstanceRecord",
    "PolicySettingRecord",
    "PostRecord",
    "RejectEdge",
    "UserRecord",
    "Dataset",
    "dataset_from_dict",
    "dataset_from_json",
    "dataset_to_dict",
    "dataset_to_json",
    "load_dataset",
    "save_dataset",
    "write_csv_tables",
]
