"""Serialisation of datasets to JSON and CSV."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.datasets.schema import (
    InstanceRecord,
    PolicySettingRecord,
    PostRecord,
    RejectEdge,
    UserRecord,
)
from repro.datasets.store import Dataset

#: Schema version written into exported files.
SCHEMA_VERSION = 1


def dataset_to_dict(dataset: Dataset) -> dict[str, Any]:
    """Serialise a dataset to plain dictionaries/lists."""
    return {
        "schema_version": SCHEMA_VERSION,
        "instances": [record.to_dict() for record in dataset.instances.values()],
        "policy_settings": [record.to_dict() for record in dataset.policy_settings],
        "reject_edges": [edge.to_dict() for edge in dataset.reject_edges],
        "users": [record.to_dict() for record in dataset.users.values()],
        "posts": [record.to_dict() for record in dataset.posts],
    }


def dataset_from_dict(payload: dict[str, Any]) -> Dataset:
    """Rebuild a dataset from its dictionary form."""
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported dataset schema version: {version}")
    dataset = Dataset()
    for item in payload.get("instances", []):
        dataset.add_instance(InstanceRecord.from_dict(item))
    for item in payload.get("policy_settings", []):
        dataset.add_policy_setting(PolicySettingRecord.from_dict(item))
    dataset.add_reject_edges(
        RejectEdge.from_dict(item) for item in payload.get("reject_edges", [])
    )
    for item in payload.get("users", []):
        dataset.add_user(UserRecord.from_dict(item))
    for item in payload.get("posts", []):
        dataset.add_post(PostRecord.from_dict(item))
    return dataset


def dataset_to_json(dataset: Dataset, indent: int | None = None) -> str:
    """Serialise a dataset to a JSON string."""
    return json.dumps(dataset_to_dict(dataset), indent=indent)


def dataset_from_json(text: str) -> Dataset:
    """Rebuild a dataset from its JSON form."""
    return dataset_from_dict(json.loads(text))


def save_dataset(dataset: Dataset, path: str | Path, indent: int | None = None) -> Path:
    """Write a dataset to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dataset_to_json(dataset, indent=indent), encoding="utf-8")
    return path


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset back from a JSON file."""
    return dataset_from_json(Path(path).read_text(encoding="utf-8"))


def write_csv_tables(dataset: Dataset, directory: str | Path) -> dict[str, Path]:
    """Write one CSV file per record type into ``directory``.

    Returns a mapping from table name to file path.  CSV is handy for
    loading the crawl into spreadsheet or dataframe tooling.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}

    tables: dict[str, list[dict[str, Any]]] = {
        "instances": [record.to_dict() for record in dataset.instances.values()],
        "policy_settings": [
            {
                "domain": record.domain,
                "policy": record.policy,
                "config": json.dumps(record.config, sort_keys=True),
            }
            for record in dataset.policy_settings
        ],
        "reject_edges": [edge.to_dict() for edge in dataset.reject_edges],
        "users": [record.to_dict() for record in dataset.users.values()],
        "posts": [record.to_dict() for record in dataset.posts],
    }

    for name, rows in tables.items():
        path = directory / f"{name}.csv"
        if not rows:
            path.write_text("", encoding="utf-8")
            written[name] = path
            continue
        fieldnames = list(rows[0])
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for row in rows:
                flat = {
                    key: json.dumps(value) if isinstance(value, (list, dict)) else value
                    for key, value in row.items()
                }
                writer.writerow(flat)
        written[name] = path
    return written
