"""Categorical annotation of rejected instances (Section 4.2).

The paper manually annotates the rejected Pleroma instances into four
categories — toxic (hate speech), sexually explicit, profane, general — by
reading their posts and visiting their sites, finding 90.6% of the
annotatable instances to be in the harmful categories.  The reproduction
replaces the manual step with a rule-based annotator over the instances'
Perspective score profile: the dominant attribute wins when it is
sufficiently pronounced, otherwise the instance is labelled "general".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.harmfulness import HarmfulnessLabeller
from repro.datasets.store import Dataset
from repro.perspective.attributes import Attribute


@dataclass(frozen=True)
class InstanceAnnotation:
    """The category assigned to one rejected instance."""

    domain: str
    category: str
    dominant_attribute: str | None
    dominant_score: float
    annotatable: bool

    @property
    def is_harmful_category(self) -> bool:
        """Return ``True`` for toxic / sexually explicit / profane."""
        return self.category in ("toxic", "sexually_explicit", "profane")


@dataclass
class AnnotationSummary:
    """The Section 4.2 annotation breakdown."""

    total_instances: int = 0
    annotatable_instances: int = 0
    annotatable_share: float = 0.0
    category_counts: dict[str, int] = field(default_factory=dict)
    harmful_category_share: float = 0.0
    general_share: float = 0.0
    annotations: list[InstanceAnnotation] = field(default_factory=list)


#: Attribute -> category name used in the paper's annotation.
_ATTRIBUTE_CATEGORIES = {
    Attribute.TOXICITY: "toxic",
    Attribute.SEXUALLY_EXPLICIT: "sexually_explicit",
    Attribute.PROFANITY: "profane",
}


class InstanceAnnotator:
    """Annotate rejected instances into content categories."""

    def __init__(
        self,
        dataset: Dataset,
        labeller: HarmfulnessLabeller | None = None,
        dominance_threshold: float = 0.03,
        min_posts: int = 3,
    ) -> None:
        if dominance_threshold < 0:
            raise ValueError("dominance_threshold must be non-negative")
        self.dataset = dataset
        # The shared default routes annotation through the dataset's one
        # interned corpus-column store instead of re-scanning every post
        # through a private client; labels are bitwise identical.
        self.labeller = labeller or HarmfulnessLabeller.shared(dataset)
        #: Minimum mean attribute score for an instance to be put into that
        #: attribute's category rather than "general".
        self.dominance_threshold = dominance_threshold
        #: Minimum collected posts for an instance to be annotatable at all.
        self.min_posts = min_posts
        self._pleroma_domains = {
            record.domain for record in dataset.pleroma_instances()
        }

    # ------------------------------------------------------------------ #
    # Per-instance annotation
    # ------------------------------------------------------------------ #
    def annotate_instance(self, domain: str) -> InstanceAnnotation:
        """Annotate one instance from its collected posts."""
        posts = self.dataset.posts_from(domain)
        if len(posts) < self.min_posts:
            return InstanceAnnotation(
                domain=domain,
                category="unknown",
                dominant_attribute=None,
                dominant_score=0.0,
                annotatable=False,
            )
        scores = self.labeller.score_instance(domain).mean_scores
        dominant_attribute = max(
            _ATTRIBUTE_CATEGORIES, key=lambda attribute: scores.get(attribute)
        )
        dominant_score = scores.get(dominant_attribute)
        if dominant_score >= self.dominance_threshold:
            category = _ATTRIBUTE_CATEGORIES[dominant_attribute]
            return InstanceAnnotation(
                domain=domain,
                category=category,
                dominant_attribute=dominant_attribute.value,
                dominant_score=dominant_score,
                annotatable=True,
            )
        return InstanceAnnotation(
            domain=domain,
            category="general",
            dominant_attribute=dominant_attribute.value,
            dominant_score=dominant_score,
            annotatable=True,
        )

    # ------------------------------------------------------------------ #
    # Section 4.2 summary
    # ------------------------------------------------------------------ #
    def annotate_rejected(self, exclude_single_user: bool = True) -> AnnotationSummary:
        """Annotate the rejected Pleroma instances with post data and summarise.

        Mirrors the paper's scope: the 92 rejected Pleroma instances for
        which post content was collected, excluding single-user instances.
        """
        summary = AnnotationSummary()
        domains = [
            domain
            for domain in self.dataset.rejected_domains()
            if domain in self._pleroma_domains and self.dataset.posts_from(domain)
        ]
        if exclude_single_user:
            domains = [
                domain
                for domain in domains
                if len({post.author for post in self.dataset.posts_from(domain)}) != 1
            ]
        summary.total_instances = len(domains)

        for domain in domains:
            annotation = self.annotate_instance(domain)
            summary.annotations.append(annotation)
            if not annotation.annotatable:
                continue
            summary.annotatable_instances += 1
            summary.category_counts[annotation.category] = (
                summary.category_counts.get(annotation.category, 0) + 1
            )

        if summary.total_instances:
            summary.annotatable_share = (
                summary.annotatable_instances / summary.total_instances
            )
        if summary.annotatable_instances:
            harmful = sum(
                count
                for category, count in summary.category_counts.items()
                if category in ("toxic", "sexually_explicit", "profane")
            )
            summary.harmful_category_share = harmful / summary.annotatable_instances
            summary.general_share = (
                summary.category_counts.get("general", 0) / summary.annotatable_instances
            )
        return summary
