"""Policy prevalence and aggregate moderation impact (Section 4.1).

Two questions are answered here:

* *Which policies do administrators enable, and how much of the network do
  they cover?*  (Figures 1 and 7, Table 3) — per policy: how many instances
  enable it, what share of instances that is, and how many users sit on
  those instances.
* *How much of the user/post population is impacted by moderation at all?*
  (the Section 4.1 scalars: 97.7% of users / 97.8% of posts impacted;
  ``reject`` alone affecting 86.2% of users / 88.5% of posts; reject making
  up 62.8% of moderation events; rejected instances being 80% of moderated
  instances).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.schema import InstanceRecord
from repro.datasets.store import Dataset
from repro.mrf.registry import is_builtin


@dataclass(frozen=True)
class PolicyPrevalence:
    """Adoption of one policy type across the crawled instances."""

    policy: str
    instance_count: int
    instance_share: float
    user_count: int
    user_share: float
    is_builtin: bool

    def as_row(self) -> dict[str, object]:
        """Return the prevalence as a flat table row."""
        return {
            "policy": self.policy,
            "instances": self.instance_count,
            "instance_share": self.instance_share,
            "users": self.user_count,
            "user_share": self.user_share,
            "builtin": self.is_builtin,
        }


@dataclass
class PolicyImpact:
    """The aggregate Section 4.1 impact scalars."""

    users_total: int = 0
    posts_total: int = 0
    users_impacted: int = 0
    posts_impacted: int = 0
    users_rejected: int = 0
    posts_rejected: int = 0
    moderation_events: int = 0
    reject_events: int = 0
    moderated_instances: int = 0
    rejected_instances: int = 0

    @property
    def user_impact_share(self) -> float:
        """Share of users impacted by any policy (paper: 97.7%)."""
        return self.users_impacted / self.users_total if self.users_total else 0.0

    @property
    def post_impact_share(self) -> float:
        """Share of posts impacted by any policy (paper: 97.8%)."""
        return self.posts_impacted / self.posts_total if self.posts_total else 0.0

    @property
    def user_reject_share(self) -> float:
        """Share of users on instances targeted by reject (paper: 86.2%)."""
        return self.users_rejected / self.users_total if self.users_total else 0.0

    @property
    def post_reject_share(self) -> float:
        """Share of posts on instances targeted by reject (paper: 88.5%)."""
        return self.posts_rejected / self.posts_total if self.posts_total else 0.0

    @property
    def reject_event_share(self) -> float:
        """Share of moderation events that are rejects (paper: 62.8%)."""
        return self.reject_events / self.moderation_events if self.moderation_events else 0.0

    @property
    def rejected_instance_share(self) -> float:
        """Share of moderated instances that are rejected (paper: 80%)."""
        return (
            self.rejected_instances / self.moderated_instances
            if self.moderated_instances
            else 0.0
        )


class PolicyAnalyzer:
    """Compute policy prevalence and aggregate impact over a dataset."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset

    # ------------------------------------------------------------------ #
    # Scope helpers
    # ------------------------------------------------------------------ #
    def observable_instances(self) -> list[InstanceRecord]:
        """Return reachable Pleroma instances that expose policy settings."""
        return [
            record
            for record in self.dataset.reachable_pleroma_instances()
            if record.policies_exposed
        ]

    def policy_exposure_share(self) -> float:
        """Return the share of reachable Pleroma instances exposing policies."""
        reachable = self.dataset.reachable_pleroma_instances()
        if not reachable:
            return 0.0
        return len(self.observable_instances()) / len(reachable)

    # ------------------------------------------------------------------ #
    # Prevalence (Figures 1 / 7, Table 3)
    # ------------------------------------------------------------------ #
    def prevalence(self) -> list[PolicyPrevalence]:
        """Return per-policy adoption, sorted by descending instance count."""
        observable = self.observable_instances()
        total_instances = len(observable)
        total_users = sum(record.user_count for record in observable)

        rows: list[PolicyPrevalence] = []
        policy_names = {
            name
            for record in observable
            for name in record.enabled_policies
        }
        for policy in sorted(policy_names):
            enabling = [
                record for record in observable if policy in record.enabled_policies
            ]
            users = sum(record.user_count for record in enabling)
            rows.append(
                PolicyPrevalence(
                    policy=policy,
                    instance_count=len(enabling),
                    instance_share=len(enabling) / total_instances if total_instances else 0.0,
                    user_count=users,
                    user_share=users / total_users if total_users else 0.0,
                    is_builtin=is_builtin(policy),
                )
            )
        rows.sort(key=lambda row: (-row.instance_count, row.policy))
        return rows

    def top_policies(self, limit: int = 15) -> list[PolicyPrevalence]:
        """Return the ``limit`` most-enabled policies (Figure 1)."""
        return self.prevalence()[:limit]

    def policy_type_counts(self) -> dict[str, int]:
        """Return how many distinct policy types were observed, by origin."""
        names = {
            name
            for record in self.observable_instances()
            for name in record.enabled_policies
        }
        builtin = sum(1 for name in names if is_builtin(name))
        return {
            "total": len(names),
            "builtin": builtin,
            "custom": len(names) - builtin,
        }

    # ------------------------------------------------------------------ #
    # Aggregate impact (Section 4.1 scalars)
    # ------------------------------------------------------------------ #
    def impact(self) -> PolicyImpact:
        """Compute the aggregate impact of moderation on users and posts.

        An instance counts as *impacted* when it is targeted by at least one
        policy action from another instance, or when at least one of the
        instances it federates with enables a policy (non-targeted policies
        apply to everything those instances receive).  It counts as
        *rejected* when at least one ``reject`` action targets it.
        """
        dataset = self.dataset
        pleroma = dataset.reachable_pleroma_instances()
        impact = PolicyImpact(
            users_total=sum(record.user_count for record in pleroma),
            posts_total=sum(record.status_count for record in pleroma),
        )

        targeted = set(dataset.moderated_domains())
        rejected = set(dataset.rejected_domains())
        policy_enabling = {
            record.domain
            for record in self.observable_instances()
            if record.enabled_policies
        }

        for record in pleroma:
            is_impacted = record.domain in targeted or any(
                peer in policy_enabling for peer in record.peers
            )
            if is_impacted:
                impact.users_impacted += record.user_count
                impact.posts_impacted += record.status_count
            if record.domain in rejected:
                impact.users_rejected += record.user_count
                impact.posts_rejected += record.status_count

        impact.moderation_events = len(dataset.reject_edges)
        impact.reject_events = len(dataset.edges_by_action("reject"))
        impact.moderated_instances = len(targeted)
        impact.rejected_instances = len(rejected)
        return impact
