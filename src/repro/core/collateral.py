"""Collateral-damage quantification (Section 5, Figure 6, Table 2).

The question: of all the users blocked because their instance received a
``reject``, how many actually post harmful content?  The paper finds only
4.2% do at the 0.8 Perspective threshold — i.e. 95.8% of blocked users are
"innocent" collateral damage — and shows the result is robust across
thresholds (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.harmfulness import HarmfulnessLabeller, UserLabel
from repro.datasets.store import Dataset
from repro.perspective.attributes import Attribute, HARMFUL_THRESHOLD


@dataclass
class InstanceCollateral:
    """The Figure 6 bar for one rejected instance."""

    domain: str
    toxic_users: int = 0
    profane_users: int = 0
    sexually_explicit_users: int = 0
    harmful_users: int = 0
    non_harmful_users: int = 0

    @property
    def labelled_users(self) -> int:
        """Return how many users on the instance were labelled."""
        return self.harmful_users + self.non_harmful_users

    def as_row(self) -> dict[str, object]:
        """Return the instance as a flat table row."""
        return {
            "domain": self.domain,
            "toxic": self.toxic_users,
            "profane": self.profane_users,
            "sexually_explicit": self.sexually_explicit_users,
            "harmful": self.harmful_users,
            "non_harmful": self.non_harmful_users,
        }


@dataclass
class CollateralSummary:
    """The Section 5 scalars."""

    threshold: float = HARMFUL_THRESHOLD
    rejected_pleroma_instances: int = 0
    rejected_with_posts: int = 0
    rejected_with_posts_share: float = 0.0
    single_user_instances: int = 0
    single_user_share: float = 0.0
    analysed_instances: int = 0
    labelled_users: int = 0
    labelled_posts: int = 0
    harmful_users: int = 0
    harmful_user_share: float = 0.0
    non_harmful_user_share: float = 0.0
    harmful_posts: int = 0
    harmful_post_ratio: float = 0.0
    attribute_shares: dict[str, float] = field(default_factory=dict)
    per_instance: list[InstanceCollateral] = field(default_factory=list)


class CollateralAnalyzer:
    """Quantify collateral damage on rejected Pleroma instances."""

    def __init__(
        self,
        dataset: Dataset,
        labeller: HarmfulnessLabeller | None = None,
    ) -> None:
        self.dataset = dataset
        self.labeller = labeller or HarmfulnessLabeller.shared(dataset)
        self._pleroma_domains = {
            record.domain for record in dataset.pleroma_instances()
        }
        self._label_cache: dict[str, list[UserLabel]] = {}
        self._rejected_cache: list[str] | None = None
        self._with_posts_cache: list[str] | None = None
        self._analysed_cache: list[str] | None = None
        self._analysed_labels_cache: list[UserLabel] | None = None
        self._analysed_max_scores_cache: list[float] | None = None
        self._breakdown_cache: dict[float, list[InstanceCollateral]] = {}

    # ------------------------------------------------------------------ #
    # Scope: rejected Pleroma instances with collected posts, multi-user
    # ------------------------------------------------------------------ #
    def rejected_pleroma_domains(self) -> list[str]:
        """Return every rejected Pleroma domain."""
        if self._rejected_cache is None:
            self._rejected_cache = [
                domain
                for domain in self.dataset.rejected_domains()
                if domain in self._pleroma_domains
            ]
        return list(self._rejected_cache)

    def domains_with_posts(self) -> list[str]:
        """Return rejected Pleroma domains for which posts were collected."""
        if self._with_posts_cache is None:
            self._with_posts_cache = [
                domain
                for domain in self.rejected_pleroma_domains()
                if self.dataset.posts_from(domain)
            ]
        return list(self._with_posts_cache)

    def analysed_domains(self) -> list[str]:
        """Return the domains entering the collateral analysis.

        Following the paper, single-user instances are excluded: a single
        harmful admin-owner is not collateral damage.  The scope — like the
        user labels behind it — only depends on the dataset, never on a
        threshold, so it is computed once per analyzer.
        """
        if self._analysed_cache is None:
            self._analysed_cache = [
                domain
                for domain in self.domains_with_posts()
                if len(self._labels_for(domain)) > 1
            ]
        return list(self._analysed_cache)

    def _labels_for(self, domain: str) -> list[UserLabel]:
        if domain not in self._label_cache:
            self._label_cache[domain] = self.labeller.label_users_on(domain)
        return self._label_cache[domain]

    def _analysed_labels(self) -> list[UserLabel]:
        """Return every analysed instance's user labels as one flat list.

        This is the per-user mean-score-vector table the whole Table 2
        sweep derives from: each sweep point only re-thresholds these cached
        vectors instead of re-running the aggregation.
        """
        if self._analysed_labels_cache is None:
            self._analysed_labels_cache = [
                label
                for domain in self.analysed_domains()
                for label in self._labels_for(domain)
            ]
        return self._analysed_labels_cache

    def _analysed_max_scores(self) -> list[float]:
        """Return each analysed user's maximum mean attribute score.

        A user is harmful at ``threshold`` iff their max mean score reaches
        it, so this float vector is all a sweep point needs to look at.
        """
        if self._analysed_max_scores_cache is None:
            self._analysed_max_scores_cache = [
                label.mean_scores.max_score for label in self._analysed_labels()
            ]
        return self._analysed_max_scores_cache

    # ------------------------------------------------------------------ #
    # Figure 6: per-instance user labels
    # ------------------------------------------------------------------ #
    def per_instance_breakdown(
        self, threshold: float = HARMFUL_THRESHOLD
    ) -> list[InstanceCollateral]:
        """Return the Figure 6 stacked bars, sorted by labelled users."""
        cached = self._breakdown_cache.get(threshold)
        if cached is not None:
            return [replace(row) for row in cached]
        rows = []
        for domain in self.analysed_domains():
            labels = self._labels_for(domain)
            row = InstanceCollateral(domain=domain)
            for label in labels:
                attributes = label.harmful_attributes(threshold)
                if attributes:
                    row.harmful_users += 1
                    if Attribute.TOXICITY in attributes:
                        row.toxic_users += 1
                    if Attribute.PROFANITY in attributes:
                        row.profane_users += 1
                    if Attribute.SEXUALLY_EXPLICIT in attributes:
                        row.sexually_explicit_users += 1
                else:
                    row.non_harmful_users += 1
            rows.append(row)
        rows.sort(key=lambda row: (-row.labelled_users, row.domain))
        self._breakdown_cache[threshold] = rows
        return [replace(row) for row in rows]

    # ------------------------------------------------------------------ #
    # Section 5 scalars + Table 2 threshold sweep
    # ------------------------------------------------------------------ #
    def summary(self, threshold: float = HARMFUL_THRESHOLD) -> CollateralSummary:
        """Compute the Section 5 collateral-damage summary."""
        summary = CollateralSummary(threshold=threshold)
        rejected = self.rejected_pleroma_domains()
        with_posts = self.domains_with_posts()
        summary.rejected_pleroma_instances = len(rejected)
        summary.rejected_with_posts = len(with_posts)
        summary.rejected_with_posts_share = (
            len(with_posts) / len(rejected) if rejected else 0.0
        )
        single_user = [
            domain for domain in with_posts if len(self._labels_for(domain)) == 1
        ]
        summary.single_user_instances = len(single_user)
        summary.single_user_share = (
            len(single_user) / len(with_posts) if with_posts else 0.0
        )

        summary.per_instance = self.per_instance_breakdown(threshold)
        summary.analysed_instances = len(summary.per_instance)

        attribute_counts = {attribute.value: 0 for attribute in Attribute}
        for label in self._analysed_labels():
            summary.labelled_users += 1
            summary.labelled_posts += label.post_count
            summary.harmful_posts += label.harmful_post_count
            attributes = label.harmful_attributes(threshold)
            if attributes:
                summary.harmful_users += 1
                for attribute in attributes:
                    attribute_counts[attribute.value] += 1

        if summary.labelled_users:
            summary.harmful_user_share = summary.harmful_users / summary.labelled_users
            summary.non_harmful_user_share = 1.0 - summary.harmful_user_share
        non_harmful_posts = summary.labelled_posts - summary.harmful_posts
        summary.harmful_post_ratio = (
            summary.harmful_posts / non_harmful_posts if non_harmful_posts else 0.0
        )
        if summary.harmful_users:
            summary.attribute_shares = {
                name: count / summary.harmful_users
                for name, count in attribute_counts.items()
            }
        return summary

    def threshold_sweep(
        self, thresholds: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)
    ) -> dict[float, float]:
        """Return the Table 2 sweep: threshold -> non-harmful user share.

        Every post is scored exactly once (the labeller memoizes per-user
        mean score vectors); each sweep point is then a single pass over the
        cached label list rather than a full :meth:`summary` recomputation.
        The arithmetic mirrors :meth:`summary` exactly: ``1.0 - harmful /
        labelled``, and ``0.0`` when nothing was labelled.
        """
        max_scores = self._analysed_max_scores()
        count = len(max_scores)
        sweep = {}
        for threshold in thresholds:
            if count:
                harmful = sum(1 for score in max_scores if score >= threshold)
                sweep[threshold] = 1.0 - harmful / count
            else:
                sweep[threshold] = 0.0
        return sweep

    def invalidate_caches(self) -> None:
        """Drop every derived cache (after the dataset or labeller changed).

        Also drops the labeller's memoized user labels and re-snapshots the
        Pleroma domain set, so the next computation sees the dataset as it
        is now rather than as it was at construction time.
        """
        self.labeller.invalidate_labels()
        self._pleroma_domains = {
            record.domain for record in self.dataset.pleroma_instances()
        }
        self._label_cache.clear()
        self._breakdown_cache.clear()
        self._rejected_cache = None
        self._with_posts_cache = None
        self._analysed_cache = None
        self._analysed_labels_cache = None
        self._analysed_max_scores_cache = None
