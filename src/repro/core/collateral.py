"""Collateral-damage quantification (Section 5, Figure 6, Table 2).

The question: of all the users blocked because their instance received a
``reject``, how many actually post harmful content?  The paper finds only
4.2% do at the 0.8 Perspective threshold — i.e. 95.8% of blocked users are
"innocent" collateral damage — and shows the result is robust across
thresholds (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.harmfulness import HarmfulnessLabeller, UserLabel
from repro.datasets.store import Dataset
from repro.perspective.attributes import Attribute, HARMFUL_THRESHOLD


@dataclass
class InstanceCollateral:
    """The Figure 6 bar for one rejected instance."""

    domain: str
    toxic_users: int = 0
    profane_users: int = 0
    sexually_explicit_users: int = 0
    harmful_users: int = 0
    non_harmful_users: int = 0

    @property
    def labelled_users(self) -> int:
        """Return how many users on the instance were labelled."""
        return self.harmful_users + self.non_harmful_users

    def as_row(self) -> dict[str, object]:
        """Return the instance as a flat table row."""
        return {
            "domain": self.domain,
            "toxic": self.toxic_users,
            "profane": self.profane_users,
            "sexually_explicit": self.sexually_explicit_users,
            "harmful": self.harmful_users,
            "non_harmful": self.non_harmful_users,
        }


@dataclass
class CollateralSummary:
    """The Section 5 scalars."""

    threshold: float = HARMFUL_THRESHOLD
    rejected_pleroma_instances: int = 0
    rejected_with_posts: int = 0
    rejected_with_posts_share: float = 0.0
    single_user_instances: int = 0
    single_user_share: float = 0.0
    analysed_instances: int = 0
    labelled_users: int = 0
    labelled_posts: int = 0
    harmful_users: int = 0
    harmful_user_share: float = 0.0
    non_harmful_user_share: float = 0.0
    harmful_posts: int = 0
    harmful_post_ratio: float = 0.0
    attribute_shares: dict[str, float] = field(default_factory=dict)
    per_instance: list[InstanceCollateral] = field(default_factory=list)


class CollateralAnalyzer:
    """Quantify collateral damage on rejected Pleroma instances."""

    def __init__(
        self,
        dataset: Dataset,
        labeller: HarmfulnessLabeller | None = None,
    ) -> None:
        self.dataset = dataset
        self.labeller = labeller or HarmfulnessLabeller(dataset)
        self._pleroma_domains = {
            record.domain for record in dataset.pleroma_instances()
        }
        self._label_cache: dict[str, list[UserLabel]] = {}

    # ------------------------------------------------------------------ #
    # Scope: rejected Pleroma instances with collected posts, multi-user
    # ------------------------------------------------------------------ #
    def rejected_pleroma_domains(self) -> list[str]:
        """Return every rejected Pleroma domain."""
        return [
            domain
            for domain in self.dataset.rejected_domains()
            if domain in self._pleroma_domains
        ]

    def domains_with_posts(self) -> list[str]:
        """Return rejected Pleroma domains for which posts were collected."""
        return [
            domain
            for domain in self.rejected_pleroma_domains()
            if self.dataset.posts_from(domain)
        ]

    def analysed_domains(self) -> list[str]:
        """Return the domains entering the collateral analysis.

        Following the paper, single-user instances are excluded: a single
        harmful admin-owner is not collateral damage.
        """
        domains = []
        for domain in self.domains_with_posts():
            labels = self._labels_for(domain)
            if len(labels) > 1:
                domains.append(domain)
        return domains

    def _labels_for(self, domain: str) -> list[UserLabel]:
        if domain not in self._label_cache:
            self._label_cache[domain] = self.labeller.label_users_on(domain)
        return self._label_cache[domain]

    # ------------------------------------------------------------------ #
    # Figure 6: per-instance user labels
    # ------------------------------------------------------------------ #
    def per_instance_breakdown(
        self, threshold: float = HARMFUL_THRESHOLD
    ) -> list[InstanceCollateral]:
        """Return the Figure 6 stacked bars, sorted by labelled users."""
        rows = []
        for domain in self.analysed_domains():
            labels = self._labels_for(domain)
            row = InstanceCollateral(domain=domain)
            for label in labels:
                attributes = label.harmful_attributes(threshold)
                if attributes:
                    row.harmful_users += 1
                    if Attribute.TOXICITY in attributes:
                        row.toxic_users += 1
                    if Attribute.PROFANITY in attributes:
                        row.profane_users += 1
                    if Attribute.SEXUALLY_EXPLICIT in attributes:
                        row.sexually_explicit_users += 1
                else:
                    row.non_harmful_users += 1
            rows.append(row)
        rows.sort(key=lambda row: (-row.labelled_users, row.domain))
        return rows

    # ------------------------------------------------------------------ #
    # Section 5 scalars + Table 2 threshold sweep
    # ------------------------------------------------------------------ #
    def summary(self, threshold: float = HARMFUL_THRESHOLD) -> CollateralSummary:
        """Compute the Section 5 collateral-damage summary."""
        summary = CollateralSummary(threshold=threshold)
        rejected = self.rejected_pleroma_domains()
        with_posts = self.domains_with_posts()
        summary.rejected_pleroma_instances = len(rejected)
        summary.rejected_with_posts = len(with_posts)
        summary.rejected_with_posts_share = (
            len(with_posts) / len(rejected) if rejected else 0.0
        )
        single_user = [
            domain for domain in with_posts if len(self._labels_for(domain)) == 1
        ]
        summary.single_user_instances = len(single_user)
        summary.single_user_share = (
            len(single_user) / len(with_posts) if with_posts else 0.0
        )

        summary.per_instance = self.per_instance_breakdown(threshold)
        summary.analysed_instances = len(summary.per_instance)

        attribute_counts = {attribute.value: 0 for attribute in Attribute}
        for domain in self.analysed_domains():
            for label in self._labels_for(domain):
                summary.labelled_users += 1
                summary.labelled_posts += label.post_count
                summary.harmful_posts += label.harmful_post_count
                attributes = label.harmful_attributes(threshold)
                if attributes:
                    summary.harmful_users += 1
                    for attribute in attributes:
                        attribute_counts[attribute.value] += 1

        if summary.labelled_users:
            summary.harmful_user_share = summary.harmful_users / summary.labelled_users
            summary.non_harmful_user_share = 1.0 - summary.harmful_user_share
        non_harmful_posts = summary.labelled_posts - summary.harmful_posts
        summary.harmful_post_ratio = (
            summary.harmful_posts / non_harmful_posts if non_harmful_posts else 0.0
        )
        if summary.harmful_users:
            summary.attribute_shares = {
                name: count / summary.harmful_users
                for name, count in attribute_counts.items()
            }
        return summary

    def threshold_sweep(
        self, thresholds: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)
    ) -> dict[float, float]:
        """Return the Table 2 sweep: threshold -> non-harmful user share."""
        sweep = {}
        for threshold in thresholds:
            sweep[threshold] = self.summary(threshold).non_harmful_user_share
        return sweep
