"""The SimplePolicy action breakdown (Figures 2 and 3).

Figure 2 counts, for each SimplePolicy action, how many instances are
*targeted* by it (split into Pleroma and non-Pleroma) plus the users on the
targeted Pleroma instances.  Figure 3 counts how many instances *apply* each
action, again with the users on the instances they target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.store import Dataset
from repro.mrf.simple import SimplePolicyAction


@dataclass(frozen=True)
class ActionBreakdown:
    """Usage of one SimplePolicy action across the federation."""

    action: str
    targeting_instances: int
    targeted_instances: int
    targeted_pleroma: int
    targeted_non_pleroma: int
    users_on_targeted_pleroma: int

    def as_row(self) -> dict[str, object]:
        """Return the breakdown as a flat table row."""
        return {
            "action": self.action,
            "targeting_instances": self.targeting_instances,
            "targeted_instances": self.targeted_instances,
            "targeted_pleroma": self.targeted_pleroma,
            "targeted_non_pleroma": self.targeted_non_pleroma,
            "users_on_targeted_pleroma": self.users_on_targeted_pleroma,
        }


class SimplePolicyAnalyzer:
    """Analyse SimplePolicy usage over a crawled dataset."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self._pleroma_domains = {record.domain for record in dataset.pleroma_instances()}
        self._user_counts = {
            record.domain: record.user_count for record in dataset.pleroma_instances()
        }

    # ------------------------------------------------------------------ #
    # Scope
    # ------------------------------------------------------------------ #
    def instances_with_simplepolicy(self) -> list[str]:
        """Return the domains that enable the SimplePolicy."""
        return self.dataset.instances_with_policy("SimplePolicy")

    def reject_adoption_share(self) -> float:
        """Return the share of SimplePolicy instances using the reject action
        (paper: 73%)."""
        enabled = set(self.instances_with_simplepolicy())
        if not enabled:
            return 0.0
        rejecting = {
            edge.source for edge in self.dataset.edges_by_action("reject")
        } & enabled
        return len(rejecting) / len(enabled)

    # ------------------------------------------------------------------ #
    # Per-action breakdown
    # ------------------------------------------------------------------ #
    def action_breakdown(self, action: str) -> ActionBreakdown:
        """Return the Figure 2/3 numbers for one action."""
        edges = self.dataset.edges_by_action(action)
        sources = {edge.source for edge in edges}
        targets = {edge.target for edge in edges}
        targeted_pleroma = {t for t in targets if t in self._pleroma_domains}
        users = sum(self._user_counts.get(domain, 0) for domain in targeted_pleroma)
        return ActionBreakdown(
            action=action,
            targeting_instances=len(sources),
            targeted_instances=len(targets),
            targeted_pleroma=len(targeted_pleroma),
            targeted_non_pleroma=len(targets) - len(targeted_pleroma),
            users_on_targeted_pleroma=users,
        )

    def full_breakdown(self) -> list[ActionBreakdown]:
        """Return the breakdown for every SimplePolicy action.

        Sorted by the number of targeted instances, which is the order the
        paper's Figure 2 uses.
        """
        rows = [
            self.action_breakdown(action.value) for action in SimplePolicyAction
        ]
        rows.sort(key=lambda row: (-row.targeted_instances, row.action))
        return rows

    def action_event_shares(self) -> dict[str, float]:
        """Return each action's share of all moderation events.

        The paper reports reject making up 62.8% of moderation events with
        the other nine actions sharing the remaining 37.2%.
        """
        total = len(self.dataset.reject_edges)
        if not total:
            return {}
        shares: dict[str, float] = {}
        for action in SimplePolicyAction:
            count = len(self.dataset.edges_by_action(action.value))
            shares[action.value] = count / total
        return shares

    def media_removal_user_share(self) -> float:
        """Return the share of users on instances targeted by media_removal
        (paper: 23.3%)."""
        total_users = sum(
            record.user_count for record in self.dataset.reachable_pleroma_instances()
        )
        if not total_users:
            return 0.0
        breakdown = self.action_breakdown("media_removal")
        return breakdown.users_on_targeted_pleroma / total_users
