"""The Section 7 strawman moderation policies and their evaluation.

The paper sketches alternatives to blanket instance-level rejects:

1. tagging posts NSFW instead of blocking them,
2. removing only the media of targeted instances,
3. curated block-lists limited to instances where collateral damage is low,
4. per-user moderation (the TagPolicy granularity), and
5. automatic escalation against repeat offenders.

This module evaluates each strategy on the crawled dataset, reporting how
much harmful content it suppresses and how many innocent users it hits —
the trade-off the paper argues administrators should be looking at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.collateral import CollateralAnalyzer
from repro.core.harmfulness import HarmfulnessLabeller, UserLabel
from repro.datasets.store import Dataset
from repro.perspective.attributes import HARMFUL_THRESHOLD


class ModerationStrategy(str, Enum):
    """The moderation strategies compared in the solution space."""

    INSTANCE_REJECT = "instance_reject"
    MEDIA_REMOVAL = "media_removal"
    NSFW_TAGGING = "nsfw_tagging"
    CURATED_BLOCKLIST = "curated_blocklist"
    PER_USER_TAGGING = "per_user_tagging"
    REPEAT_OFFENDER_ESCALATION = "repeat_offender_escalation"


@dataclass
class StrategyOutcome:
    """The cost/benefit profile of one moderation strategy."""

    strategy: ModerationStrategy
    labelled_users: int = 0
    harmful_users: int = 0
    users_blocked: int = 0
    innocent_users_blocked: int = 0
    harmful_users_blocked: int = 0
    harmful_posts_total: int = 0
    harmful_posts_suppressed: int = 0
    benign_posts_suppressed: int = 0

    @property
    def collateral_share(self) -> float:
        """Share of blocked users who are innocent (the paper's 95.8%)."""
        return self.innocent_users_blocked / self.users_blocked if self.users_blocked else 0.0

    @property
    def innocent_block_share(self) -> float:
        """Share of all innocent users who end up blocked."""
        innocent_total = self.labelled_users - self.harmful_users
        return self.innocent_users_blocked / innocent_total if innocent_total else 0.0

    @property
    def harmful_coverage(self) -> float:
        """Share of harmful users that the strategy acts on."""
        return self.harmful_users_blocked / self.harmful_users if self.harmful_users else 0.0

    @property
    def harmful_post_suppression(self) -> float:
        """Share of harmful posts suppressed (blocked, stripped or hidden)."""
        return (
            self.harmful_posts_suppressed / self.harmful_posts_total
            if self.harmful_posts_total
            else 0.0
        )

    def as_row(self) -> dict[str, object]:
        """Return the outcome as a flat table row."""
        return {
            "strategy": self.strategy.value,
            "users_blocked": self.users_blocked,
            "collateral_share": self.collateral_share,
            "innocent_block_share": self.innocent_block_share,
            "harmful_coverage": self.harmful_coverage,
            "harmful_post_suppression": self.harmful_post_suppression,
            "benign_posts_suppressed": self.benign_posts_suppressed,
        }


@dataclass
class SolutionComparison:
    """Outcomes of every strategy, plus the scope they were evaluated on."""

    analysed_instances: int = 0
    outcomes: list[StrategyOutcome] = field(default_factory=list)

    def outcome(self, strategy: ModerationStrategy) -> StrategyOutcome:
        """Return the outcome of one strategy."""
        for outcome in self.outcomes:
            if outcome.strategy is strategy:
                return outcome
        raise KeyError(strategy)

    def best_tradeoff(self) -> StrategyOutcome:
        """Return the strategy with the best harm-coverage minus collateral."""
        return max(
            self.outcomes,
            key=lambda o: o.harmful_post_suppression - o.innocent_block_share,
        )


class SolutionEvaluator:
    """Evaluate the strawman strategies over the collateral-analysis scope."""

    def __init__(
        self,
        dataset: Dataset,
        labeller: HarmfulnessLabeller | None = None,
        threshold: float = HARMFUL_THRESHOLD,
        media_harm_share: float = 0.6,
        curated_harmful_post_share: float = 0.25,
        repeat_offender_limit: int = 3,
    ) -> None:
        self.dataset = dataset
        self.labeller = labeller or HarmfulnessLabeller.shared(dataset)
        self.threshold = threshold
        #: Share of a sexually-explicit instance's harm carried by media (the
        #: paper notes most of that material is in media form, so media
        #: removal neutralises it).
        self.media_harm_share = media_harm_share
        #: Harmful-post share above which a curated list would block an instance.
        self.curated_harmful_post_share = curated_harmful_post_share
        #: Number of harmful posts after which escalation kicks in.
        self.repeat_offender_limit = repeat_offender_limit
        self._collateral = CollateralAnalyzer(dataset, self.labeller)

    # ------------------------------------------------------------------ #
    # Scope
    # ------------------------------------------------------------------ #
    def _scope(self) -> dict[str, list[UserLabel]]:
        """Return the labelled users per analysed rejected instance."""
        scope: dict[str, list[UserLabel]] = {}
        for domain in self._collateral.analysed_domains():
            scope[domain] = self.labeller.label_users_on(domain)
        return scope

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def compare(
        self, strategies: tuple[ModerationStrategy, ...] = tuple(ModerationStrategy)
    ) -> SolutionComparison:
        """Evaluate all ``strategies`` over the same scope."""
        scope = self._scope()
        comparison = SolutionComparison(analysed_instances=len(scope))
        for strategy in strategies:
            comparison.outcomes.append(self._evaluate(strategy, scope))
        return comparison

    def evaluate(self, strategy: ModerationStrategy) -> StrategyOutcome:
        """Evaluate a single strategy."""
        return self._evaluate(strategy, self._scope())

    def _evaluate(
        self, strategy: ModerationStrategy, scope: dict[str, list[UserLabel]]
    ) -> StrategyOutcome:
        outcome = StrategyOutcome(strategy=strategy)
        for domain, labels in scope.items():
            instance_blocked = self._instance_blocked(strategy, domain, labels)
            for label in labels:
                outcome.labelled_users += 1
                harmful = label.is_harmful(self.threshold)
                if harmful:
                    outcome.harmful_users += 1
                outcome.harmful_posts_total += label.harmful_post_count

                blocked = self._user_blocked(strategy, instance_blocked, label, harmful)
                if blocked:
                    outcome.users_blocked += 1
                    if harmful:
                        outcome.harmful_users_blocked += 1
                    else:
                        outcome.innocent_users_blocked += 1

                suppressed_harmful, suppressed_benign = self._posts_suppressed(
                    strategy, domain, label, blocked, harmful
                )
                outcome.harmful_posts_suppressed += suppressed_harmful
                outcome.benign_posts_suppressed += suppressed_benign
        return outcome

    # ------------------------------------------------------------------ #
    # Strategy semantics
    # ------------------------------------------------------------------ #
    def _instance_blocked(
        self, strategy: ModerationStrategy, domain: str, labels: list[UserLabel]
    ) -> bool:
        """Return whether the strategy blocks the whole instance."""
        if strategy is ModerationStrategy.INSTANCE_REJECT:
            return True
        if strategy is ModerationStrategy.CURATED_BLOCKLIST:
            harmful_posts = sum(label.harmful_post_count for label in labels)
            total_posts = sum(label.post_count for label in labels)
            if not total_posts:
                return False
            return harmful_posts / total_posts >= self.curated_harmful_post_share
        return False

    def _user_blocked(
        self,
        strategy: ModerationStrategy,
        instance_blocked: bool,
        label: UserLabel,
        harmful: bool,
    ) -> bool:
        """Return whether the strategy blocks this particular user."""
        if strategy in (
            ModerationStrategy.INSTANCE_REJECT,
            ModerationStrategy.CURATED_BLOCKLIST,
        ):
            return instance_blocked
        if strategy is ModerationStrategy.PER_USER_TAGGING:
            return harmful
        if strategy is ModerationStrategy.REPEAT_OFFENDER_ESCALATION:
            return label.harmful_post_count >= self.repeat_offender_limit
        # Media removal and NSFW tagging never block users outright.
        return False

    def _posts_suppressed(
        self,
        strategy: ModerationStrategy,
        domain: str,
        label: UserLabel,
        blocked: bool,
        harmful: bool,
    ) -> tuple[int, int]:
        """Return (harmful, benign) posts suppressed for this user."""
        benign_posts = label.post_count - label.harmful_post_count
        if blocked:
            return label.harmful_post_count, benign_posts
        if strategy is ModerationStrategy.MEDIA_REMOVAL:
            # Media removal strips attachments: the share of harmful posts
            # whose harm is carried by media is neutralised; text is kept.
            suppressed = int(round(label.harmful_post_count * self._media_share(domain)))
            return suppressed, 0
        if strategy is ModerationStrategy.NSFW_TAGGING:
            # Tagging hides content behind a warning; count it as suppressing
            # harm for timeline browsers, without touching benign posts.
            return label.harmful_post_count, 0
        return 0, 0

    def _media_share(self, domain: str) -> float:
        """Return the share of posts on ``domain`` carrying media."""
        posts = self.dataset.posts_from(domain)
        if not posts:
            return self.media_harm_share
        with_media = sum(1 for post in posts if post.has_media)
        observed = with_media / len(posts)
        # Blend the observed media share with the configured prior so tiny
        # instances do not flip the result on a couple of posts.
        return 0.5 * observed + 0.5 * self.media_harm_share
