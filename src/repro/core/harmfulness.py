"""Perspective-based harmfulness labelling (Section 3 of the paper).

The paper scores every post of every rejected instance on three Perspective
attributes, labels a *post* harmful when any attribute reaches 0.8, and
labels a *user* harmful when the average of their posts reaches 0.8 in any
attribute.  This module applies the same definitions using the offline
Perspective substitute and adds the per-instance aggregation used by
Figures 4 and 6 and Table 1.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from repro.datasets.schema import PostRecord
from repro.datasets.store import Dataset
from repro.perspective.attributes import ATTRIBUTES, Attribute, AttributeScores, HARMFUL_THRESHOLD
from repro.perspective.client import PerspectiveClient
from repro.perspective.corpus import CorpusColumns


@dataclass
class UserLabel:
    """The harmfulness labelling of one user."""

    handle: str
    domain: str
    post_count: int
    mean_scores: AttributeScores
    harmful_post_count: int = 0

    def is_harmful(self, threshold: float = HARMFUL_THRESHOLD) -> bool:
        """Return ``True`` when the user's mean score reaches ``threshold``."""
        return self.mean_scores.is_harmful(threshold)

    def harmful_attributes(self, threshold: float = HARMFUL_THRESHOLD) -> tuple[Attribute, ...]:
        """Return the attributes on which the user is harmful."""
        return self.mean_scores.harmful_attributes(threshold)


@dataclass
class InstanceScores:
    """Post-score aggregation for one instance."""

    domain: str
    post_count: int = 0
    user_count: int = 0
    mean_scores: AttributeScores = field(default_factory=AttributeScores)
    harmful_post_count: int = 0
    user_labels: list[UserLabel] = field(default_factory=list)

    def harmful_user_count(self, threshold: float = HARMFUL_THRESHOLD) -> int:
        """Return how many of the instance's labelled users are harmful."""
        return sum(1 for label in self.user_labels if label.is_harmful(threshold))

    def attribute_mean(self, attribute: Attribute) -> float:
        """Return the instance's mean score for one attribute."""
        return self.mean_scores.get(attribute)


#: dataset -> interned default labeller (see :meth:`HarmfulnessLabeller.shared`).
#: Weakly keyed so a discarded campaign dataset releases its labeller, its
#: client and the materialised corpus columns with it.
_SHARED_LABELLERS: "weakref.WeakKeyDictionary[Dataset, HarmfulnessLabeller]" = (
    weakref.WeakKeyDictionary()
)


class HarmfulnessLabeller:
    """Score posts, users and instances with the Perspective substitute."""

    def __init__(
        self,
        dataset: Dataset,
        client: PerspectiveClient | None = None,
        threshold: float = HARMFUL_THRESHOLD,
        materialise_corpus: bool = True,
    ) -> None:
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be within (0, 1]")
        self.dataset = dataset
        self.client = client or PerspectiveClient()
        self.threshold = threshold
        self.materialise_corpus = materialise_corpus
        self._user_labels: dict[tuple[str, float], UserLabel | None] = {}

    @classmethod
    def shared(cls, dataset: Dataset) -> "HarmfulnessLabeller":
        """Return the interned default labeller of ``dataset``.

        Every analysis component that is not handed an explicit labeller
        (annotation, collateral, reject analysis, solution evaluation)
        shares this one — and with it one Perspective client and one
        materialised :class:`~repro.perspective.corpus.CorpusColumns` —
        instead of each re-scanning the whole post corpus through a
        private client.  Scoring is deterministic, so the shared labels
        are bitwise identical to privately computed ones.  Callers that
        need an isolated configuration (own threshold, quota accounting or
        a mutable lexicon) should construct their own labeller and pass it
        explicitly.
        """
        labeller = _SHARED_LABELLERS.get(dataset)
        if labeller is None:
            labeller = cls(dataset)
            _SHARED_LABELLERS[dataset] = labeller
        return labeller

    # ------------------------------------------------------------------ #
    # Corpus materialisation
    # ------------------------------------------------------------------ #
    @property
    def corpus(self) -> CorpusColumns | None:
        """The corpus columns the shared client serves scores from."""
        return self.client.corpus

    def _materialise_corpus(self) -> None:
        """Materialise score columns for every collected post, once per campaign.

        The first scoring call scans the whole corpus in one batched
        compiled-matcher pass and attaches the resulting
        :class:`~repro.perspective.corpus.CorpusColumns` to the client;
        every later label — and every re-label after
        :meth:`invalidate_labels` — is arithmetic on the cached columns.
        Lexicon mutations bump the version stamp the columns check, so
        they transparently re-scan rather than serve stale hits.  Client
        request accounting, quota and caching are unaffected.
        """
        if (
            not self.materialise_corpus
            or self.client.corpus is not None
            # A bounded-cache client ignores any attached corpus (the
            # columns would defeat its memory bound), so don't build one.
            or self.client.max_cache_size is not None
        ):
            return
        self.client.attach_corpus(
            CorpusColumns(
                self.client.scorer,
                (post.content for post in self.dataset.posts),
            )
        )

    # ------------------------------------------------------------------ #
    # Post-level scoring
    # ------------------------------------------------------------------ #
    def score_post(self, post: PostRecord) -> AttributeScores:
        """Score one post's content."""
        self._materialise_corpus()
        return self.client.analyze(post.content).scores

    def score_posts(self, posts: list[PostRecord]) -> list[AttributeScores]:
        """Score several posts, preserving order."""
        self._materialise_corpus()
        results = self.client.analyze_many([post.content for post in posts])
        return [result.scores for result in results]

    def is_harmful_post(self, post: PostRecord, threshold: float | None = None) -> bool:
        """Return ``True`` when any attribute of the post reaches the threshold."""
        return self.score_post(post).is_harmful(threshold or self.threshold)

    # ------------------------------------------------------------------ #
    # User-level labelling
    # ------------------------------------------------------------------ #
    def label_user(self, handle: str) -> UserLabel | None:
        """Label one user from their collected posts (``None`` if none).

        Labels are memoized per (handle, threshold): the mean score vector
        never depends on a threshold (one memo entry serves every sweep
        point), but ``harmful_post_count`` is computed at ``self.threshold``,
        so changing the labeller's threshold transparently recomputes.
        """
        key = (handle, self.threshold)
        if key in self._user_labels:
            return self._user_labels[key]
        label = self._label_user_uncached(handle)
        self._user_labels[key] = label
        return label

    def _label_user_uncached(self, handle: str) -> UserLabel | None:
        posts = self.dataset.posts_by(handle)
        if not posts:
            return None
        scores = self.score_posts(posts)
        mean = AttributeScores.mean(scores)
        harmful_posts = sum(1 for score in scores if score.is_harmful(self.threshold))
        domain = posts[0].domain
        return UserLabel(
            handle=handle,
            domain=domain,
            post_count=len(posts),
            mean_scores=mean,
            harmful_post_count=harmful_posts,
        )

    def invalidate_labels(self) -> None:
        """Drop memoized user labels (after the dataset or lexicon changed)."""
        self._user_labels.clear()

    def label_users_on(self, domain: str) -> list[UserLabel]:
        """Label every user (with collected posts) registered on ``domain``."""
        labels = []
        handles = {user.handle for user in self.dataset.users_on(domain)}
        for handle in sorted(handles):
            label = self.label_user(handle)
            if label is not None:
                labels.append(label)
        return labels

    # ------------------------------------------------------------------ #
    # Instance-level aggregation
    # ------------------------------------------------------------------ #
    def score_instance(self, domain: str) -> InstanceScores:
        """Aggregate scores for every collected post originating on ``domain``."""
        posts = self.dataset.posts_from(domain)
        result = InstanceScores(domain=domain, post_count=len(posts))
        if not posts:
            return result
        scores = self.score_posts(posts)
        result.mean_scores = AttributeScores.mean(scores)
        result.harmful_post_count = sum(
            1 for score in scores if score.is_harmful(self.threshold)
        )
        result.user_labels = self.label_users_on(domain)
        result.user_count = len(result.user_labels)
        return result

    def score_instances(self, domains: list[str]) -> dict[str, InstanceScores]:
        """Aggregate scores for several instances."""
        return {domain: self.score_instance(domain) for domain in domains}

    # ------------------------------------------------------------------ #
    # Attribute helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def attribute_names() -> tuple[str, ...]:
        """Return the scored attribute names in report order."""
        return tuple(attribute.value for attribute in ATTRIBUTES)
