"""Federation-graph impact of rejects (Section 6).

The paper argues that a ``reject`` can have far-reaching effects on the
instance-level social graph: if an instance relies on another to reach part
of the network, being rejected can cut it off from whole regions of the
fediverse.  This module builds the federation graph from the crawled peer
lists, overlays the reject edges, and quantifies that loss of reachability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.datasets.store import Dataset


@dataclass
class GraphImpact:
    """Reachability impact of the observed reject edges."""

    nodes: int = 0
    federation_edges: int = 0
    reject_edges: int = 0
    baseline_reachable_pairs: int = 0
    post_reject_reachable_pairs: int = 0
    components_before: int = 0
    components_after: int = 0
    #: domain -> fraction of previously reachable instances lost to rejects.
    reachability_loss: dict[str, float] = field(default_factory=dict)

    @property
    def pair_loss_share(self) -> float:
        """Return the overall share of reachable instance pairs lost."""
        if not self.baseline_reachable_pairs:
            return 0.0
        lost = self.baseline_reachable_pairs - self.post_reject_reachable_pairs
        return lost / self.baseline_reachable_pairs

    def most_affected(self, limit: int = 10) -> list[tuple[str, float]]:
        """Return the instances losing the largest share of the network."""
        ranked = sorted(self.reachability_loss.items(), key=lambda item: -item[1])
        return ranked[:limit]


class FederationGraphAnalyzer:
    """Build and analyse the instance-level federation graph."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def federation_graph(self) -> nx.Graph:
        """Return the undirected federation graph from crawled peer lists."""
        graph = nx.Graph()
        for record in self.dataset.all_instances():
            graph.add_node(record.domain, software=record.software)
        for record in self.dataset.all_instances():
            for peer in record.peers:
                if peer != record.domain:
                    graph.add_edge(record.domain, peer)
        return graph

    def reject_graph(self) -> nx.DiGraph:
        """Return the directed reject graph (source rejects target)."""
        graph = nx.DiGraph()
        for edge in self.dataset.edges_by_action("reject"):
            graph.add_edge(edge.source, edge.target)
        return graph

    def graph_without_rejected_links(self) -> nx.Graph:
        """Return the federation graph with rejected federation links removed.

        A reject severs the link between the rejecting and the rejected
        instance: content no longer flows between them.
        """
        graph = self.federation_graph()
        for edge in self.dataset.edges_by_action("reject"):
            if graph.has_edge(edge.source, edge.target):
                graph.remove_edge(edge.source, edge.target)
        return graph

    # ------------------------------------------------------------------ #
    # Impact analysis
    # ------------------------------------------------------------------ #
    @staticmethod
    def _reachable_pairs(graph: nx.Graph) -> int:
        """Return the number of ordered reachable pairs in ``graph``."""
        total = 0
        for component in nx.connected_components(graph):
            size = len(component)
            total += size * (size - 1)
        return total

    def impact(self, per_instance_limit: int | None = 200) -> GraphImpact:
        """Quantify the reachability lost to the observed rejects.

        ``per_instance_limit`` caps how many rejected instances get an
        individual reachability-loss figure (the per-instance computation is
        the expensive part on large graphs).
        """
        before = self.federation_graph()
        after = self.graph_without_rejected_links()

        impact = GraphImpact(
            nodes=before.number_of_nodes(),
            federation_edges=before.number_of_edges(),
            reject_edges=len(self.dataset.edges_by_action("reject")),
            baseline_reachable_pairs=self._reachable_pairs(before),
            post_reject_reachable_pairs=self._reachable_pairs(after),
            components_before=nx.number_connected_components(before),
            components_after=nx.number_connected_components(after),
        )

        rejected = self.dataset.rejected_domains()
        if per_instance_limit is not None:
            rejected = rejected[:per_instance_limit]
        for domain in rejected:
            if domain not in before:
                continue
            reachable_before = len(nx.node_connected_component(before, domain)) - 1
            reachable_after = (
                len(nx.node_connected_component(after, domain)) - 1
                if domain in after
                else 0
            )
            if reachable_before <= 0:
                impact.reachability_loss[domain] = 0.0
            else:
                impact.reachability_loss[domain] = (
                    (reachable_before - reachable_after) / reachable_before
                )
        return impact

    # ------------------------------------------------------------------ #
    # Centrality helpers (used by the graph-impact experiment)
    # ------------------------------------------------------------------ #
    def degree_centrality(self, top: int = 10) -> list[tuple[str, float]]:
        """Return the ``top`` most connected instances."""
        graph = self.federation_graph()
        centrality = nx.degree_centrality(graph)
        ranked = sorted(centrality.items(), key=lambda item: -item[1])
        return ranked[:top]

    def most_rejecting_instances(self, top: int = 10) -> list[tuple[str, int]]:
        """Return the instances applying the most rejects."""
        graph = self.reject_graph()
        ranked = sorted(graph.out_degree(), key=lambda item: -item[1])
        return [(domain, int(degree)) for domain, degree in ranked[:top]]
