"""Characterisation of rejected instances (Section 4.2).

Who gets rejected, how often, how large those instances are, whether they
retaliate, and what their Perspective scores look like — the analysis behind
Figures 4 and 5, Table 1 and the Section 4.2 scalars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from scipy import stats as scipy_stats

from repro.core.harmfulness import HarmfulnessLabeller, InstanceScores
from repro.datasets.store import Dataset


@dataclass
class RejectedInstance:
    """One rejected instance with everything Figure 4/5 and Table 1 report."""

    domain: str
    is_pleroma: bool
    rejects_received: int
    rejects_applied: int = 0
    user_count: int = 0
    post_count: int = 0
    collected_posts: int = 0
    toxicity: float | None = None
    profanity: float | None = None
    sexually_explicit: float | None = None

    def as_row(self) -> dict[str, object]:
        """Return the instance as a flat table row."""
        return {
            "domain": self.domain,
            "pleroma": self.is_pleroma,
            "rejects": self.rejects_received,
            "rejects_applied": self.rejects_applied,
            "users": self.user_count,
            "posts": self.post_count,
            "collected_posts": self.collected_posts,
            "toxicity": self.toxicity,
            "profanity": self.profanity,
            "sexually_explicit": self.sexually_explicit,
        }


@dataclass
class RejectSummary:
    """The Section 4.2 scalars."""

    rejected_total: int = 0
    rejected_pleroma: int = 0
    rejected_non_pleroma: int = 0
    rejected_pleroma_share: float = 0.0
    rejected_user_share: float = 0.0
    rejected_post_share: float = 0.0
    share_rejected_by_fewer_than: float = 0.0
    few_rejects_threshold: int = 10
    elite_share: float = 0.0
    elite_rejects_threshold: int = 20
    elite_user_share: float = 0.0
    elite_post_share: float = 0.0
    spearman_posts_vs_rejects: float = 0.0
    spearman_retaliation: float = 0.0


class RejectAnalyzer:
    """Analyse the reject edges of a crawled dataset."""

    def __init__(
        self,
        dataset: Dataset,
        labeller: HarmfulnessLabeller | None = None,
    ) -> None:
        self.dataset = dataset
        self.labeller = labeller or HarmfulnessLabeller.shared(dataset)
        self._pleroma_domains = {
            record.domain for record in dataset.pleroma_instances()
        }

    # ------------------------------------------------------------------ #
    # Rejected-instance table (Figures 4 and 5, Table 1)
    # ------------------------------------------------------------------ #
    def rejected_instances(self, with_scores: bool = False) -> list[RejectedInstance]:
        """Return every rejected instance, sorted by descending rejects."""
        rows: list[RejectedInstance] = []
        for domain in self.dataset.rejected_domains():
            record = self.dataset.instance(domain)
            is_pleroma = domain in self._pleroma_domains
            collected = self.dataset.posts_from(domain)
            row = RejectedInstance(
                domain=domain,
                is_pleroma=is_pleroma,
                rejects_received=self.dataset.rejects_received(domain),
                rejects_applied=self.dataset.rejects_applied(domain),
                user_count=record.user_count if record else 0,
                post_count=record.status_count if record else 0,
                collected_posts=len(collected),
            )
            rows.append(row)
        rows.sort(key=lambda row: (-row.rejects_received, row.domain))
        if with_scores:
            self._attach_scores(rows)
        return rows

    def rejected_pleroma_instances(self, with_scores: bool = False) -> list[RejectedInstance]:
        """Return only the rejected Pleroma instances (the Figure 4/5 scope)."""
        return [
            row for row in self.rejected_instances(with_scores=with_scores) if row.is_pleroma
        ]

    def top_rejected(self, limit: int = 5, pleroma_only: bool = True) -> list[RejectedInstance]:
        """Return the Table 1 head: the most rejected (Pleroma) instances."""
        rows = (
            self.rejected_pleroma_instances(with_scores=True)
            if pleroma_only
            else self.rejected_instances(with_scores=True)
        )
        return rows[:limit]

    def _attach_scores(self, rows: list[RejectedInstance]) -> None:
        """Attach mean Perspective scores to instances with collected posts."""
        for row in rows:
            if row.collected_posts == 0:
                continue
            scores: InstanceScores = self.labeller.score_instance(row.domain)
            row.toxicity = scores.mean_scores.toxicity
            row.profanity = scores.mean_scores.profanity
            row.sexually_explicit = scores.mean_scores.sexually_explicit

    # ------------------------------------------------------------------ #
    # Scalars (Section 4.2)
    # ------------------------------------------------------------------ #
    def summary(
        self,
        few_rejects_threshold: int = 10,
        elite_rejects_threshold: int = 20,
    ) -> RejectSummary:
        """Compute the Section 4.2 scalars."""
        rows = self.rejected_instances()
        pleroma_rows = [row for row in rows if row.is_pleroma]
        summary = RejectSummary(
            rejected_total=len(rows),
            rejected_pleroma=len(pleroma_rows),
            rejected_non_pleroma=len(rows) - len(pleroma_rows),
            few_rejects_threshold=few_rejects_threshold,
            elite_rejects_threshold=elite_rejects_threshold,
        )

        reachable = self.dataset.reachable_pleroma_instances()
        total_pleroma = len(self.dataset.pleroma_instances())
        total_users = sum(record.user_count for record in reachable)
        total_posts = sum(record.status_count for record in reachable)
        rejected_domains = {row.domain for row in pleroma_rows}
        rejected_users = sum(
            record.user_count for record in reachable if record.domain in rejected_domains
        )
        rejected_posts = sum(
            record.status_count for record in reachable if record.domain in rejected_domains
        )
        summary.rejected_pleroma_share = (
            len(pleroma_rows) / total_pleroma if total_pleroma else 0.0
        )
        summary.rejected_user_share = rejected_users / total_users if total_users else 0.0
        summary.rejected_post_share = rejected_posts / total_posts if total_posts else 0.0

        if rows:
            few = sum(1 for row in rows if row.rejects_received < few_rejects_threshold)
            summary.share_rejected_by_fewer_than = few / len(rows)
            elite = [
                row for row in pleroma_rows if row.rejects_received > elite_rejects_threshold
            ]
            summary.elite_share = len(elite) / len(pleroma_rows) if pleroma_rows else 0.0
            elite_domains = {row.domain for row in elite}
            elite_users = sum(
                record.user_count for record in reachable if record.domain in elite_domains
            )
            elite_posts = sum(
                record.status_count for record in reachable if record.domain in elite_domains
            )
            summary.elite_user_share = elite_users / total_users if total_users else 0.0
            summary.elite_post_share = elite_posts / total_posts if total_posts else 0.0

        summary.spearman_posts_vs_rejects = self.spearman_posts_vs_rejects(pleroma_rows)
        summary.spearman_retaliation = self.spearman_retaliation(pleroma_rows)
        return summary

    # ------------------------------------------------------------------ #
    # Correlations
    # ------------------------------------------------------------------ #
    @staticmethod
    def spearman_posts_vs_rejects(rows: list[RejectedInstance]) -> float:
        """Spearman correlation between post counts and rejects received
        (paper: 0.38, a weak positive correlation)."""
        if len(rows) < 3:
            return 0.0
        posts = [row.post_count for row in rows]
        rejects = [row.rejects_received for row in rows]
        if len(set(posts)) < 2 or len(set(rejects)) < 2:
            return 0.0
        result = scipy_stats.spearmanr(posts, rejects)
        return float(result.correlation)

    @staticmethod
    def spearman_retaliation(rows: list[RejectedInstance]) -> float:
        """Spearman correlation between rejects received and rejects applied
        (paper: -0.033 — rejected instances do not retaliate)."""
        if len(rows) < 3:
            return 0.0
        received = [row.rejects_received for row in rows]
        applied = [row.rejects_applied for row in rows]
        if len(set(received)) < 2 or len(set(applied)) < 2:
            return 0.0
        result = scipy_stats.spearmanr(received, applied)
        return float(result.correlation)
