"""The paper's analysis: policy prevalence, rejects, collateral damage.

This package implements the analytical contribution of the paper on top of
the crawled :class:`~repro.datasets.store.Dataset`:

* :mod:`repro.core.policy_analysis` — which policies instances enable, how
  many instances/users/posts they cover (Figures 1 and 7, Table 3, and the
  Section 4.1 impact scalars);
* :mod:`repro.core.simplepolicy_analysis` — the per-action breakdown of the
  SimplePolicy (Figures 2 and 3);
* :mod:`repro.core.reject_analysis` — who gets rejected and by whom
  (Figures 4 and 5, Table 1, the Section 4.2 scalars);
* :mod:`repro.core.harmfulness` — Perspective-based labelling of posts,
  users and instances (Section 3's harmful classification);
* :mod:`repro.core.collateral` — the collateral-damage quantification
  (Section 5, Figure 6, Table 2);
* :mod:`repro.core.annotation` — the categorical annotation of rejected
  instances (Section 4.2, "Why are instances blocked?");
* :mod:`repro.core.federation_graph` — the federation-graph impact of
  rejects (Section 6);
* :mod:`repro.core.solutions` — the Section 7 strawman policies and their
  evaluation.
"""

from repro.core.policy_analysis import PolicyPrevalence, PolicyAnalyzer, PolicyImpact
from repro.core.simplepolicy_analysis import ActionBreakdown, SimplePolicyAnalyzer
from repro.core.reject_analysis import RejectAnalyzer, RejectedInstance, RejectSummary
from repro.core.harmfulness import HarmfulnessLabeller, InstanceScores, UserLabel
from repro.core.collateral import CollateralAnalyzer, CollateralSummary
from repro.core.annotation import InstanceAnnotator, AnnotationSummary
from repro.core.federation_graph import FederationGraphAnalyzer, GraphImpact
from repro.core.solutions import (
    ModerationStrategy,
    SolutionEvaluator,
    StrategyOutcome,
)

__all__ = [
    "PolicyPrevalence",
    "PolicyAnalyzer",
    "PolicyImpact",
    "ActionBreakdown",
    "SimplePolicyAnalyzer",
    "RejectAnalyzer",
    "RejectedInstance",
    "RejectSummary",
    "HarmfulnessLabeller",
    "InstanceScores",
    "UserLabel",
    "CollateralAnalyzer",
    "CollateralSummary",
    "InstanceAnnotator",
    "AnnotationSummary",
    "FederationGraphAnalyzer",
    "GraphImpact",
    "ModerationStrategy",
    "SolutionEvaluator",
    "StrategyOutcome",
]
