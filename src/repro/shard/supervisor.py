"""Supervised shard execution: worker fault tolerance with exact recovery.

The plain forked engine (:func:`repro.shard.engine._run_forked`) trusts
its workers: a worker that dies aborts the run, and one that hangs blocks
the coordinator forever on a blocking ``recv``.  The
:class:`ShardSupervisor` removes both failure modes without giving up the
engine's determinism guarantee:

* **Deadlines, not blocking reads.**  The coordinator polls each shard's
  result pipe; workers send periodic ``("hb", batches_done)`` heartbeats,
  so the deadline measures *inactivity* — a shard may run arbitrarily
  long as long as it keeps making progress, while a hung worker trips the
  deadline no matter how much work remains.
* **Failure classification.**  Every way a worker can fail maps to one of
  four kinds: ``error`` (the worker caught an exception and reported a
  clean traceback), ``eof`` (the process died — crash, ``os._exit``,
  SIGKILL — and the pipe closed), ``deadline`` (no message within the
  inactivity deadline) and ``corrupt`` (the result bytes did not unpickle
  into the shard's :class:`~repro.shard.state.ShardResult`).
* **Deterministic re-execution.**  Each shard's batch slice is a pure
  function of the partition, and a dead worker's mutations die with its
  copy-on-write heap — the coordinator's registry is untouched.  A failed
  shard is therefore simply run again: first in fresh forked workers
  (bounded retries, each with an escalated deadline), finally inline in
  the coordinator, which cannot fail the same way.  Whatever the attempt
  history, the shard's capture — and hence the merged state — is
  bit-identical to a fault-free run.

Fault injection rides in through a
:class:`~repro.faults.workers.WorkerFaultPlan`: the supervisor asks the
plan which death to script for each (shard, attempt) and passes it to the
worker body, the same pattern :class:`~repro.faults.injector.FaultInjector`
uses to wrap the API server.  :class:`RecoveryStats` records every
attempt (shard, attempt index, execution mode, outcome, wall-clock) for
the ``shard_chaos`` bench stage and the tests.
"""

from __future__ import annotations

import gc
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.faults.workers import WorkerFaultPlan
from repro.shard.engine import _execute_shard, _shard_worker, reap_process
from repro.shard.state import ShardResult, valid_shard_result

#: Classified worker-failure kinds (the ``outcome`` values of a failed
#: :class:`ShardAttempt`; successful attempts record ``"ok"``).
FAILURE_KINDS = ("error", "eof", "deadline", "corrupt")


@dataclass(frozen=True)
class SupervisorConfig:
    """The supervision knobs.

    ``deadline_seconds`` bounds worker *inactivity*, not total runtime:
    any message (heartbeat or result) resets the clock, and workers beat
    every ``heartbeat_seconds`` while delivering.  Each forked retry
    multiplies the deadline by ``deadline_multiplier`` — a shard that
    genuinely needs longer gets longer before the coordinator gives up on
    forks entirely.  ``max_worker_attempts`` forked attempts are made per
    shard before the inline fallback (which cannot hang or crash the
    coordinator's merge).
    """

    #: Inactivity deadline of a worker's first attempt, in wall seconds.
    deadline_seconds: float = 30.0
    #: Deadline escalation factor per forked retry.
    deadline_multiplier: float = 2.0
    #: Forked attempts per shard (first try included) before inline.
    max_worker_attempts: int = 2
    #: Poll granularity of the supervision loop.
    poll_seconds: float = 0.05
    #: Interval between worker heartbeats while delivering.
    heartbeat_seconds: float = 0.25
    #: Grace given to a *successful* worker to exit on its own before the
    #: terminate/kill escalation (failed workers are torn down at once).
    join_grace_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if self.deadline_multiplier < 1.0:
            raise ValueError("deadline_multiplier must be at least 1")
        if self.max_worker_attempts < 1:
            raise ValueError("max_worker_attempts must be at least 1")
        if self.poll_seconds <= 0:
            raise ValueError("poll_seconds must be positive")
        if self.heartbeat_seconds <= 0:
            raise ValueError("heartbeat_seconds must be positive")

    def deadline_for(self, attempt: int) -> float:
        """Return the inactivity deadline of forked attempt ``attempt``."""
        return self.deadline_seconds * self.deadline_multiplier**attempt


@dataclass(frozen=True)
class ShardAttempt:
    """One delivery attempt of one shard, as the supervisor saw it."""

    shard: int
    #: 0-based attempt index (0 = the initial worker).
    attempt: int
    #: ``"fork"`` or ``"inline"``.
    mode: str
    #: ``"ok"`` or a failure kind from :data:`FAILURE_KINDS`.
    outcome: str
    elapsed_seconds: float
    #: Failure detail (traceback snippet / exception repr), ``""`` on ok.
    detail: str = ""


@dataclass
class RecoveryStats:
    """Everything a supervised run did to survive its workers.

    Plain dataclasses throughout, so the stats ride inside
    :class:`~repro.shard.engine.ShardedRunResult` and pickle cleanly.
    """

    n_shards: int = 0
    attempts: list[ShardAttempt] = field(default_factory=list)

    def record(
        self,
        shard: int,
        attempt: int,
        mode: str,
        outcome: str,
        elapsed_seconds: float,
        detail: str = "",
    ) -> None:
        """Append one attempt record."""
        self.attempts.append(
            ShardAttempt(
                shard=shard,
                attempt=attempt,
                mode=mode,
                outcome=outcome,
                elapsed_seconds=elapsed_seconds,
                detail=detail,
            )
        )

    def shard_attempts(self, shard: int) -> tuple[ShardAttempt, ...]:
        """Return ``shard``'s attempts in execution order."""
        return tuple(a for a in self.attempts if a.shard == shard)

    @property
    def retries(self) -> int:
        """Attempts beyond each shard's first (fork retries + fallbacks)."""
        return sum(1 for a in self.attempts if a.attempt > 0)

    @property
    def failures(self) -> dict[str, int]:
        """Failed attempts by classified kind."""
        counts: dict[str, int] = {}
        for a in self.attempts:
            if a.outcome != "ok":
                counts[a.outcome] = counts.get(a.outcome, 0) + 1
        return counts

    @property
    def failed_shards(self) -> tuple[int, ...]:
        """Shards whose first attempt did not succeed, ascending."""
        return tuple(
            sorted({a.shard for a in self.attempts if a.outcome != "ok"})
        )

    @property
    def recovered_shards(self) -> tuple[int, ...]:
        """Failed shards that a later attempt completed, ascending."""
        ok = {a.shard for a in self.attempts if a.outcome == "ok"}
        return tuple(s for s in self.failed_shards if s in ok)

    @property
    def inline_fallbacks(self) -> int:
        """Shards the supervisor had to re-execute in the coordinator."""
        return sum(
            1 for a in self.attempts if a.mode == "inline" and a.attempt > 0
        )

    @property
    def retry_seconds(self) -> float:
        """Wall-clock spent on attempts beyond each shard's first —
        the run's recovery overhead (failed first attempts are part of
        the run either way; everything after them is the price of the
        faults)."""
        return sum(a.elapsed_seconds for a in self.attempts if a.attempt > 0)


@dataclass
class _Worker:
    """One live forked worker and its coordinator-side pipe ends."""

    process: object
    in_send: object
    out_recv: object
    #: Set when shipping the batch slice failed (worker died pre-recv).
    ship_error: str = ""


class ShardSupervisor:
    """Run forked shard workers under deadlines, retries and a fallback."""

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        faults: WorkerFaultPlan | None = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.faults = faults

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self, registry, shard: int, n_shards: int, attempt: int) -> _Worker:
        """Fork one worker for ``shard``'s ``attempt``, fault-scripted."""
        ctx = multiprocessing.get_context("fork")
        fault = None
        if self.faults is not None:
            kind = self.faults.fault_for(shard, attempt)
            fault = kind.value if kind is not None else None
        in_recv, in_send = ctx.Pipe(duplex=False)
        out_recv, out_send = ctx.Pipe(duplex=False)
        # Freeze the heap into the permanent generation around the fork,
        # exactly as the unsupervised engine does, so the parent's
        # collections never copy the child's inherited pages.
        gc.freeze()
        try:
            process = ctx.Process(
                target=_shard_worker,
                args=(
                    shard,
                    n_shards,
                    registry,
                    in_recv,
                    out_send,
                    fault,
                    self.config.heartbeat_seconds,
                ),
                daemon=True,
            )
            process.start()
        finally:
            gc.unfreeze()
        # Close the child's ends in the coordinator so a dead worker
        # surfaces as a broken pipe / EOF instead of a silent hang.
        in_recv.close()
        out_send.close()
        return _Worker(process=process, in_send=in_send, out_recv=out_recv)

    def _ship(self, worker: _Worker, batches: Sequence) -> None:
        """Send a worker its batch slice; a dead receiver is recorded, not
        raised — the supervision loop classifies it as a crash."""
        try:
            worker.in_send.send(batches)
        except OSError as exc:
            worker.ship_error = f"batch slice undeliverable: {exc!r}"
        finally:
            worker.in_send.close()

    def _reap(self, worker: _Worker, graceful: bool) -> None:
        """Tear a worker down; failed workers get no exit grace."""
        try:
            worker.out_recv.close()
        except OSError:  # pragma: no cover - already closed
            pass
        reap_process(
            worker.process,
            grace_seconds=self.config.join_grace_seconds if graceful else 0.0,
        )

    # ------------------------------------------------------------------ #
    # Supervision
    # ------------------------------------------------------------------ #
    def _await_result(
        self, worker: _Worker, shard: int, deadline_seconds: float
    ) -> tuple[str, object]:
        """Poll one worker until a classified outcome.

        Returns ``("ok", ShardResult)`` or ``(failure_kind, detail)``.
        The inactivity clock resets on every message received.
        """
        if worker.ship_error:
            return "eof", worker.ship_error
        config = self.config
        last_activity = time.monotonic()
        while True:
            remaining = deadline_seconds - (time.monotonic() - last_activity)
            if remaining <= 0:
                return (
                    "deadline",
                    f"no activity for {deadline_seconds:g}s",
                )
            try:
                ready = worker.out_recv.poll(min(config.poll_seconds, remaining))
            except OSError as exc:  # pragma: no cover - defensive
                return "eof", repr(exc)
            if not ready:
                continue
            try:
                message = worker.out_recv.recv()
            except EOFError:
                return "eof", "worker exited without sending a result"
            except Exception as exc:  # noqa: BLE001 - any unpickling garbage
                return "corrupt", f"result did not unpickle: {exc!r}"
            if not (isinstance(message, tuple) and len(message) == 2):
                return "corrupt", f"malformed message: {message!r}"
            tag, payload = message
            if tag == "hb":
                last_activity = time.monotonic()
                continue
            if tag == "ok":
                if not valid_shard_result(payload, shard):
                    return (
                        "corrupt",
                        f"payload is not shard {shard}'s result: {payload!r}",
                    )
                return "ok", payload
            if tag == "error":
                return "error", str(payload)
            return "corrupt", f"unknown message tag: {tag!r}"

    def _supervise_shard(
        self,
        registry,
        shard: int,
        n_shards: int,
        batches: Sequence,
        worker: _Worker,
        stats: RecoveryStats,
    ) -> ShardResult:
        """Drive one shard to a capture: deadline, retries, fallback."""
        config = self.config
        attempt = 0
        while True:
            start = time.monotonic()
            outcome, payload = self._await_result(
                worker, shard, config.deadline_for(attempt)
            )
            elapsed = time.monotonic() - start
            self._reap(worker, graceful=outcome == "ok")
            if outcome == "ok":
                stats.record(shard, attempt, "fork", "ok", elapsed)
                return payload
            stats.record(
                shard, attempt, "fork", outcome, elapsed, detail=str(payload)
            )
            attempt += 1
            if attempt >= config.max_worker_attempts:
                break
            # Fresh fork off the coordinator's untouched registry — the
            # dead worker's partial mutations died with its heap.
            worker = self._spawn(registry, shard, n_shards, attempt)
            self._ship(worker, batches)

        # Last resort: re-execute the pure slice inline.  The coordinator
        # mutates only this shard's owned instances, which no surviving
        # worker captures, so the merge stays exact.
        start = time.monotonic()
        result = _execute_shard(registry, shard, n_shards, batches)
        stats.record(
            shard, attempt, "inline", "ok", time.monotonic() - start
        )
        return result

    def run(
        self, registry, shards: list[list]
    ) -> tuple[list[ShardResult], RecoveryStats]:
        """Run every shard to completion; return captures in shard order.

        All first-attempt workers are forked and shipped up front (they
        deliver concurrently, exactly like the unsupervised engine); the
        shards are then supervised in index order.  A shard that fails
        retries immediately — later shards' workers keep running
        meanwhile and are drained when their turn comes.
        """
        n_shards = len(shards)
        stats = RecoveryStats(n_shards=n_shards)
        workers = [
            self._spawn(registry, shard, n_shards, attempt=0)
            for shard in range(n_shards)
        ]
        for shard, worker in enumerate(workers):
            self._ship(worker, shards[shard])
        results: list[ShardResult] = []
        try:
            for shard, worker in enumerate(workers):
                results.append(
                    self._supervise_shard(
                        registry, shard, n_shards, shards[shard], worker, stats
                    )
                )
        finally:
            # On an unexpected coordinator error, leave no child behind.
            for worker in workers:
                if worker.process.is_alive():  # pragma: no cover - defensive
                    self._reap(worker, graceful=False)
        return results, stats
